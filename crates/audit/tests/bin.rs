//! End-to-end tests of the `carve-audit` binary's exit-code contract
//! (0 clean, 1 findings, 2 usage/IO) and its machine-readable output.
//!
//! Each test builds a throwaway miniature workspace under a temp dir so
//! verdicts do not depend on the state of the real tree.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn carve_audit(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_carve-audit"));
    cmd.args(args);
    cmd
}

/// Creates `<tmp>/<name>/crates/system/src/sim.rs` holding `sim_src`
/// and returns the workspace root.
fn mini_workspace(name: &str, sim_src: &str) -> PathBuf {
    let root = std::env::temp_dir()
        .join("carve-audit-bin-tests")
        .join(format!("{name}-{}", std::process::id()));
    let src = root.join("crates/system/src");
    if root.exists() {
        fs::remove_dir_all(&root).expect("clear stale workspace");
    }
    fs::create_dir_all(&src).expect("mkdir workspace");
    fs::write(src.join("sim.rs"), sim_src).expect("write sim.rs");
    root
}

const CLEAN_SIM: &str = "\
struct System {
    cores: Vec<GpuCore>, // state: gpu-local
    total: u64, // state: shared
}
impl System {
    pub fn tick(&mut self, now: Cycle) {
        for g in 0..2 {
            self.cores[g].step(now);
            self.total += 1;
        }
    }
}
struct GpuCore { work: u64 }
impl GpuCore { pub fn step(&mut self, _now: Cycle) { self.work += 1; } }
";

/// Same machine, but GPU `g` reaches into its neighbour's core — the
/// partition breach `cross-gpu-write` exists to catch.
const MISPARTITIONED_SIM: &str = "\
struct System {
    cores: Vec<GpuCore>, // state: gpu-local
    num_gpus: usize, // state: shared
}
impl System {
    pub fn tick(&mut self, now: Cycle) {
        for g in 0..self.num_gpus {
            let home = (g + 1) % self.num_gpus;
            self.cores[home].step(now);
        }
    }
}
struct GpuCore { work: u64 }
impl GpuCore { pub fn step(&mut self, _now: Cycle) { self.work += 1; } }
";

#[test]
fn lint_clean_workspace_exits_0() {
    let root = mini_workspace("clean", CLEAN_SIM);
    let out = carve_audit(&["lint", root.to_str().unwrap()])
        .output()
        .expect("spawn carve-audit");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));
}

#[test]
fn lint_mispartitioned_workspace_exits_1() {
    let root = mini_workspace("violation", MISPARTITIONED_SIM);
    let out = carve_audit(&["lint", root.to_str().unwrap()])
        .output()
        .expect("spawn carve-audit");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cross-gpu-write"), "stdout: {text}");
    assert!(text.contains("`home`"), "stdout: {text}");
}

#[test]
fn lint_json_is_machine_readable_and_sorted() {
    let root = mini_workspace("json", MISPARTITIONED_SIM);
    let out = carve_audit(&["lint", "--json", root.to_str().unwrap()])
        .output()
        .expect("spawn carve-audit");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"files_scanned\": 1"), "{text}");
    assert!(text.contains("\"rule\": \"cross-gpu-write\""), "{text}");
    assert!(
        text.contains("\"file\": \"crates/system/src/sim.rs\""),
        "{text}"
    );
    // Findings are sorted by (path, line, rule): lines must be
    // non-decreasing in document order.
    let lines: Vec<u32> = text
        .match_indices("\"line\": ")
        .map(|(i, _)| {
            text[i + "\"line\": ".len()..]
                .split(|c: char| !c.is_ascii_digit())
                .next()
                .unwrap()
                .parse()
                .unwrap()
        })
        .collect();
    assert!(!lines.is_empty());
    assert!(lines.windows(2).all(|w| w[0] <= w[1]), "{lines:?}");
}

#[test]
fn effects_writes_the_state_access_matrix() {
    let root = mini_workspace("effects", CLEAN_SIM);
    let out = carve_audit(&["effects", root.to_str().unwrap()])
        .output()
        .expect("spawn carve-audit");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let tsv = fs::read_to_string(root.join("results/effects.tsv")).expect("effects.tsv written");
    assert!(tsv.starts_with("file\tfunction\tfield\taccess\tclass\tnote"));
    assert!(
        tsv.contains("System::tick\tcores\twrite\tgpu-local\tctx=g"),
        "{tsv}"
    );
    assert!(tsv.contains("System::tick\ttotal\twrite\tshared"), "{tsv}");
}

#[test]
fn effects_honours_out_flag() {
    let root = mini_workspace("effects-out", CLEAN_SIM);
    let dest = root.join("custom/matrix.tsv");
    let out = carve_audit(&[
        "effects",
        "--out",
        dest.to_str().unwrap(),
        root.to_str().unwrap(),
    ])
    .output()
    .expect("spawn carve-audit");
    assert_eq!(out.status.code(), Some(0));
    assert!(dest.is_file());
    assert!(
        !root.join("results").exists(),
        "--out must redirect the write"
    );
}

#[test]
fn usage_errors_exit_2() {
    let no_workspace = std::env::temp_dir().join("carve-audit-definitely-not-a-workspace");
    let cases: Vec<Vec<&str>> = vec![
        vec!["frobnicate"],
        vec![],
        vec!["lint", "--bogus-flag"],
        vec!["lint", no_workspace.to_str().unwrap()],
        vec!["effects", "--out"],
    ];
    for args in &cases {
        let out = carve_audit(args).output().expect("spawn carve-audit");
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?}: stderr {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn help_exits_0() {
    let out = carve_audit(&["--help"])
        .output()
        .expect("spawn carve-audit");
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("effects"));
}

/// The committed snapshot must match what the tool generates from the
/// current tree — the CI diff gate relies on this staying true.
#[test]
fn committed_effects_snapshot_is_current() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR")); // crates/audit
    let root = here.ancestors().nth(2).expect("workspace root");
    if !root.join("results/effects.tsv").is_file() {
        return; // snapshot not present in this checkout
    }
    let committed = fs::read_to_string(root.join("results/effects.tsv")).unwrap();
    let dest = std::env::temp_dir().join(format!("effects-check-{}.tsv", std::process::id()));
    let out = carve_audit(&[
        "effects",
        "--out",
        dest.to_str().unwrap(),
        root.to_str().unwrap(),
    ])
    .output()
    .expect("spawn carve-audit");
    assert_eq!(out.status.code(), Some(0));
    let fresh = fs::read_to_string(&dest).unwrap();
    let _ = fs::remove_file(&dest);
    assert_eq!(
        committed, fresh,
        "results/effects.tsv is stale; regenerate with `carve-audit effects`"
    );
}
