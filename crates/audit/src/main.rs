//! `carve-audit` — run the workspace lint wall from the command line.
//!
//! ```text
//! carve-audit lint [WORKSPACE_ROOT]
//! ```
//!
//! Scans `crates/*/src/**/*.rs` under the workspace root (default: the
//! current directory, walking upward until a `crates/` directory is
//! found) and prints one `file:line: rule: message` diagnostic per
//! finding. Exit status: 0 clean, 1 findings, 2 usage/IO error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: carve-audit lint [WORKSPACE_ROOT]");
    eprintln!();
    eprintln!("rules:");
    for rule in carve_audit::Rule::all() {
        eprintln!("  {}", rule.name());
    }
    eprintln!();
    eprintln!("suppress a finding with: // audit:allow(<rule>) <reason>");
    ExitCode::from(2)
}

/// Walks upward from `start` to the first directory containing `crates/`.
fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {}
        _ => return usage(),
    }
    if args.len() > 2 {
        return usage();
    }
    let root = match args.get(1) {
        Some(p) => PathBuf::from(p),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "carve-audit: no crates/ directory at or above the current directory"
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    match carve_audit::scan_workspace(&root) {
        Ok((diags, scanned)) => {
            if diags.is_empty() {
                println!("carve-audit: {scanned} files scanned, clean");
                ExitCode::SUCCESS
            } else {
                for d in &diags {
                    println!("{d}");
                }
                eprintln!(
                    "carve-audit: {} finding(s) in {scanned} scanned files",
                    diags.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("carve-audit: {e}");
            ExitCode::from(2)
        }
    }
}
