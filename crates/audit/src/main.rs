//! `carve-audit` — the workspace lint wall and effect analysis.
//!
//! ```text
//! carve-audit lint    [--json] [WORKSPACE_ROOT]
//! carve-audit effects [--out PATH] [WORKSPACE_ROOT]
//! ```
//!
//! All argument handling lives in [`carve_audit::cli`], which is the
//! same entry point `carve-sim audit` uses — the two front ends cannot
//! drift apart. Exit status: 0 clean, 1 findings, 2 usage/IO error.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(carve_audit::cli::run(&args))
}
