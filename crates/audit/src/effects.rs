//! Tick-path effect analysis: the machine-checked answer to "which
//! `System` state does each tick function touch, and is every write
//! GPU-local outside the declared exchange points?"
//!
//! Starting from `System::tick` / `System::tick_into`, the analysis
//! walks every reachable function across
//! `crates/{system,gpu,dram,noc,cache,carve}` and records, per
//! function, the state fields it reads and writes, classified by the
//! `// state:` annotations on `System`'s fields:
//!
//! * **gpu-local** — `Vec`-indexed per-GPU state. A write must be
//!   indexed by the function's *tick context* (the GPU named by its
//!   `// tick-context:` parameter, or a `for g in 0..` loop variable);
//!   anything else is a [`cross-gpu-write`] finding unless it sits in
//!   an `// exchange: <reason>` region or under an
//!   `audit:allow(cross-gpu-write)`.
//! * **shared** — declared serialization points (directory, page table,
//!   NoC, token slab, traffic counters). Writes are legal and recorded.
//! * **scratch** — tick-scoped buffers, logically dead between ticks.
//!
//! An `// exchange:` comment opens a region that lasts until its
//! enclosing block closes: the lexical span where cross-GPU effects are
//! *declared* rather than forbidden — exactly the spans a parallel-tick
//! engine must run at a barrier. The emitted State-Access Matrix
//! (`results/effects.tsv`) is committed and diffed in CI so partition
//! drift is reviewed like a golden journal.
//!
//! Two more rules ride on the same walk:
//!
//! * [`order-sensitive-iteration`] — `for_each`/`values` iteration over
//!   a `FastMap`/`FastSet`/`Slab`/`TagTable` field whose closure writes
//!   state needs a `// determinism: <reason>` annotation.
//! * cross-context calls — passing something other than the active tick
//!   context to a callee's context parameter is a [`cross-gpu-write`]
//!   finding too (the callee will write that GPU's state on our
//!   behalf).
//!
//! [`cross-gpu-write`]: crate::Rule::CrossGpuWrite
//! [`order-sensitive-iteration`]: crate::Rule::OrderSensitiveIteration

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{self, FileItems, FuncDef, Recv, StateClass, TickCtx};
use crate::lex::{self, Tok, Token};
use crate::{Diagnostic, Rule};

/// Crates whose `src/` trees are in scope for the effect analysis
/// (binaries under `src/bin/` are driver code, not tick path).
pub const EFFECTS_CRATES: [&str; 6] = ["system", "gpu", "dram", "noc", "cache", "carve"];

/// Whether `rel` (workspace-relative, `/`-separated) is analyzed.
pub fn in_effects_scope(rel: &str) -> bool {
    !rel.contains("/bin/")
        && EFFECTS_CRATES
            .iter()
            .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
}

/// One row of the State-Access Matrix.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MatrixRow {
    /// Defining file of the function (workspace-relative).
    pub file: String,
    /// `Owner::name` of the accessing function.
    pub func: String,
    /// `System` field name, or `Owner.field` for component-internal
    /// state.
    pub field: String,
    /// `"read"` or `"write"`.
    pub access: &'static str,
    /// `gpu-local`, `shared`, `scratch`, or `unannotated`.
    pub class: &'static str,
    /// Qualifier: `ctx=<ident>` for a context-indexed access,
    /// `exchange` inside a declared region, `allow` under a
    /// suppression, `borrow` for borrow-only chains, empty otherwise.
    pub note: String,
}

/// Everything the effect analysis produces.
#[derive(Debug, Default)]
pub struct EffectsOutcome {
    /// Deduplicated, deterministically sorted matrix rows.
    pub rows: Vec<MatrixRow>,
    pub diags: Vec<Diagnostic>,
    /// `(file, line)` of every `audit:allow` that suppressed a finding.
    pub used_allows: BTreeSet<(String, usize)>,
}

/// Renders the matrix as the committed TSV snapshot.
pub fn matrix_tsv(rows: &[MatrixRow]) -> String {
    let mut out = String::from("file\tfunction\tfield\taccess\tclass\tnote\n");
    for r in rows {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\n",
            r.file, r.func, r.field, r.access, r.class, r.note
        ));
    }
    out
}

/// Methods that only borrow through a field without structural
/// mutation; a chain made purely of these is recorded as a read and the
/// `let`-bound name inherits the field for later write attribution.
const BORROW_METHODS: [&str; 4] = ["as_ref", "as_mut", "as_deref", "as_deref_mut"];

/// Mutating methods on `std`/`sim_core` types the function table cannot
/// resolve (they live outside the analyzed crates).
const BUILTIN_MUT_METHODS: [&str; 27] = [
    "insert",
    "insert_if_absent",
    "remove",
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_back",
    "pop_front",
    "clear",
    "drain",
    "record",
    "take",
    "replace",
    "untracked_token",
    "extend",
    "append",
    "truncate",
    "retain",
    "get_mut",
    "iter_mut",
    "resize",
    "fill",
    "sort",
    "sort_unstable",
    "set",
    "add",
];

/// Container types whose `for_each`/`values` iteration order is an
/// implementation detail the determinism argument must cover.
const ITER_TYPES: [&str; 4] = ["FastMap", "FastSet", "Slab", "TagTable"];

fn is_borrow_method(name: &str) -> bool {
    BORROW_METHODS.contains(&name)
}

struct FieldInfo {
    class: Option<StateClass>,
    per_gpu: bool,
    base: Option<String>,
}

struct Unit {
    rel: String,
    toks: Vec<Token>,
    items: FileItems,
    /// line -> rule names with a non-empty reason.
    allows: BTreeMap<usize, Vec<String>>,
}

struct Env {
    units: Vec<Unit>,
    /// fn name -> (unit, fn index) for every definition.
    by_name: BTreeMap<String, Vec<(usize, usize)>>,
    sys_fields: BTreeMap<String, FieldInfo>,
    /// component type -> state class (fixpoint over holder fields).
    owner_class: BTreeMap<String, StateClass>,
    /// component type -> field name -> base type ident.
    struct_fields: BTreeMap<String, BTreeMap<String, Option<String>>>,
    /// method names with at least one `&mut self` definition.
    mut_fns: BTreeSet<String>,
}

impl Env {
    fn is_mut_method(&self, name: &str) -> bool {
        if is_borrow_method(name) {
            return false;
        }
        self.mut_fns.contains(name) || BUILTIN_MUT_METHODS.contains(&name)
    }

    fn func(&self, r: (usize, usize)) -> &FuncDef {
        &self.units[r.0].items.funcs[r.1]
    }
}

fn build_env(files: &[(String, String)]) -> Env {
    let mut units = Vec::new();
    for (rel, content) in files {
        if !in_effects_scope(rel) {
            continue;
        }
        let toks = lex::lex(content);
        let mut allows: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for t in &toks {
            if let Some(c) = t.comment() {
                if let Some((rule, reason)) = crate::parse_allow(c) {
                    if !reason.is_empty() {
                        allows.entry(t.line).or_default().push(rule.to_string());
                    }
                }
            }
        }
        let items = items::extract(&toks);
        units.push(Unit {
            rel: rel.clone(),
            toks,
            items,
            allows,
        });
    }
    units.sort_by(|a, b| a.rel.cmp(&b.rel));

    let mut by_name: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
    let mut mut_fns = BTreeSet::new();
    for (ui, u) in units.iter().enumerate() {
        for (fi, f) in u.items.funcs.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push((ui, fi));
            if f.recv == Recv::RefMut {
                mut_fns.insert(f.name.clone());
            }
        }
    }

    let mut sys_fields = BTreeMap::new();
    let mut struct_fields: BTreeMap<String, BTreeMap<String, Option<String>>> = BTreeMap::new();
    let mut owner_class: BTreeMap<String, StateClass> = BTreeMap::new();
    for u in &units {
        for s in &u.items.structs {
            let map = struct_fields.entry(s.name.clone()).or_default();
            for f in &s.fields {
                map.insert(f.name.clone(), f.base_type().map(str::to_string));
            }
            if s.name == "System" && u.rel == "crates/system/src/sim.rs" {
                for f in &s.fields {
                    sys_fields.insert(
                        f.name.clone(),
                        FieldInfo {
                            class: f.class,
                            per_gpu: f.per_gpu(),
                            base: f.base_type().map(str::to_string),
                        },
                    );
                    // Seed the holder map: the component type held by a
                    // classified System field inherits the class.
                    if let (Some(c), Some(base)) = (f.class, f.base_type()) {
                        merge_class(&mut owner_class, base, c);
                    }
                }
            }
        }
    }
    // Fixpoint: a component's own fields' types inherit its class, so
    // e.g. GpuCore (gpu-local) makes its SM/MSHR internals gpu-local.
    for _ in 0..8 {
        let snapshot: Vec<(String, StateClass)> =
            owner_class.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let mut changed = false;
        for (ty, cls) in snapshot {
            if let Some(fields) = struct_fields.get(&ty) {
                for base in fields.values().flatten() {
                    if !owner_class.contains_key(base) {
                        owner_class.insert(base.clone(), cls);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    Env {
        units,
        by_name,
        sys_fields,
        owner_class,
        struct_fields,
        mut_fns,
    }
}

/// Shared-wins when a type is reachable from holders of both classes.
fn merge_class(map: &mut BTreeMap<String, StateClass>, ty: &str, cls: StateClass) {
    match map.get(ty) {
        None => {
            map.insert(ty.to_string(), cls);
        }
        Some(prev) if *prev != cls => {
            map.insert(ty.to_string(), StateClass::Shared);
        }
        _ => {}
    }
}

/// Call-graph BFS from `System::tick` / `System::tick_into`.
fn reachable(env: &Env) -> BTreeSet<(usize, usize)> {
    let mut work: Vec<(usize, usize)> = Vec::new();
    for name in ["tick", "tick_into"] {
        if let Some(cands) = env.by_name.get(name) {
            for &r in cands {
                if env.func(r).owner.as_deref() == Some("System") {
                    work.push(r);
                }
            }
        }
    }
    let mut seen: BTreeSet<(usize, usize)> = work.iter().copied().collect();
    while let Some(r) = work.pop() {
        let f = env.func(r);
        let Some((b0, b1)) = f.body else { continue };
        let toks = &env.units[r.0].toks;
        let owner = f.owner.clone();
        let mut i = b0;
        while i < b1 {
            if let Some(name) = toks[i].ident() {
                let called = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
                let is_method = i > 0 && toks[i - 1].is_punct('.');
                let path_owner =
                    if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') && i >= 3 {
                        toks[i - 3].ident().map(str::to_string)
                    } else {
                        None
                    };
                // A bare identifier is only a call when parenthesized; a
                // path segment (`Type::fn`) also counts as an edge when
                // passed as a function reference.
                if called || path_owner.is_some() {
                    if let Some(cands) = env.by_name.get(name) {
                        for &c in cands {
                            let cf = env.func(c);
                            let ok = match (&path_owner, is_method) {
                                (Some(o), _) => {
                                    let want = if o == "Self" {
                                        owner.as_deref()
                                    } else {
                                        Some(o.as_str())
                                    };
                                    cf.owner.as_deref() == want
                                }
                                (None, true) => cf.owner.is_some(),
                                (None, false) => cf.owner.is_none() || !called,
                            };
                            if ok && seen.insert(c) {
                                work.push(c);
                            }
                        }
                    }
                }
            }
            i += 1;
        }
    }
    seen
}

/// Lookahead description of the access chain following a base
/// (`self.field` or a bound local).
struct Chain {
    idx_ident: Option<String>,
    methods: Vec<String>,
    subfields: Vec<String>,
    assigned: bool,
    /// `for_each`/`values` call: (method, args token range).
    iter_call: Option<(String, (usize, usize))>,
}

fn scan_chain(toks: &[Token], mut i: usize) -> (Chain, usize) {
    let mut ch = Chain {
        idx_ident: None,
        methods: Vec::new(),
        subfields: Vec::new(),
        assigned: false,
        iter_call: None,
    };
    loop {
        if i < toks.len() && toks[i].is_punct('[') {
            let end = skip_group(toks, i, '[', ']');
            if ch.idx_ident.is_none() {
                ch.idx_ident = toks[i + 1..end.saturating_sub(1)]
                    .iter()
                    .find_map(|t| t.ident().map(str::to_string));
            }
            i = end;
            continue;
        }
        if i + 1 < toks.len() && toks[i].is_punct('.') {
            match &toks[i + 1].tok {
                Tok::Ident(name) => {
                    if toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
                        let end = skip_group(toks, i + 2, '(', ')');
                        if matches!(name.as_str(), "for_each" | "values") && ch.iter_call.is_none()
                        {
                            ch.iter_call = Some((name.clone(), (i + 3, end - 1)));
                        }
                        ch.methods.push(name.clone());
                        i = end;
                    } else {
                        ch.subfields.push(name.clone());
                        i += 2;
                    }
                    continue;
                }
                Tok::Num(_) => {
                    i += 2; // tuple field access
                    continue;
                }
                _ => {}
            }
        }
        break;
    }
    // Trailing assignment operator?
    ch.assigned = match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct('=')) => !toks.get(i + 1).is_some_and(|t| t.is_punct('=')),
        Some(Tok::Punct('+' | '-' | '*' | '/' | '%' | '^' | '|' | '&')) => {
            toks.get(i + 1).is_some_and(|t| t.is_punct('='))
        }
        Some(Tok::Punct('<')) | Some(Tok::Punct('>')) => {
            let c = match toks[i].tok {
                Tok::Punct(c) => c,
                _ => unreachable!(),
            };
            toks.get(i + 1).is_some_and(|t| t.is_punct(c))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('='))
        }
        _ => false,
    };
    (ch, i)
}

fn skip_group(toks: &[Token], mut i: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    while i < toks.len() {
        if toks[i].is_punct(open) {
            depth += 1;
        } else if toks[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Whether the argument tokens of an iteration closure contain a write
/// (an assignment operator or a call to a known mutating method).
fn args_write(env: &Env, toks: &[Token]) -> bool {
    for (i, t) in toks.iter().enumerate() {
        match &t.tok {
            Tok::Punct('=') => {
                let next_eq_or_arrow = toks
                    .get(i + 1)
                    .is_some_and(|t| t.is_punct('=') || t.is_punct('>'));
                let prev_cmp = i > 0
                    && matches!(
                        toks[i - 1].tok,
                        Tok::Punct('=') | Tok::Punct('!') | Tok::Punct('<') | Tok::Punct('>')
                    );
                // `+=`-style compounds keep the '=' with an operator
                // before it; those are writes, comparisons are not.
                let prev_compound = i > 0
                    && matches!(
                        toks[i - 1].tok,
                        Tok::Punct('+')
                            | Tok::Punct('-')
                            | Tok::Punct('*')
                            | Tok::Punct('/')
                            | Tok::Punct('%')
                            | Tok::Punct('^')
                            | Tok::Punct('|')
                            | Tok::Punct('&')
                    );
                // A `let`-binding's `=` introduces a name; it mutates
                // nothing. Scan back to the statement start for `let`.
                let is_let_binding = toks[..i]
                    .iter()
                    .rev()
                    .take_while(|t| !t.is_punct(';') && !t.is_punct('{') && !t.is_punct('|'))
                    .any(|t| t.ident() == Some("let"));
                if !next_eq_or_arrow && (!prev_cmp || prev_compound) && !is_let_binding {
                    return true;
                }
            }
            Tok::Ident(name)
                if toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && env.is_mut_method(name) =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}

struct Walker<'e> {
    env: &'e Env,
    unit: usize,
    func_q: String,
    rel: String,
    is_system: bool,
    owner: Option<String>,
    depth: i64,
    ctxs: Vec<(String, i64)>,
    exchange: Vec<i64>,
    determinism: Vec<i64>,
    bindings: BTreeMap<String, String>,
    match_bind: Option<(String, i64)>,
    rows: BTreeSet<MatrixRow>,
    diags: Vec<Diagnostic>,
    used: BTreeSet<(String, usize)>,
}

impl Walker<'_> {
    fn ctx_active(&self, id: &str) -> bool {
        self.ctxs.iter().any(|(c, _)| c == id)
    }

    fn allowed(&mut self, rule: Rule, line: usize) -> bool {
        let allows = &self.env.units[self.unit].allows;
        for l in [line, line.saturating_sub(1)] {
            if allows
                .get(&l)
                .is_some_and(|rules| rules.iter().any(|r| r == rule.name()))
            {
                self.used.insert((self.rel.clone(), l));
                return true;
            }
        }
        false
    }

    fn row(&mut self, field: String, access: &'static str, class: &'static str, note: String) {
        self.rows.insert(MatrixRow {
            file: self.rel.clone(),
            func: self.func_q.clone(),
            field,
            access,
            class,
            note,
        });
    }

    fn finding(&mut self, rule: Rule, line: usize, message: String) {
        self.diags.push(Diagnostic {
            file: self.rel.clone(),
            line,
            rule,
            message,
        });
    }

    /// Handles one access whose base resolves to `System` field `field`
    /// (directly or through a borrow binding). `i` points just past the
    /// base ident; `prefix_mut` is a literal `&mut` before the base.
    fn system_access(&mut self, field: &str, line: usize, chain: &Chain, prefix_mut: bool) {
        let info = &self.env.sys_fields[field];
        let class = info.class;
        let borrow_only = !prefix_mut
            && !chain.assigned
            && !chain.methods.is_empty()
            && chain.methods.iter().all(|m| is_borrow_method(m));
        let is_write = !borrow_only
            && (prefix_mut
                || chain.assigned
                || chain.methods.iter().any(|m| self.env.is_mut_method(m)));
        let class_name = match class {
            Some(c) => c.name(),
            None => "unannotated",
        };
        self.iter_check(field, info.base.as_deref(), line, chain);

        if !is_write {
            let note = if borrow_only {
                "borrow".to_string()
            } else {
                match &chain.idx_ident {
                    Some(id) if self.ctx_active(id) => format!("ctx={id}"),
                    _ => String::new(),
                }
            };
            self.row(field.to_string(), "read", class_name, note);
            return;
        }

        match class {
            Some(StateClass::Shared) | Some(StateClass::Scratch) => {
                self.row(field.to_string(), "write", class_name, String::new());
            }
            Some(StateClass::GpuLocal) => {
                let ctx_idx = info.per_gpu
                    && chain
                        .idx_ident
                        .as_deref()
                        .is_some_and(|id| self.ctx_active(id));
                if ctx_idx || !info.per_gpu {
                    let note = chain
                        .idx_ident
                        .as_deref()
                        .map(|id| format!("ctx={id}"))
                        .unwrap_or_default();
                    self.row(field.to_string(), "write", class_name, note);
                } else if !self.exchange.is_empty() {
                    self.row(field.to_string(), "write", class_name, "exchange".into());
                } else if self.allowed(Rule::CrossGpuWrite, line) {
                    self.row(field.to_string(), "write", class_name, "allow".into());
                } else {
                    let how = match &chain.idx_ident {
                        Some(id) => format!("indexed by non-context `{id}`"),
                        None => "without a GPU index (broadcast)".to_string(),
                    };
                    let ctxs: Vec<&str> = self.ctxs.iter().map(|(c, _)| c.as_str()).collect();
                    let ctx_desc = if ctxs.is_empty() {
                        "no tick context is active".to_string()
                    } else {
                        format!("active context: {}", ctxs.join(", "))
                    };
                    self.finding(
                        Rule::CrossGpuWrite,
                        line,
                        format!(
                            "write to gpu-local `{field}` {how} in `{}` ({ctx_desc}); \
                             index by the tick context, or declare the span with \
                             `// exchange: <reason>`",
                            self.func_q
                        ),
                    );
                    self.row(field.to_string(), "write", class_name, "VIOLATION".into());
                }
            }
            None => {
                if !self.exchange.is_empty() {
                    self.row(field.to_string(), "write", class_name, "exchange".into());
                } else if self.allowed(Rule::CrossGpuWrite, line) {
                    self.row(field.to_string(), "write", class_name, "allow".into());
                } else {
                    self.finding(
                        Rule::CrossGpuWrite,
                        line,
                        format!(
                            "write to `System` field `{field}` which has no \
                             `// state:` annotation; declare it gpu-local, \
                             shared, or scratch"
                        ),
                    );
                    self.row(field.to_string(), "write", class_name, "VIOLATION".into());
                }
            }
        }
    }

    /// Component (non-`System`) self-field access: uniformly classed by
    /// the holder map; no context checks apply (the `System` call site
    /// carries the index proof).
    fn component_access(&mut self, field: &str, line: usize, chain: &Chain, prefix_mut: bool) {
        let owner = self.owner.clone().unwrap_or_default();
        let base = self
            .env
            .struct_fields
            .get(&owner)
            .and_then(|m| m.get(field))
            .cloned()
            .flatten();
        let class = self
            .env
            .owner_class
            .get(&owner)
            .copied()
            .unwrap_or(StateClass::Shared);
        self.iter_check(&format!("{owner}.{field}"), base.as_deref(), line, chain);
        let borrow_only = !prefix_mut
            && !chain.assigned
            && !chain.methods.is_empty()
            && chain.methods.iter().all(|m| is_borrow_method(m));
        let is_write = !borrow_only
            && (prefix_mut
                || chain.assigned
                || chain.methods.iter().any(|m| self.env.is_mut_method(m)));
        self.row(
            format!("{owner}.{field}"),
            if is_write { "write" } else { "read" },
            class.name(),
            if borrow_only {
                "borrow".into()
            } else {
                String::new()
            },
        );
    }

    /// `order-sensitive-iteration`: `for_each`/`values` on an
    /// order-carrying container whose closure writes state.
    fn iter_check(&mut self, label: &str, base: Option<&str>, line: usize, chain: &Chain) {
        let Some((method, (a0, a1))) = &chain.iter_call else {
            return;
        };
        if !base.is_some_and(|b| ITER_TYPES.contains(&b)) {
            return;
        }
        let toks = &self.env.units[self.unit].toks;
        if !args_write(self.env, &toks[*a0..*a1]) {
            return;
        }
        if !self.determinism.is_empty() {
            self.row(
                label.to_string(),
                "read",
                "shared",
                "determinism".to_string(),
            );
            return;
        }
        if self.allowed(Rule::OrderSensitiveIteration, line) {
            return;
        }
        self.finding(
            Rule::OrderSensitiveIteration,
            line,
            format!(
                "`.{method}()` iteration over `{label}` (a {}) with writes in its \
                 body; argue the order-independence with `// determinism: <reason>`",
                base.unwrap_or("container")
            ),
        );
    }

    /// Cross-context call check at `self.name(args…)` for `System`
    /// methods whose callee declares a tick-context parameter.
    fn call_check(&mut self, name: &str, line: usize, args_open: usize) {
        if self.ctxs.is_empty() {
            return; // pure orchestrator: it establishes contexts itself
        }
        let Some(cands) = self.env.by_name.get(name) else {
            return;
        };
        let callee = cands
            .iter()
            .map(|&r| self.env.func(r))
            .find(|f| f.owner.as_deref() == Some("System"));
        let Some(callee) = callee else { return };
        let TickCtx::Param(p) = &callee.ctx else {
            return;
        };
        let Some(k) = callee.params.iter().position(|q| &q.name == p) else {
            return;
        };
        let toks = &self.env.units[self.unit].toks;
        let end = skip_group(toks, args_open, '(', ')');
        let args = &toks[args_open + 1..end.saturating_sub(1)];
        // Top-level comma split to find argument k.
        let mut depth = 0i64;
        let mut arg_idx = 0usize;
        let mut first_ident: Option<&str> = None;
        for t in args {
            match &t.tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                Tok::Punct(',') if depth == 0 => {
                    if arg_idx == k {
                        break;
                    }
                    arg_idx += 1;
                    continue;
                }
                Tok::Ident(id) if arg_idx == k && first_ident.is_none() => {
                    first_ident = Some(id);
                }
                _ => {}
            }
        }
        let p = p.clone();
        match first_ident.map(str::to_string) {
            Some(id) if self.ctx_active(&id) => {}
            other => {
                if !self.exchange.is_empty() || self.allowed(Rule::CrossGpuWrite, line) {
                    return;
                }
                let what = other
                    .map(|id| format!("`{id}`"))
                    .unwrap_or_else(|| "an expression".to_string());
                let func_q = self.func_q.clone();
                self.finding(
                    Rule::CrossGpuWrite,
                    line,
                    format!(
                        "`{func_q}` passes {what} to `{name}`'s tick-context \
                         parameter `{p}` while a different context is active; \
                         wrap the span in `// exchange: <reason>` if this is a \
                         declared cross-GPU hand-off"
                    ),
                );
            }
        }
    }

    fn walk(&mut self, body: (usize, usize)) {
        let unit = self.unit;
        let (b0, b1) = body;
        let mut i = b0;
        while i < b1 {
            let toks = &self.env.units[unit].toks;
            let t = &toks[i];
            match &t.tok {
                Tok::Comment(c) => {
                    if annotation_reason(c, "exchange:") {
                        self.exchange.push(self.depth);
                    }
                    if annotation_reason(c, "determinism:") {
                        self.determinism.push(self.depth);
                    }
                    i += 1;
                    continue;
                }
                Tok::Punct('{') => {
                    self.depth += 1;
                    i += 1;
                    continue;
                }
                Tok::Punct('}') => {
                    self.depth -= 1;
                    let d = self.depth;
                    self.ctxs.retain(|(_, cd)| *cd <= d);
                    self.exchange.retain(|cd| *cd <= d);
                    self.determinism.retain(|cd| *cd <= d);
                    if self.match_bind.as_ref().is_some_and(|(_, md)| *md > d) {
                        self.match_bind = None;
                    }
                    i += 1;
                    continue;
                }
                Tok::Ident(w) if w == "for" => {
                    // `for g in 0..…` introduces `g` as a tick context for
                    // the loop body.
                    if let (Some(Tok::Ident(id)), Some(Tok::Ident(kw))) = (
                        toks.get(i + 1).map(|t| &t.tok),
                        toks.get(i + 2).map(|t| &t.tok),
                    ) {
                        let zero = matches!(
                            toks.get(i + 3).map(|t| &t.tok),
                            Some(Tok::Num(n)) if n == "0"
                        );
                        if kw == "in"
                            && zero
                            && toks.get(i + 4).is_some_and(|t| t.is_punct('.'))
                            && toks.get(i + 5).is_some_and(|t| t.is_punct('.'))
                        {
                            self.ctxs.push((id.clone(), self.depth + 1));
                        }
                    }
                    i += 1;
                    continue;
                }
                Tok::Ident(w) if w == "let" => {
                    self.try_bind(i);
                    i += 1;
                    continue;
                }
                Tok::Ident(w) if w == "match" => {
                    self.try_match_bind(i);
                    i += 1;
                    continue;
                }
                Tok::Ident(w) if w == "Some" && self.match_bind.is_some() => {
                    if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                        if let Some(Tok::Ident(id)) = toks.get(i + 2).map(|t| &t.tok) {
                            if toks.get(i + 3).is_some_and(|t| t.is_punct(')')) {
                                let field = self.match_bind.as_ref().unwrap().0.clone();
                                self.bindings.insert(id.clone(), field);
                            }
                        }
                    }
                    i += 1;
                    continue;
                }
                Tok::Ident(w) if w == "self" => {
                    if toks.get(i + 1).is_some_and(|t| t.is_punct('.')) {
                        if let Some(Tok::Ident(name)) = toks.get(i + 2).map(|t| &t.tok) {
                            let name = name.clone();
                            let line = toks[i + 2].line;
                            let prefix_mut = i >= 2
                                && toks[i - 1].ident() == Some("mut")
                                && toks[i - 2].is_punct('&');
                            if self.is_system {
                                if self.env.sys_fields.contains_key(&name) {
                                    let (chain, _) = scan_chain(toks, i + 3);
                                    self.system_access(&name, line, &chain, prefix_mut);
                                } else if toks.get(i + 3).is_some_and(|t| t.is_punct('(')) {
                                    self.call_check(&name, line, i + 3);
                                }
                            } else if !toks.get(i + 3).is_some_and(|t| t.is_punct('('))
                                || self
                                    .owner
                                    .as_deref()
                                    .and_then(|o| self.env.struct_fields.get(o))
                                    .is_some_and(|m| m.contains_key(&name))
                            {
                                let (chain, _) = scan_chain(toks, i + 3);
                                self.component_access(&name, line, &chain, prefix_mut);
                            }
                        }
                    }
                    i += 1;
                    continue;
                }
                Tok::Ident(id)
                    if self.bindings.contains_key(id)
                        && !(i > 0 && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':'))) =>
                {
                    let field = self.bindings[id].clone();
                    let line = t.line;
                    let prefix_mut =
                        i >= 2 && toks[i - 1].ident() == Some("mut") && toks[i - 2].is_punct('&');
                    let (chain, _) = scan_chain(toks, i + 1);
                    if self.is_system && self.env.sys_fields.contains_key(&field) {
                        self.system_access(&field, line, &chain, prefix_mut);
                    } else if !self.is_system {
                        self.component_access(&field, line, &chain, prefix_mut);
                    }
                    i += 1;
                    continue;
                }
                _ => {
                    i += 1;
                }
            }
        }
    }

    /// `let [Some(]x[)] = self.field.as_mut()…` — bind `x` to the field
    /// when the right-hand chain is borrow-only.
    fn try_bind(&mut self, let_idx: usize) {
        let toks = &self.env.units[self.unit].toks;
        let mut i = let_idx + 1;
        let mut pat_ident: Option<String> = None;
        let limit = (let_idx + 12).min(toks.len());
        while i < limit {
            match &toks[i].tok {
                Tok::Punct('=') => break,
                Tok::Ident(id)
                    if !matches!(id.as_str(), "Some" | "Ok" | "mut" | "ref" | "None") =>
                {
                    pat_ident = Some(id.clone());
                }
                Tok::Punct('(') | Tok::Punct(')') | Tok::Punct('&') | Tok::Ident(_) => {}
                _ => return, // complex pattern: don't bind
            }
            i += 1;
        }
        if i >= limit || !toks[i].is_punct('=') {
            return;
        }
        let Some(name) = pat_ident else { return };
        // RHS must be `self . <field>` followed by a borrow-only chain.
        if !(toks.get(i + 1).is_some_and(|t| t.ident() == Some("self"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('.')))
        {
            return;
        }
        let Some(field) = toks.get(i + 3).and_then(Token::ident).map(str::to_string) else {
            return;
        };
        let known = if self.is_system {
            self.env.sys_fields.contains_key(&field)
        } else {
            self.owner
                .as_deref()
                .and_then(|o| self.env.struct_fields.get(o))
                .is_some_and(|m| m.contains_key(&field))
        };
        if !known {
            return;
        }
        let (chain, _) = scan_chain(toks, i + 4);
        if !chain.methods.is_empty() && chain.methods.iter().all(|m| is_borrow_method(m)) {
            self.bindings.insert(name, field);
        }
    }

    /// `match self.field.as_mut() {` — arm patterns `Some(x)` bind `x`
    /// to the field for the duration of the match block.
    fn try_match_bind(&mut self, match_idx: usize) {
        let toks = &self.env.units[self.unit].toks;
        if !(toks
            .get(match_idx + 1)
            .is_some_and(|t| t.ident() == Some("self"))
            && toks.get(match_idx + 2).is_some_and(|t| t.is_punct('.')))
        {
            return;
        }
        let Some(field) = toks
            .get(match_idx + 3)
            .and_then(Token::ident)
            .map(str::to_string)
        else {
            return;
        };
        let known = if self.is_system {
            self.env.sys_fields.contains_key(&field)
        } else {
            false
        };
        if !known {
            return;
        }
        let (chain, end) = scan_chain(toks, match_idx + 4);
        if chain.methods.is_empty() || !chain.methods.iter().all(|m| is_borrow_method(m)) {
            return;
        }
        if toks.get(end).is_some_and(|t| t.is_punct('{')) {
            self.match_bind = Some((field, self.depth + 1));
        }
    }
}

/// Whether a comment carries `<key> <non-empty reason>`.
fn annotation_reason(comment: &str, key: &str) -> bool {
    comment
        .split(key)
        .nth(1)
        .is_some_and(|rest| !rest.trim().is_empty())
}

/// Runs the full effect analysis over workspace file contents
/// (`(workspace-relative path, contents)` pairs; out-of-scope files are
/// ignored).
pub fn analyze_effects(files: &[(String, String)]) -> EffectsOutcome {
    let env = build_env(files);
    let reach = reachable(&env);
    let mut out = EffectsOutcome::default();
    let mut rows: BTreeSet<MatrixRow> = BTreeSet::new();

    // Deterministic order: by (file, fn line).
    let mut order: Vec<(usize, usize)> = reach.iter().copied().collect();
    order.sort_by_key(|&(u, f)| (env.units[u].rel.clone(), env.units[u].items.funcs[f].line));

    for (u, fi) in order {
        let f = &env.units[u].items.funcs[fi];
        let Some(body) = f.body else { continue };
        let is_system = f.owner.as_deref() == Some("System");
        let mut w = Walker {
            env: &env,
            unit: u,
            func_q: f.qname(),
            rel: env.units[u].rel.clone(),
            is_system,
            owner: f.owner.clone(),
            depth: 0,
            ctxs: match &f.ctx {
                TickCtx::Param(p) if is_system => vec![(p.clone(), 0)],
                _ => Vec::new(),
            },
            exchange: Vec::new(),
            determinism: Vec::new(),
            bindings: BTreeMap::new(),
            match_bind: None,
            rows: BTreeSet::new(),
            diags: Vec::new(),
            used: BTreeSet::new(),
        };
        w.walk(body);
        rows.extend(w.rows);
        out.diags.extend(w.diags);
        out.used_allows.extend(w.used);
    }

    out.rows = rows.into_iter().collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM: &str = "crates/system/src/sim.rs";

    fn run(src: &str) -> EffectsOutcome {
        analyze_effects(&[(SIM.to_string(), src.to_string())])
    }

    fn rules(out: &EffectsOutcome) -> Vec<&'static str> {
        out.diags.iter().map(|d| d.rule.name()).collect()
    }

    /// A minimal well-partitioned System: everything the tick touches is
    /// either context-indexed gpu-local, declared shared, or scratch.
    const CLEAN: &str = "\
struct System {
    num_gpus: usize, // state: shared
    cores: Vec<GpuCore>, // state: gpu-local
    net: LinkNetwork, // state: shared
    scratch: Vec<u64>, // state: scratch
}
impl System {
    pub fn tick(&mut self, now: Cycle) {
        self.scratch.clear();
        for g in 0..self.num_gpus {
            self.cores[g].advance(now);
            self.route(g, now);
        }
        self.net.drain(&mut self.scratch);
    }
    // tick-context: g
    fn route(&mut self, g: usize, now: Cycle) {
        self.cores[g].deliver(now);
        self.net.send(g, now);
    }
}
struct GpuCore { warps: u64 }
impl GpuCore {
    pub fn advance(&mut self, now: Cycle) { self.warps += 1; }
    pub fn deliver(&mut self, now: Cycle) { self.warps += 1; }
}
struct LinkNetwork { inflight: u64 }
impl LinkNetwork {
    pub fn send(&mut self, g: usize, now: Cycle) { self.inflight += 1; }
    pub fn drain(&mut self, out: &mut Vec<u64>) { self.inflight = 0; }
}
";

    #[test]
    fn well_partitioned_system_scans_clean() {
        let out = run(CLEAN);
        assert_eq!(rules(&out), Vec::<&str>::new(), "{:?}", out.diags);
        // The matrix still records the accesses.
        assert!(out
            .rows
            .iter()
            .any(|r| r.field == "cores" && r.access == "write" && r.note == "ctx=g"));
        assert!(out
            .rows
            .iter()
            .any(|r| r.func == "GpuCore.advance" || r.func == "GpuCore::advance"));
        assert!(out
            .rows
            .iter()
            .any(|r| r.field == "GpuCore.warps" && r.class == "gpu-local"));
    }

    /// The deliberately mis-partitioned fixture demanded by the issue: a
    /// per-GPU tick function writing another GPU's state.
    #[test]
    fn cross_gpu_write_fires_on_mispartitioned_fixture() {
        let src = "\
struct System {
    num_gpus: usize, // state: shared
    cores: Vec<GpuCore>, // state: gpu-local
}
impl System {
    pub fn tick(&mut self, now: Cycle) {
        for g in 0..self.num_gpus {
            let home = (g + 1) % self.num_gpus;
            self.cores[home].poke(now); // writes a *different* GPU's core
        }
    }
}
struct GpuCore { warps: u64 }
impl GpuCore { pub fn poke(&mut self, now: Cycle) { self.warps += 1; } }
";
        let out = run(src);
        assert_eq!(rules(&out), ["cross-gpu-write"], "{:?}", out.diags);
        assert!(
            out.diags[0].message.contains("home"),
            "{}",
            out.diags[0].message
        );
        assert!(out
            .rows
            .iter()
            .any(|r| r.field == "cores" && r.note == "VIOLATION"));
    }

    #[test]
    fn broadcast_write_needs_exchange_region() {
        let src = "\
struct System {
    cores: Vec<GpuCore>, // state: gpu-local
}
impl System {
    pub fn tick(&mut self, now: Cycle) {
        for core in &mut self.cores { core.flush(); }
    }
}
struct GpuCore { dirty: u64 }
impl GpuCore { pub fn flush(&mut self) { self.dirty = 0; } }
";
        let out = run(src);
        assert_eq!(rules(&out), ["cross-gpu-write"]);
        assert!(out.diags[0].message.contains("broadcast"));

        let annotated = src.replace(
            "for core in &mut self.cores",
            "// exchange: TLB shootdown fans out to every GPU at a barrier\n        for core in &mut self.cores",
        );
        let out = run(&annotated);
        assert_eq!(rules(&out), Vec::<&str>::new(), "{:?}", out.diags);
        assert!(out
            .rows
            .iter()
            .any(|r| r.field == "cores" && r.note == "exchange"));
    }

    #[test]
    fn allow_with_reason_suppresses_and_is_marked_used() {
        let src = "\
struct System {
    cores: Vec<GpuCore>, // state: gpu-local
}
impl System {
    pub fn tick(&mut self, now: Cycle) {
        // audit:allow(cross-gpu-write) requester id proven equal to g by the token mint
        self.cores[0].flush();
    }
}
struct GpuCore { dirty: u64 }
impl GpuCore { pub fn flush(&mut self) { self.dirty = 0; } }
";
        let out = run(src);
        assert_eq!(rules(&out), Vec::<&str>::new(), "{:?}", out.diags);
        assert_eq!(out.used_allows.len(), 1);
    }

    #[test]
    fn unannotated_field_write_is_a_finding() {
        let src = "\
struct System {
    mystery: u64,
}
impl System {
    pub fn tick(&mut self, now: Cycle) { self.mystery += 1; }
}
";
        let out = run(src);
        assert_eq!(rules(&out), ["cross-gpu-write"]);
        assert!(out.diags[0].message.contains("no `// state:`"));
    }

    #[test]
    fn cross_context_call_is_checked() {
        let src = "\
struct System {
    num_gpus: usize, // state: shared
    cores: Vec<GpuCore>, // state: gpu-local
}
impl System {
    pub fn tick(&mut self, now: Cycle) {
        for g in 0..self.num_gpus {
            let home = g + 1;
            self.apply(home, now);
        }
    }
    // tick-context: target
    fn apply(&mut self, target: usize, now: Cycle) {
        self.cores[target].flush();
    }
}
struct GpuCore { dirty: u64 }
impl GpuCore { pub fn flush(&mut self) { self.dirty = 0; } }
";
        let out = run(src);
        assert_eq!(rules(&out), ["cross-gpu-write"], "{:?}", out.diags);
        assert!(
            out.diags[0].message.contains("tick-context"),
            "{}",
            out.diags[0].message
        );

        // The same call inside an exchange region is a declared hand-off.
        let annotated = src.replace(
            "self.apply(home, now);",
            "// exchange: invalidate fan-out crosses GPUs by design\n            self.apply(home, now);",
        );
        assert_eq!(rules(&run(&annotated)), Vec::<&str>::new());
    }

    #[test]
    fn order_sensitive_iteration_needs_determinism_argument() {
        let src = "\
struct System {
    pending: Slab<Pending>, // state: shared
    total: u64, // state: shared
}
impl System {
    pub fn tick(&mut self, now: Cycle) {
        let total = &mut self.total;
        self.pending.for_each(|_, p| { *total += 1; });
    }
}
";
        let out = run(src);
        assert_eq!(
            rules(&out),
            ["order-sensitive-iteration"],
            "{:?}",
            out.diags
        );

        let annotated = src.replace(
            "self.pending.for_each",
            "// determinism: summation commutes; order cannot reach the journal\n        self.pending.for_each",
        );
        assert_eq!(rules(&run(&annotated)), Vec::<&str>::new());

        // Read-only iteration needs no annotation.
        let readonly = src.replace("*total += 1;", "let _ = p;");
        assert_eq!(rules(&run(&readonly)), Vec::<&str>::new());
    }

    #[test]
    fn borrow_bindings_attribute_writes_to_the_field() {
        let src = "\
struct System {
    prof: Option<Vec<FastSet>>, // state: gpu-local
}
impl System {
    // tick-context: target
    fn apply(&mut self, target: usize) {
        if let Some(sets) = self.prof.as_mut() {
            sets[target].insert(1);
        }
    }
    pub fn tick(&mut self, now: Cycle) {
        for g in 0..2 { self.apply(g); }
    }
}
";
        let out = run(src);
        assert_eq!(rules(&out), Vec::<&str>::new(), "{:?}", out.diags);
        assert!(out
            .rows
            .iter()
            .any(|r| r.field == "prof" && r.access == "write" && r.note == "ctx=target"));
        // The mis-indexed variant fires.
        let bad = src.replace("sets[target].insert(1);", "sets[0].insert(1);");
        assert_eq!(rules(&run(&bad)), ["cross-gpu-write"]);
    }

    #[test]
    fn scratch_and_shared_writes_are_recorded_not_flagged() {
        let out = run(CLEAN);
        assert!(out
            .rows
            .iter()
            .any(|r| r.field == "scratch" && r.access == "write" && r.class == "scratch"));
        assert!(out
            .rows
            .iter()
            .any(|r| r.field == "net" && r.access == "write" && r.class == "shared"));
    }

    #[test]
    fn unreachable_functions_are_not_analyzed() {
        let src = "\
struct System {
    cores: Vec<GpuCore>, // state: gpu-local
}
impl System {
    pub fn tick(&mut self, now: Cycle) {}
    pub fn build_only(&mut self) { self.cores[7].flush(); }
}
struct GpuCore { dirty: u64 }
impl GpuCore { pub fn flush(&mut self) { self.dirty = 0; } }
";
        assert_eq!(rules(&run(src)), Vec::<&str>::new());
    }

    #[test]
    fn matrix_tsv_is_deterministic_and_sorted() {
        let a = matrix_tsv(&run(CLEAN).rows);
        let b = matrix_tsv(&run(CLEAN).rows);
        assert_eq!(a, b);
        assert!(a.starts_with("file\tfunction\tfield\taccess\tclass\tnote\n"));
        let lines: Vec<&str> = a.lines().skip(1).collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
    }
}
