//! Shared command-line front end for the audit tooling.
//!
//! Both binaries route here — `carve-audit <args>` directly, and
//! `carve-sim audit <args>` after prepending `lint` when no subcommand
//! is named — so flags cannot skew between the two entry points.
//!
//! ```text
//! lint    [--json] [ROOT]      run every rule; exit 1 on findings
//! effects [--out PATH] [ROOT]  write the State-Access Matrix TSV
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::fs;
use std::path::{Path, PathBuf};

use crate::{analyze, effects, load_workspace, Analysis};

/// Default location of the committed State-Access Matrix snapshot.
pub const EFFECTS_SNAPSHOT: &str = "results/effects.tsv";

const USAGE: &str = "\
usage: carve-audit <command> [options]

commands:
  lint    [--json] [ROOT]      run all audit rules over the workspace
                               (--json: machine-readable findings, sorted
                               by (path, line, rule))
  effects [--out PATH] [ROOT]  regenerate the State-Access Matrix
                               (defaults to ROOT/results/effects.tsv)

ROOT defaults to the enclosing workspace of the current directory.
exit codes: 0 clean, 1 findings, 2 usage/io error";

/// Walks upward from `start` to the first directory containing
/// `crates/`.
fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn resolve_root(explicit: Option<&str>) -> Result<PathBuf, String> {
    match explicit {
        Some(p) => {
            let path = PathBuf::from(p);
            if path.join("crates").is_dir() {
                Ok(path)
            } else {
                Err(format!("{p} has no crates/ directory"))
            }
        }
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_root(&cwd)
                .ok_or_else(|| "no workspace root found above the current directory".to_string())
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an [`Analysis`] as the machine-readable findings document.
pub fn findings_json(analysis: &Analysis) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"findings\": [",
        analysis.files_scanned
    ));
    for (i, d) in analysis.diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            d.rule.name(),
            json_escape(&d.message)
        ));
    }
    if analysis.diags.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

fn run_lint(args: &[String]) -> u8 {
    let mut json = false;
    let mut root_arg: Option<&str> = None;
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            s if s.starts_with('-') => {
                eprintln!("carve-audit: unknown lint option {s}\n{USAGE}");
                return 2;
            }
            s if root_arg.is_none() => root_arg = Some(s),
            s => {
                eprintln!("carve-audit: unexpected argument {s}\n{USAGE}");
                return 2;
            }
        }
    }
    let root = match resolve_root(root_arg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("carve-audit: {e}");
            return 2;
        }
    };
    let files = match load_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("carve-audit: {e}");
            return 2;
        }
    };
    let analysis = analyze(&files);
    if json {
        print!("{}", findings_json(&analysis));
    } else {
        for d in &analysis.diags {
            println!("{d}");
        }
        if analysis.diags.is_empty() {
            println!(
                "carve-audit: clean ({} files, {} rules)",
                analysis.files_scanned,
                crate::Rule::all().len()
            );
        } else {
            eprintln!("carve-audit: {} finding(s)", analysis.diags.len());
        }
    }
    u8::from(!analysis.diags.is_empty())
}

fn run_effects(args: &[String]) -> u8 {
    let mut out_path: Option<PathBuf> = None;
    let mut root_arg: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("carve-audit: --out needs a path\n{USAGE}");
                    return 2;
                }
            },
            s if s.starts_with('-') => {
                eprintln!("carve-audit: unknown effects option {s}\n{USAGE}");
                return 2;
            }
            s if root_arg.is_none() => root_arg = Some(s),
            s => {
                eprintln!("carve-audit: unexpected argument {s}\n{USAGE}");
                return 2;
            }
        }
    }
    let root = match resolve_root(root_arg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("carve-audit: {e}");
            return 2;
        }
    };
    let files = match load_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("carve-audit: {e}");
            return 2;
        }
    };
    let analysis = analyze(&files);
    let tsv = effects::matrix_tsv(&analysis.matrix);
    let dest = out_path.unwrap_or_else(|| root.join(EFFECTS_SNAPSHOT));
    if let Some(parent) = dest.parent() {
        if let Err(e) = fs::create_dir_all(parent) {
            eprintln!("carve-audit: creating {}: {e}", parent.display());
            return 2;
        }
    }
    if let Err(e) = fs::write(&dest, &tsv) {
        eprintln!("carve-audit: writing {}: {e}", dest.display());
        return 2;
    }
    println!(
        "carve-audit: wrote {} ({} rows)",
        dest.display(),
        analysis.matrix.len()
    );
    0
}

/// The shared entry point. Returns the process exit code.
pub fn run(args: &[String]) -> u8 {
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("effects") => run_effects(&args[1..]),
        Some("--help") | Some("-h") | Some("help") => {
            println!("{USAGE}");
            0
        }
        Some(other) => {
            eprintln!("carve-audit: unknown command {other}\n{USAGE}");
            2
        }
        None => {
            eprintln!("{USAGE}");
            2
        }
    }
}

/// Adapter for `carve-sim audit [...]`: historical invocations passed
/// lint arguments directly, so prepend `lint` unless a subcommand is
/// already named.
pub fn run_embedded(args: &[String]) -> u8 {
    let named = matches!(
        args.first().map(String::as_str),
        Some("lint") | Some("effects") | Some("--help") | Some("-h") | Some("help")
    );
    if named {
        run(args)
    } else {
        let mut full = vec!["lint".to_string()];
        full.extend(args.iter().cloned());
        run(&full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Diagnostic, Rule};

    #[test]
    fn json_is_escaped_and_shaped() {
        let analysis = Analysis {
            diags: vec![Diagnostic {
                file: "crates/a/src/lib.rs".into(),
                line: 3,
                rule: Rule::WallClock,
                message: "say \"no\" to\nwall clocks".into(),
            }],
            matrix: Vec::new(),
            files_scanned: 7,
        };
        let j = findings_json(&analysis);
        assert!(j.contains("\"files_scanned\": 7"));
        assert!(j.contains("\\\"no\\\" to\\nwall"));
        assert!(j.contains("\"rule\": \"wall-clock\""));
    }

    #[test]
    fn empty_findings_render_as_empty_array() {
        let analysis = Analysis {
            diags: Vec::new(),
            matrix: Vec::new(),
            files_scanned: 2,
        };
        let j = findings_json(&analysis);
        assert!(j.contains("\"findings\": []"), "{j}");
    }
}
