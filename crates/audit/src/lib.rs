//! First-party static-analysis rules for the carve-mgpu workspace.
//!
//! This is a deliberately dependency-free, line-oriented source scanner —
//! no `syn`, no `dylint`, nothing that needs a network or a nightly
//! toolchain. It enforces simulator-specific invariants that `rustc` and
//! `clippy` cannot express because they are about *which module* code
//! lives in, not whether it is well-typed:
//!
//! * [`tick-path-collections`] — the per-cycle datapath (`system::sim`,
//!   `gpu::sm`, `dram`, `noc`, `cache::mshr`, `carve::*`) must use
//!   `sim_core::fast` lookup structures. `HashMap`/`HashSet`/`BTreeMap`/
//!   `BTreeSet` carry SipHash cost and (for the hash maps) nondeterministic
//!   iteration order that would poison the bit-identical journals.
//!   `VecDeque`/`BinaryHeap` are deterministic and stay allowed.
//! * [`wall-clock`] — crates whose state feeds journal lines must not read
//!   `SystemTime`/`Instant` or OS randomness (`thread_rng`): simulated
//!   time comes from [`Cycle`]s and randomness from the seeded splitmix
//!   RNG, or replays stop being replays.
//! * [`tick-path-panics`] — non-test tick-path code must not
//!   `unwrap`/`expect`/`panic!` — nor `unreachable!`/`todo!`/
//!   `unimplemented!`, which fault injection turns from "can't happen"
//!   into crashes; fallible paths route through `SimError` (or the
//!   sanitizer, for protocol-impossible deliveries) so campaigns journal
//!   the failure instead of losing the worker.
//! * [`lossy-cast`] — no silent-truncating `as` casts on cycle/address/
//!   token-typed values; 20-bit epoch counters taught us how those bite.
//! * [`equivalence-doc`] — every module carrying an event-horizon
//!   fast-path cache (`min_finish`, `min_arrival`, `next_event`,
//!   `next_activity`) must contain an `// EQUIVALENCE:` comment block
//!   arguing why skipping is bit-identical to stepping.
//!
//! Any finding can be suppressed in place with an allow-comment on the
//! same or the immediately preceding line:
//!
//! ```text
//! // audit:allow(wall-clock) CLI progress timer, never enters a journal
//! let started = Instant::now();
//! ```
//!
//! The rule name must match and the reason must be non-empty, otherwise
//! the finding still fires. Run the scanner with `carve-audit lint` (or
//! `carve-sim audit`); it exits non-zero and prints `file:line: rule:
//! message` diagnostics on any finding.
//!
//! [`tick-path-collections`]: Rule::TickPathCollections
//! [`wall-clock`]: Rule::WallClock
//! [`tick-path-panics`]: Rule::TickPathPanics
//! [`lossy-cast`]: Rule::LossyCast
//! [`equivalence-doc`]: Rule::EquivalenceDoc
//! [`Cycle`]: https://docs.rs/ (sim-core::Cycle)

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod cli;
pub mod effects;
pub mod items;
pub mod lex;

/// The rules the scanner knows, with their allow-comment names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Hash/btree collections in tick-path modules.
    TickPathCollections,
    /// Wall-clock time or OS randomness in journal-feeding crates.
    WallClock,
    /// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`
    /// in non-test tick-path code.
    TickPathPanics,
    /// Truncating `as` casts on cycle/address-typed values.
    LossyCast,
    /// Event-cache module missing its `// EQUIVALENCE:` block.
    EquivalenceDoc,
    /// A tick function writing another GPU's state (or undeclared
    /// state) outside an `// exchange:` region. See [`effects`].
    CrossGpuWrite,
    /// `for_each`/`values` iteration over an order-carrying container
    /// with writes in its body and no `// determinism:` argument.
    OrderSensitiveIteration,
    /// An `audit:allow(...)` comment that no longer suppresses any
    /// finding.
    StaleAllow,
}

impl Rule {
    /// The name used in diagnostics and `audit:allow(...)` comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::TickPathCollections => "tick-path-collections",
            Rule::WallClock => "wall-clock",
            Rule::TickPathPanics => "tick-path-panics",
            Rule::LossyCast => "lossy-cast",
            Rule::EquivalenceDoc => "equivalence-doc",
            Rule::CrossGpuWrite => "cross-gpu-write",
            Rule::OrderSensitiveIteration => "order-sensitive-iteration",
            Rule::StaleAllow => "stale-allow",
        }
    }

    /// All rules, for `--list` style output.
    pub fn all() -> [Rule; 8] {
        [
            Rule::TickPathCollections,
            Rule::WallClock,
            Rule::TickPathPanics,
            Rule::LossyCast,
            Rule::EquivalenceDoc,
            Rule::CrossGpuWrite,
            Rule::OrderSensitiveIteration,
            Rule::StaleAllow,
        ]
    }
}

/// One finding, pointing at a workspace-relative file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// What was found and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Whether `rel` (workspace-relative, `/`-separated) is a tick-path
/// module: code executed every simulated cycle, where lookup structure
/// and panic discipline are load-bearing.
fn is_tick_path(rel: &str) -> bool {
    rel == "crates/system/src/sim.rs"
        || rel == "crates/gpu/src/sm.rs"
        || rel == "crates/dram/src/lib.rs"
        || rel == "crates/noc/src/lib.rs"
        || rel == "crates/cache/src/mshr.rs"
        || rel.starts_with("crates/carve/src/")
}

/// Crates whose state can end up encoded in a journal line. `bench` and
/// `experiments` time wall-clock on purpose (throughput reporting and
/// campaign bookkeeping) and are out of scope.
const JOURNAL_FEEDING_CRATES: [&str; 9] = [
    "sim-core", "system", "carve", "cache", "dram", "gpu", "noc", "trace", "runtime",
];

fn is_journal_feeding(rel: &str) -> bool {
    JOURNAL_FEEDING_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
}

/// Splits a source line into (code, comment) at the first `//` that is
/// not inside a string literal (tracked naively over `"` with `\"`
/// escapes — good enough for this codebase's style).
fn split_comment(line: &str) -> (&str, &str) {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip the escaped byte
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return (&line[..i], &line[i..]);
            }
            _ => {}
        }
        i += 1;
    }
    (line, "")
}

/// Parses `audit:allow(rule) reason` out of a comment fragment. Returns
/// `Some((rule_name, reason))` when the syntax is present (reason may be
/// empty — the caller decides whether that suppresses).
pub(crate) fn parse_allow(comment: &str) -> Option<(&str, &str)> {
    let idx = comment.find("audit:allow(")?;
    let rest = &comment[idx + "audit:allow(".len()..];
    let close = rest.find(')')?;
    let rule = rest[..close].trim();
    let reason = rest[close + 1..].trim();
    Some((rule, reason))
}

/// Whether a finding of `rule` on this line is suppressed by an
/// allow-comment on the same line or the immediately preceding one.
/// A matching allow with an empty reason does *not* suppress: reasons
/// are the whole point of the mechanism. Returns the line the allow sits
/// on, so `stale-allow` can mark it used.
fn allowed(
    rule: Rule,
    same_line_comment: &str,
    line_no: usize,
    prev_line: &str,
    prev_no: usize,
) -> Option<usize> {
    for (comment, no) in [(same_line_comment, line_no), (prev_line, prev_no)] {
        if let Some((name, reason)) = parse_allow(comment) {
            if name == rule.name() && !reason.is_empty() {
                return Some(no);
            }
        }
    }
    None
}

/// Identifier-ish characters for the cast-operand walk-back.
fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'.'
}

/// Finds truncating casts whose operand names a cycle/address/token
/// quantity. Widening casts (`as u64`) and index casts (`g as u32`) are
/// fine; `now as u32` or `line_addr as u32` are not.
fn lossy_cast_operand(code: &str) -> Option<String> {
    const TARGETS: [&str; 6] = [
        " as u8", " as u16", " as u32", " as i8", " as i16", " as i32",
    ];
    const SUSPECT: [&str; 8] = [
        "cycle",
        "addr",
        "token",
        "tag",
        "now",
        "epoch",
        "line_addr",
        "clock",
    ];
    for t in TARGETS {
        let mut from = 0;
        while let Some(pos) = code[from..].find(t) {
            let at = from + pos;
            // The cast target must end the expression or be followed by a
            // non-identifier character (so " as u32" doesn't match
            // " as u32x4" or similar).
            let after = at + t.len();
            if code
                .as_bytes()
                .get(after)
                .copied()
                .is_some_and(is_ident_char)
            {
                from = after;
                continue;
            }
            // Walk back over the operand's identifier path.
            let bytes = code.as_bytes();
            let mut start = at;
            while start > 0 && is_ident_char(bytes[start - 1]) {
                start -= 1;
            }
            let operand = &code[start..at];
            let lower = operand.to_ascii_lowercase();
            if SUSPECT.iter().any(|s| lower.contains(s)) {
                return Some(operand.to_string());
            }
            from = after;
        }
    }
    None
}

/// Substrings whose presence marks an event-horizon fast-path cache.
const EVENT_CACHE_MARKERS: [&str; 4] = [
    "min_finish",
    "min_arrival",
    "fn next_event",
    "fn next_activity",
];

/// One `audit:allow` site found outside test modules, for `stale-allow`
/// tracking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowSite {
    pub line: usize,
    pub rule: String,
}

/// Line-scanner output with the bookkeeping `stale-allow` needs.
#[derive(Debug, Default)]
pub struct FileScan {
    pub diags: Vec<Diagnostic>,
    pub allow_sites: Vec<AllowSite>,
    /// Lines whose allow-comment suppressed a finding.
    pub used_allows: BTreeSet<usize>,
}

/// A logical source line: grouped `use` imports wrapped by rustfmt
/// (`use std::collections::{\n  HashMap,\n};`) are joined into one line
/// attributed to the `use` keyword, so line rules can't be dodged by
/// wrapping and one allow-comment governs the whole group.
struct Logical {
    no: usize,
    raw: String,
    code: String,
    comment: String,
}

fn logical_lines(content: &str) -> Vec<Logical> {
    let mut out = Vec::new();
    let mut lines = content.lines().enumerate();
    while let Some((idx, raw)) = lines.next() {
        let (code, comment) = split_comment(raw);
        let trimmed = code.trim_start();
        let is_use = trimmed.starts_with("use ") || trimmed.starts_with("pub use ");
        if is_use && !code.contains(';') {
            let mut jcode = code.to_string();
            let mut jcomment = comment.to_string();
            for (_, raw2) in lines.by_ref() {
                let (code2, comment2) = split_comment(raw2);
                jcode.push(' ');
                jcode.push_str(code2.trim());
                if !comment2.is_empty() {
                    jcomment.push(' ');
                    jcomment.push_str(comment2);
                }
                if code2.contains(';') {
                    break;
                }
            }
            out.push(Logical {
                no: idx + 1,
                raw: raw.to_string(),
                code: jcode,
                comment: jcomment,
            });
        } else {
            out.push(Logical {
                no: idx + 1,
                raw: raw.to_string(),
                code: code.to_string(),
                comment: comment.to_string(),
            });
        }
    }
    out
}

/// Scans one file's content. `rel` is the workspace-relative path with
/// `/` separators; it selects which rules apply.
pub fn scan_file(rel: &str, content: &str) -> Vec<Diagnostic> {
    scan_file_tracked(rel, content).diags
}

/// [`scan_file`] plus allow-site bookkeeping for `stale-allow`.
pub fn scan_file_tracked(rel: &str, content: &str) -> FileScan {
    let tick_path = is_tick_path(rel);
    let journal_feeding = is_journal_feeding(rel);
    if !tick_path && !journal_feeding {
        return FileScan::default();
    }

    let mut out = FileScan::default();
    let diags = &mut out.diags;
    let mut prev_line = String::new();
    let mut prev_no = 0usize;
    // Test-module skipping: a `#[cfg(test)]` attribute arms the skipper;
    // the next `mod ... {` enters it; brace depth tracks the exit.
    let mut test_pending = false;
    let mut test_depth: i64 = 0;
    let mut has_equivalence = false;
    let mut first_marker: Option<(usize, &str)> = None;

    for line in logical_lines(content) {
        let line_no = line.no;
        let code = line.code.as_str();
        let comment = line.comment.as_str();
        let trimmed = line.raw.trim_start();

        if comment.contains("EQUIVALENCE:") || trimmed.starts_with("//! EQUIVALENCE:") {
            has_equivalence = true;
        }

        // Inside a `#[cfg(test)] mod`: only track braces until it closes.
        if test_depth > 0 {
            for b in code.bytes() {
                match b {
                    b'{' => test_depth += 1,
                    b'}' => test_depth -= 1,
                    _ => {}
                }
            }
            prev_line = line.raw;
            prev_no = line_no;
            continue;
        }
        if trimmed.starts_with("#[cfg(test)]") {
            test_pending = true;
            prev_line = line.raw;
            prev_no = line_no;
            continue;
        }
        if test_pending && !trimmed.is_empty() && !trimmed.starts_with("//") {
            test_pending = false;
            if trimmed.starts_with("mod") && code.contains('{') {
                for b in code.bytes() {
                    match b {
                        b'{' => test_depth += 1,
                        b'}' => test_depth -= 1,
                        _ => {}
                    }
                }
                prev_line = line.raw;
                prev_no = line_no;
                continue;
            }
            // `#[cfg(test)]` on a non-module item (a lone fn or use):
            // skip just that line, conservatively.
            prev_line = line.raw;
            prev_no = line_no;
            continue;
        }

        // Record well-formed allow-comments outside test modules so
        // `stale-allow` can later flag the ones nothing uses.
        if let Some((rule, reason)) = parse_allow(comment) {
            if !reason.is_empty() {
                out.allow_sites.push(AllowSite {
                    line: line_no,
                    rule: rule.to_string(),
                });
            }
        }

        // Whole-line comments only ever feed the equivalence rule and
        // the allow-site table.
        if trimmed.starts_with("//") {
            prev_line = line.raw;
            prev_no = line_no;
            continue;
        }

        if tick_path {
            if first_marker.is_none() {
                for m in EVENT_CACHE_MARKERS {
                    if code.contains(m) {
                        first_marker = Some((line_no, m));
                        break;
                    }
                }
            }
            for ty in ["HashMap", "HashSet", "BTreeMap", "BTreeSet"] {
                if code.contains(ty) {
                    match allowed(
                        Rule::TickPathCollections,
                        comment,
                        line_no,
                        &prev_line,
                        prev_no,
                    ) {
                        Some(l) => {
                            out.used_allows.insert(l);
                        }
                        None => diags.push(Diagnostic {
                            file: rel.to_string(),
                            line: line_no,
                            rule: Rule::TickPathCollections,
                            message: format!(
                                "`{ty}` in a tick-path module; use `sim_core::fast` \
                                 (FastMap/FastSet/Slab/TagTable) so lookups stay \
                                 allocation-free and iteration-order deterministic"
                            ),
                        }),
                    }
                    break;
                }
            }
            // `unreachable!`/`todo!`/`unimplemented!` are panics too — and
            // the fault-injection layer makes "can't happen" deliveries
            // happen (a duplicated packet reaching a token whose state
            // machine already moved on). Such arms must discard-and-report
            // through the sanitizer, not abort the worker.
            for pat in [
                ".unwrap()",
                ".expect(",
                "panic!(",
                "unreachable!(",
                "todo!(",
                "unimplemented!(",
            ] {
                if code.contains(pat) {
                    match allowed(Rule::TickPathPanics, comment, line_no, &prev_line, prev_no) {
                        Some(l) => {
                            out.used_allows.insert(l);
                        }
                        None => diags.push(Diagnostic {
                            file: rel.to_string(),
                            line: line_no,
                            rule: Rule::TickPathPanics,
                            message: format!(
                                "`{}` in non-test tick-path code; route the failure \
                                 through `SimError` so campaigns journal it instead \
                                 of losing the worker",
                                pat.trim_start_matches('.')
                            ),
                        }),
                    }
                    break;
                }
            }
            if let Some(op) = lossy_cast_operand(code) {
                match allowed(Rule::LossyCast, comment, line_no, &prev_line, prev_no) {
                    Some(l) => {
                        out.used_allows.insert(l);
                    }
                    None => diags.push(Diagnostic {
                        file: rel.to_string(),
                        line: line_no,
                        rule: Rule::LossyCast,
                        message: format!(
                            "truncating `as` cast on `{op}` (cycle/address-typed); \
                             use `try_into` or widen the destination"
                        ),
                    }),
                }
            }
        }

        if journal_feeding {
            let wall = code.contains("SystemTime")
                || code.contains("Instant::now")
                || code.contains("std::time::Instant")
                || (code.contains("std::time::{") && code.contains("Instant"))
                || code.contains("thread_rng")
                || code.contains("rand::random");
            if wall {
                match allowed(Rule::WallClock, comment, line_no, &prev_line, prev_no) {
                    Some(l) => {
                        out.used_allows.insert(l);
                    }
                    None => diags.push(Diagnostic {
                        file: rel.to_string(),
                        line: line_no,
                        rule: Rule::WallClock,
                        message: "wall-clock time or OS randomness in a journal-feeding \
                                  crate; simulated time comes from `Cycle`, randomness \
                                  from the seeded `sim_core::rng`"
                            .to_string(),
                    }),
                }
            }
        }

        prev_line = line.raw;
        prev_no = line_no;
    }

    if tick_path && !has_equivalence {
        if let Some((line, marker)) = first_marker {
            diags.push(Diagnostic {
                file: rel.to_string(),
                line,
                rule: Rule::EquivalenceDoc,
                message: format!(
                    "module carries an event-horizon fast path (`{marker}`) but no \
                     `// EQUIVALENCE:` block arguing bit-identity with stepping"
                ),
            });
        }
    }

    diags.sort_by(|a, b| (a.line, a.rule.name()).cmp(&(b.line, b.rule.name())));
    out
}

/// Recursively collects `.rs` files under `dir` into `out`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Loads every `crates/*/src/**/*.rs` under `root` (the workspace root)
/// as `(workspace-relative path, contents)`, sorted by path.
pub fn load_workspace(root: &Path) -> io::Result<Vec<(String, String)>> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "{} has no crates/ directory; pass the workspace root",
                root.display()
            ),
        ));
    }
    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        out.push((rel, fs::read_to_string(&path)?));
    }
    Ok(out)
}

/// Combined result of the line rules, the tick-path effect analysis,
/// and `stale-allow` reconciliation.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All findings, sorted by (file, line, rule, message).
    pub diags: Vec<Diagnostic>,
    /// The State-Access Matrix (see [`effects`]).
    pub matrix: Vec<effects::MatrixRow>,
    pub files_scanned: usize,
}

/// Runs every rule over in-memory file contents
/// (`(workspace-relative path, contents)` pairs).
pub fn analyze(files: &[(String, String)]) -> Analysis {
    let mut diags = Vec::new();
    let mut sites: Vec<(String, usize, String)> = Vec::new();
    let mut used: BTreeSet<(String, usize)> = BTreeSet::new();
    for (rel, content) in files {
        let scan = scan_file_tracked(rel, content);
        diags.extend(scan.diags);
        for s in scan.allow_sites {
            sites.push((rel.clone(), s.line, s.rule));
        }
        used.extend(scan.used_allows.into_iter().map(|l| (rel.clone(), l)));
    }
    let eff = effects::analyze_effects(files);
    diags.extend(eff.diags);
    used.extend(eff.used_allows);
    for (file, line, rule) in sites {
        if !used.contains(&(file.clone(), line)) {
            diags.push(Diagnostic {
                file,
                line,
                rule: Rule::StaleAllow,
                message: format!(
                    "`audit:allow({rule})` suppresses nothing here; remove the \
                     comment, or fix the rule name if it was meant to match"
                ),
            });
        }
    }
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.name(), a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule.name(),
            b.message.as_str(),
        ))
    });
    Analysis {
        diags,
        matrix: eff.rows,
        files_scanned: files.len(),
    }
}

/// Scans every `crates/*/src/**/*.rs` under `root` (the workspace root)
/// with all rules. Returns the findings plus the number of files
/// scanned.
pub fn scan_workspace(root: &Path) -> io::Result<(Vec<Diagnostic>, usize)> {
    let files = load_workspace(root)?;
    let analysis = analyze(&files);
    Ok((analysis.diags, analysis.files_scanned))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: &str = "crates/carve/src/rdc.rs";

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule.name()).collect()
    }

    #[test]
    fn collections_flagged_in_tick_path_with_line() {
        let src = "use std::collections::HashMap;\nfn f() {}\n";
        let d = scan_file(TICK, src);
        assert_eq!(rules_of(&d), ["tick-path-collections"]);
        assert_eq!(d[0].line, 1);
        assert_eq!(d[0].file, TICK);
    }

    #[test]
    fn collections_ignored_outside_tick_path() {
        let src = "use std::collections::HashMap;\n";
        assert!(scan_file("crates/runtime/src/sharing.rs", src).is_empty());
    }

    #[test]
    fn deterministic_collections_stay_allowed() {
        let src = "use std::collections::{BinaryHeap, VecDeque};\n";
        assert!(scan_file(TICK, src).is_empty());
    }

    #[test]
    fn allow_comment_with_reason_suppresses() {
        let src = "// audit:allow(tick-path-collections) cold path, sized once at build\n\
                   use std::collections::HashMap;\n";
        assert!(scan_file(TICK, src).is_empty());
        let same_line =
            "use std::collections::HashMap; // audit:allow(tick-path-collections) cold path\n";
        assert!(scan_file(TICK, same_line).is_empty());
    }

    #[test]
    fn allow_comment_without_reason_does_not_suppress() {
        let src = "// audit:allow(tick-path-collections)\nuse std::collections::HashMap;\n";
        assert_eq!(rules_of(&scan_file(TICK, src)), ["tick-path-collections"]);
    }

    #[test]
    fn allow_comment_for_wrong_rule_does_not_suppress() {
        let src = "// audit:allow(wall-clock) wrong rule\nuse std::collections::HashMap;\n";
        assert_eq!(rules_of(&scan_file(TICK, src)), ["tick-path-collections"]);
    }

    #[test]
    fn wall_clock_flagged_in_journal_feeding_crate() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let d = scan_file("crates/system/src/metrics.rs", src);
        assert_eq!(rules_of(&d), ["wall-clock", "wall-clock"]);
        assert_eq!(d[0].line, 1);
        let braced = "use std::time::{Duration, Instant};\n";
        assert_eq!(
            rules_of(&scan_file("crates/sim-core/src/stats.rs", braced)),
            ["wall-clock"]
        );
        let rng = "let x = rand::thread_rng().gen::<u64>();\n";
        assert_eq!(
            rules_of(&scan_file("crates/gpu/src/core.rs", rng)),
            ["wall-clock"]
        );
    }

    #[test]
    fn trace_phase_instant_is_not_wall_clock() {
        let src =
            "let p = TracePhase::Instant;\nmatch p { TracePhase::Instant => \"i\", _ => \"x\" };\n";
        assert!(scan_file("crates/sim-core/src/telemetry.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_ignored_in_bench_and_experiments() {
        let src = "use std::time::Instant;\n";
        assert!(scan_file("crates/bench/src/lib.rs", src).is_empty());
        assert!(scan_file("crates/experiments/src/campaign.rs", src).is_empty());
    }

    #[test]
    fn panics_flagged_only_outside_test_modules() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn g(x: Option<u32>) -> u32 { x.unwrap() }\n\
                       fn h() { panic!(\"boom\"); }\n\
                   }\n";
        let d = scan_file(TICK, src);
        assert_eq!(rules_of(&d), ["tick-path-panics"]);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn expect_and_panic_flagged() {
        let src = "fn f(x: Option<u32>) { x.expect(\"set\"); }\nfn g() { panic!(\"no\"); }\n";
        let d = scan_file(TICK, src);
        assert_eq!(rules_of(&d), ["tick-path-panics", "tick-path-panics"]);
    }

    #[test]
    fn unreachable_and_friends_flagged_as_panics() {
        // Fault injection turns "can't happen" deliveries into things that
        // happen; every aborting macro in the tick path is a fuzz crash
        // waiting to be found.
        let src = "fn f(x: u8) { match x { 0 => {} _ => unreachable!(\"only zero\") } }\n\
                   fn g() { todo!(\"later\") }\n\
                   fn h() { unimplemented!() }\n";
        let d = scan_file(TICK, src);
        assert_eq!(
            rules_of(&d),
            ["tick-path-panics", "tick-path-panics", "tick-path-panics"]
        );
        assert!(d[0].message.contains("unreachable!("), "{:?}", d[0].message);
        // An allow-comment with a reason still suppresses it.
        let allowed = "// audit:allow(tick-path-panics) arm proven dead by the token slab\n\
                       fn f() { unreachable!() }\n";
        assert!(scan_file(TICK, allowed).is_empty());
    }

    #[test]
    fn lossy_cast_on_cycle_operand_flagged() {
        let src = "fn f(now: u64) -> u32 { now as u32 }\n";
        let d = scan_file(TICK, src);
        assert_eq!(rules_of(&d), ["lossy-cast"]);
        assert!(d[0].message.contains("now"));
        let addr = "let x = line_addr as u16;\n";
        assert_eq!(rules_of(&scan_file(TICK, addr)), ["lossy-cast"]);
    }

    #[test]
    fn widening_and_index_casts_stay_allowed() {
        let src = "let a = now as u64;\nlet b = g as u32;\nlet c = count as u32;\n";
        assert!(scan_file(TICK, src).is_empty());
    }

    #[test]
    fn equivalence_marker_required_for_event_caches() {
        let src = "struct Ch { min_finish: u64 }\n";
        let d = scan_file(TICK, src);
        assert_eq!(rules_of(&d), ["equivalence-doc"]);
        assert_eq!(d[0].line, 1);
        let documented = "// EQUIVALENCE: the cache only ever under-approximates the horizon.\n\
                          struct Ch { min_finish: u64 }\n";
        assert!(scan_file(TICK, documented).is_empty());
    }

    #[test]
    fn comment_mentions_do_not_fire_code_rules() {
        let src = "// HashMap would be wrong here; Instant::now too.\nfn f() {}\n";
        assert!(scan_file("crates/system/src/sim.rs", src).is_empty());
    }

    #[test]
    fn diagnostic_display_is_file_line_rule_message() {
        let d = Diagnostic {
            file: "crates/noc/src/lib.rs".into(),
            line: 42,
            rule: Rule::WallClock,
            message: "nope".into(),
        };
        assert_eq!(d.to_string(), "crates/noc/src/lib.rs:42: wall-clock: nope");
    }

    #[test]
    fn scan_workspace_rejects_non_workspace_roots() {
        let err = scan_workspace(Path::new("/nonexistent-root")).unwrap_err();
        assert!(err.to_string().contains("crates/"));
    }

    #[test]
    fn multiline_grouped_use_cannot_dodge_collections_rule() {
        // rustfmt-wrapped grouped import: the `HashMap` lands on its own
        // physical line, but the logical `use` line still fires.
        let src = "use std::collections::{\n    HashMap,\n    VecDeque,\n};\nfn f() {}\n";
        let d = scan_file(TICK, src);
        assert_eq!(rules_of(&d), ["tick-path-collections"]);
        assert_eq!(d[0].line, 1, "finding anchors on the `use` line");
    }

    #[test]
    fn multiline_grouped_use_cannot_dodge_wall_clock_rule() {
        let src = "use std::time::{\n    Duration,\n    Instant,\n};\n";
        let d = scan_file("crates/sim-core/src/stats.rs", src);
        assert_eq!(rules_of(&d), ["wall-clock"]);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn allow_on_use_line_governs_whole_group() {
        let src = "// audit:allow(tick-path-collections) build-time table, sized once\n\
                   use std::collections::{\n    HashMap,\n    HashSet,\n};\n";
        assert!(scan_file(TICK, src).is_empty());
    }

    #[test]
    fn stale_allow_is_flagged_and_live_allow_is_not() {
        let live = "// audit:allow(tick-path-collections) cold path, sized once\n\
                    use std::collections::HashMap;\n";
        let stale = "// audit:allow(tick-path-collections) nothing below uses one\n\
                     fn f() {}\n";
        let files = [
            (TICK.to_string(), live.to_string()),
            ("crates/carve/src/epoch.rs".to_string(), stale.to_string()),
        ];
        let analysis = analyze(&files);
        let stale_diags: Vec<_> = analysis
            .diags
            .iter()
            .filter(|d| d.rule == Rule::StaleAllow)
            .collect();
        assert_eq!(stale_diags.len(), 1, "{:?}", analysis.diags);
        assert_eq!(stale_diags[0].file, "crates/carve/src/epoch.rs");
        assert_eq!(stale_diags[0].line, 1);
    }

    #[test]
    fn misspelled_allow_rule_name_is_stale() {
        let src = "// audit:allow(tick-path-collection) typo: missing the final s\n\
                   use std::collections::HashMap;\n";
        let files = [(TICK.to_string(), src.to_string())];
        let analysis = analyze(&files);
        let rules: Vec<_> = analysis.diags.iter().map(|d| d.rule.name()).collect();
        // The finding still fires AND the typo'd allow is reported stale.
        assert!(rules.contains(&"tick-path-collections"), "{rules:?}");
        assert!(rules.contains(&"stale-allow"), "{rules:?}");
    }

    #[test]
    fn allow_inside_test_module_is_not_stale_tracked() {
        let src = "fn f() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       // audit:allow(tick-path-panics) test helper may unwrap\n\
                       fn g(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   }\n";
        let files = [(TICK.to_string(), src.to_string())];
        let analysis = analyze(&files);
        assert!(analysis.diags.is_empty(), "{:?}", analysis.diags);
    }

    #[test]
    fn analysis_sorts_by_file_line_rule() {
        let files = [
            (
                "crates/system/src/zz.rs".to_string(),
                "fn f() { let t = std::time::Instant::now(); }\n".to_string(),
            ),
            (
                "crates/carve/src/rdc.rs".to_string(),
                "use std::collections::HashMap;\nfn g(x: Option<u8>) { x.unwrap(); }\n".to_string(),
            ),
        ];
        let analysis = analyze(&files);
        let keys: Vec<_> = analysis
            .diags
            .iter()
            .map(|d| (d.file.clone(), d.line, d.rule.name()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
