//! First-party static-analysis rules for the carve-mgpu workspace.
//!
//! This is a deliberately dependency-free, line-oriented source scanner —
//! no `syn`, no `dylint`, nothing that needs a network or a nightly
//! toolchain. It enforces simulator-specific invariants that `rustc` and
//! `clippy` cannot express because they are about *which module* code
//! lives in, not whether it is well-typed:
//!
//! * [`tick-path-collections`] — the per-cycle datapath (`system::sim`,
//!   `gpu::sm`, `dram`, `noc`, `cache::mshr`, `carve::*`) must use
//!   `sim_core::fast` lookup structures. `HashMap`/`HashSet`/`BTreeMap`/
//!   `BTreeSet` carry SipHash cost and (for the hash maps) nondeterministic
//!   iteration order that would poison the bit-identical journals.
//!   `VecDeque`/`BinaryHeap` are deterministic and stay allowed.
//! * [`wall-clock`] — crates whose state feeds journal lines must not read
//!   `SystemTime`/`Instant` or OS randomness (`thread_rng`): simulated
//!   time comes from [`Cycle`]s and randomness from the seeded splitmix
//!   RNG, or replays stop being replays.
//! * [`tick-path-panics`] — non-test tick-path code must not
//!   `unwrap`/`expect`/`panic!` — nor `unreachable!`/`todo!`/
//!   `unimplemented!`, which fault injection turns from "can't happen"
//!   into crashes; fallible paths route through `SimError` (or the
//!   sanitizer, for protocol-impossible deliveries) so campaigns journal
//!   the failure instead of losing the worker.
//! * [`lossy-cast`] — no silent-truncating `as` casts on cycle/address/
//!   token-typed values; 20-bit epoch counters taught us how those bite.
//! * [`equivalence-doc`] — every module carrying an event-horizon
//!   fast-path cache (`min_finish`, `min_arrival`, `next_event`,
//!   `next_activity`) must contain an `// EQUIVALENCE:` comment block
//!   arguing why skipping is bit-identical to stepping.
//!
//! Any finding can be suppressed in place with an allow-comment on the
//! same or the immediately preceding line:
//!
//! ```text
//! // audit:allow(wall-clock) CLI progress timer, never enters a journal
//! let started = Instant::now();
//! ```
//!
//! The rule name must match and the reason must be non-empty, otherwise
//! the finding still fires. Run the scanner with `carve-audit lint` (or
//! `carve-sim audit`); it exits non-zero and prints `file:line: rule:
//! message` diagnostics on any finding.
//!
//! [`tick-path-collections`]: Rule::TickPathCollections
//! [`wall-clock`]: Rule::WallClock
//! [`tick-path-panics`]: Rule::TickPathPanics
//! [`lossy-cast`]: Rule::LossyCast
//! [`equivalence-doc`]: Rule::EquivalenceDoc
//! [`Cycle`]: https://docs.rs/ (sim-core::Cycle)

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The rules the scanner knows, with their allow-comment names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Hash/btree collections in tick-path modules.
    TickPathCollections,
    /// Wall-clock time or OS randomness in journal-feeding crates.
    WallClock,
    /// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`
    /// in non-test tick-path code.
    TickPathPanics,
    /// Truncating `as` casts on cycle/address-typed values.
    LossyCast,
    /// Event-cache module missing its `// EQUIVALENCE:` block.
    EquivalenceDoc,
}

impl Rule {
    /// The name used in diagnostics and `audit:allow(...)` comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::TickPathCollections => "tick-path-collections",
            Rule::WallClock => "wall-clock",
            Rule::TickPathPanics => "tick-path-panics",
            Rule::LossyCast => "lossy-cast",
            Rule::EquivalenceDoc => "equivalence-doc",
        }
    }

    /// All rules, for `--list` style output.
    pub fn all() -> [Rule; 5] {
        [
            Rule::TickPathCollections,
            Rule::WallClock,
            Rule::TickPathPanics,
            Rule::LossyCast,
            Rule::EquivalenceDoc,
        ]
    }
}

/// One finding, pointing at a workspace-relative file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// What was found and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Whether `rel` (workspace-relative, `/`-separated) is a tick-path
/// module: code executed every simulated cycle, where lookup structure
/// and panic discipline are load-bearing.
fn is_tick_path(rel: &str) -> bool {
    rel == "crates/system/src/sim.rs"
        || rel == "crates/gpu/src/sm.rs"
        || rel == "crates/dram/src/lib.rs"
        || rel == "crates/noc/src/lib.rs"
        || rel == "crates/cache/src/mshr.rs"
        || rel.starts_with("crates/carve/src/")
}

/// Crates whose state can end up encoded in a journal line. `bench` and
/// `experiments` time wall-clock on purpose (throughput reporting and
/// campaign bookkeeping) and are out of scope.
const JOURNAL_FEEDING_CRATES: [&str; 9] = [
    "sim-core", "system", "carve", "cache", "dram", "gpu", "noc", "trace", "runtime",
];

fn is_journal_feeding(rel: &str) -> bool {
    JOURNAL_FEEDING_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
}

/// Splits a source line into (code, comment) at the first `//` that is
/// not inside a string literal (tracked naively over `"` with `\"`
/// escapes — good enough for this codebase's style).
fn split_comment(line: &str) -> (&str, &str) {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip the escaped byte
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return (&line[..i], &line[i..]);
            }
            _ => {}
        }
        i += 1;
    }
    (line, "")
}

/// Parses `audit:allow(rule) reason` out of a comment fragment. Returns
/// `Some((rule_name, reason))` when the syntax is present (reason may be
/// empty — the caller decides whether that suppresses).
fn parse_allow(comment: &str) -> Option<(&str, &str)> {
    let idx = comment.find("audit:allow(")?;
    let rest = &comment[idx + "audit:allow(".len()..];
    let close = rest.find(')')?;
    let rule = rest[..close].trim();
    let reason = rest[close + 1..].trim();
    Some((rule, reason))
}

/// Whether a finding of `rule` on this line is suppressed by an
/// allow-comment on the same line or the immediately preceding one.
/// A matching allow with an empty reason does *not* suppress: reasons
/// are the whole point of the mechanism.
fn allowed(rule: Rule, same_line_comment: &str, prev_line: &str) -> bool {
    for comment in [same_line_comment, prev_line] {
        if let Some((name, reason)) = parse_allow(comment) {
            if name == rule.name() && !reason.is_empty() {
                return true;
            }
        }
    }
    false
}

/// Identifier-ish characters for the cast-operand walk-back.
fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'.'
}

/// Finds truncating casts whose operand names a cycle/address/token
/// quantity. Widening casts (`as u64`) and index casts (`g as u32`) are
/// fine; `now as u32` or `line_addr as u32` are not.
fn lossy_cast_operand(code: &str) -> Option<String> {
    const TARGETS: [&str; 6] = [
        " as u8", " as u16", " as u32", " as i8", " as i16", " as i32",
    ];
    const SUSPECT: [&str; 8] = [
        "cycle",
        "addr",
        "token",
        "tag",
        "now",
        "epoch",
        "line_addr",
        "clock",
    ];
    for t in TARGETS {
        let mut from = 0;
        while let Some(pos) = code[from..].find(t) {
            let at = from + pos;
            // The cast target must end the expression or be followed by a
            // non-identifier character (so " as u32" doesn't match
            // " as u32x4" or similar).
            let after = at + t.len();
            if code
                .as_bytes()
                .get(after)
                .copied()
                .is_some_and(is_ident_char)
            {
                from = after;
                continue;
            }
            // Walk back over the operand's identifier path.
            let bytes = code.as_bytes();
            let mut start = at;
            while start > 0 && is_ident_char(bytes[start - 1]) {
                start -= 1;
            }
            let operand = &code[start..at];
            let lower = operand.to_ascii_lowercase();
            if SUSPECT.iter().any(|s| lower.contains(s)) {
                return Some(operand.to_string());
            }
            from = after;
        }
    }
    None
}

/// Substrings whose presence marks an event-horizon fast-path cache.
const EVENT_CACHE_MARKERS: [&str; 4] = [
    "min_finish",
    "min_arrival",
    "fn next_event",
    "fn next_activity",
];

/// Scans one file's content. `rel` is the workspace-relative path with
/// `/` separators; it selects which rules apply.
pub fn scan_file(rel: &str, content: &str) -> Vec<Diagnostic> {
    let tick_path = is_tick_path(rel);
    let journal_feeding = is_journal_feeding(rel);
    if !tick_path && !journal_feeding {
        return Vec::new();
    }

    let mut diags = Vec::new();
    let mut prev_line = "";
    // Test-module skipping: a `#[cfg(test)]` attribute arms the skipper;
    // the next `mod ... {` enters it; brace depth tracks the exit.
    let mut test_pending = false;
    let mut test_depth: i64 = 0;
    let mut has_equivalence = false;
    let mut first_marker: Option<(usize, &str)> = None;

    for (idx, raw) in content.lines().enumerate() {
        let line_no = idx + 1;
        let (code, comment) = split_comment(raw);
        let trimmed = raw.trim_start();

        if comment.contains("EQUIVALENCE:") || trimmed.starts_with("//! EQUIVALENCE:") {
            has_equivalence = true;
        }

        // Inside a `#[cfg(test)] mod`: only track braces until it closes.
        if test_depth > 0 {
            for b in code.bytes() {
                match b {
                    b'{' => test_depth += 1,
                    b'}' => test_depth -= 1,
                    _ => {}
                }
            }
            prev_line = raw;
            continue;
        }
        if trimmed.starts_with("#[cfg(test)]") {
            test_pending = true;
            prev_line = raw;
            continue;
        }
        if test_pending && !trimmed.is_empty() && !trimmed.starts_with("//") {
            test_pending = false;
            if trimmed.starts_with("mod") && code.contains('{') {
                for b in code.bytes() {
                    match b {
                        b'{' => test_depth += 1,
                        b'}' => test_depth -= 1,
                        _ => {}
                    }
                }
                prev_line = raw;
                continue;
            }
            // `#[cfg(test)]` on a non-module item (a lone fn or use):
            // skip just that line, conservatively.
            prev_line = raw;
            continue;
        }

        // Whole-line comments only ever feed the equivalence rule.
        if trimmed.starts_with("//") {
            prev_line = raw;
            continue;
        }

        if tick_path {
            if first_marker.is_none() {
                for m in EVENT_CACHE_MARKERS {
                    if code.contains(m) {
                        first_marker = Some((line_no, m));
                        break;
                    }
                }
            }
            for ty in ["HashMap", "HashSet", "BTreeMap", "BTreeSet"] {
                if code.contains(ty) && !allowed(Rule::TickPathCollections, comment, prev_line) {
                    diags.push(Diagnostic {
                        file: rel.to_string(),
                        line: line_no,
                        rule: Rule::TickPathCollections,
                        message: format!(
                            "`{ty}` in a tick-path module; use `sim_core::fast` \
                             (FastMap/FastSet/Slab/TagTable) so lookups stay \
                             allocation-free and iteration-order deterministic"
                        ),
                    });
                    break;
                }
            }
            // `unreachable!`/`todo!`/`unimplemented!` are panics too — and
            // the fault-injection layer makes "can't happen" deliveries
            // happen (a duplicated packet reaching a token whose state
            // machine already moved on). Such arms must discard-and-report
            // through the sanitizer, not abort the worker.
            for pat in [
                ".unwrap()",
                ".expect(",
                "panic!(",
                "unreachable!(",
                "todo!(",
                "unimplemented!(",
            ] {
                if code.contains(pat) && !allowed(Rule::TickPathPanics, comment, prev_line) {
                    diags.push(Diagnostic {
                        file: rel.to_string(),
                        line: line_no,
                        rule: Rule::TickPathPanics,
                        message: format!(
                            "`{}` in non-test tick-path code; route the failure \
                             through `SimError` so campaigns journal it instead \
                             of losing the worker",
                            pat.trim_start_matches('.')
                        ),
                    });
                    break;
                }
            }
            if let Some(op) = lossy_cast_operand(code) {
                if !allowed(Rule::LossyCast, comment, prev_line) {
                    diags.push(Diagnostic {
                        file: rel.to_string(),
                        line: line_no,
                        rule: Rule::LossyCast,
                        message: format!(
                            "truncating `as` cast on `{op}` (cycle/address-typed); \
                             use `try_into` or widen the destination"
                        ),
                    });
                }
            }
        }

        if journal_feeding {
            let wall = code.contains("SystemTime")
                || code.contains("Instant::now")
                || code.contains("std::time::Instant")
                || (code.contains("std::time::{") && code.contains("Instant"))
                || code.contains("thread_rng")
                || code.contains("rand::random");
            if wall && !allowed(Rule::WallClock, comment, prev_line) {
                diags.push(Diagnostic {
                    file: rel.to_string(),
                    line: line_no,
                    rule: Rule::WallClock,
                    message: "wall-clock time or OS randomness in a journal-feeding \
                              crate; simulated time comes from `Cycle`, randomness \
                              from the seeded `sim_core::rng`"
                        .to_string(),
                });
            }
        }

        prev_line = raw;
    }

    if tick_path && !has_equivalence {
        if let Some((line, marker)) = first_marker {
            diags.push(Diagnostic {
                file: rel.to_string(),
                line,
                rule: Rule::EquivalenceDoc,
                message: format!(
                    "module carries an event-horizon fast path (`{marker}`) but no \
                     `// EQUIVALENCE:` block arguing bit-identity with stepping"
                ),
            });
        }
    }

    diags.sort_by(|a, b| (a.line, a.rule.name()).cmp(&(b.line, b.rule.name())));
    diags
}

/// Recursively collects `.rs` files under `dir` into `out`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every `crates/*/src/**/*.rs` under `root` (the workspace root).
/// Returns the findings plus the number of files scanned.
pub fn scan_workspace(root: &Path) -> io::Result<(Vec<Diagnostic>, usize)> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "{} has no crates/ directory; pass the workspace root",
                root.display()
            ),
        ));
    }
    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    let mut diags = Vec::new();
    let scanned = files.len();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let content = fs::read_to_string(&path)?;
        diags.extend(scan_file(&rel, &content));
    }
    Ok((diags, scanned))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: &str = "crates/carve/src/rdc.rs";

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule.name()).collect()
    }

    #[test]
    fn collections_flagged_in_tick_path_with_line() {
        let src = "use std::collections::HashMap;\nfn f() {}\n";
        let d = scan_file(TICK, src);
        assert_eq!(rules_of(&d), ["tick-path-collections"]);
        assert_eq!(d[0].line, 1);
        assert_eq!(d[0].file, TICK);
    }

    #[test]
    fn collections_ignored_outside_tick_path() {
        let src = "use std::collections::HashMap;\n";
        assert!(scan_file("crates/runtime/src/sharing.rs", src).is_empty());
    }

    #[test]
    fn deterministic_collections_stay_allowed() {
        let src = "use std::collections::{BinaryHeap, VecDeque};\n";
        assert!(scan_file(TICK, src).is_empty());
    }

    #[test]
    fn allow_comment_with_reason_suppresses() {
        let src = "// audit:allow(tick-path-collections) cold path, sized once at build\n\
                   use std::collections::HashMap;\n";
        assert!(scan_file(TICK, src).is_empty());
        let same_line =
            "use std::collections::HashMap; // audit:allow(tick-path-collections) cold path\n";
        assert!(scan_file(TICK, same_line).is_empty());
    }

    #[test]
    fn allow_comment_without_reason_does_not_suppress() {
        let src = "// audit:allow(tick-path-collections)\nuse std::collections::HashMap;\n";
        assert_eq!(rules_of(&scan_file(TICK, src)), ["tick-path-collections"]);
    }

    #[test]
    fn allow_comment_for_wrong_rule_does_not_suppress() {
        let src = "// audit:allow(wall-clock) wrong rule\nuse std::collections::HashMap;\n";
        assert_eq!(rules_of(&scan_file(TICK, src)), ["tick-path-collections"]);
    }

    #[test]
    fn wall_clock_flagged_in_journal_feeding_crate() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let d = scan_file("crates/system/src/metrics.rs", src);
        assert_eq!(rules_of(&d), ["wall-clock", "wall-clock"]);
        assert_eq!(d[0].line, 1);
        let braced = "use std::time::{Duration, Instant};\n";
        assert_eq!(
            rules_of(&scan_file("crates/sim-core/src/stats.rs", braced)),
            ["wall-clock"]
        );
        let rng = "let x = rand::thread_rng().gen::<u64>();\n";
        assert_eq!(
            rules_of(&scan_file("crates/gpu/src/core.rs", rng)),
            ["wall-clock"]
        );
    }

    #[test]
    fn trace_phase_instant_is_not_wall_clock() {
        let src =
            "let p = TracePhase::Instant;\nmatch p { TracePhase::Instant => \"i\", _ => \"x\" };\n";
        assert!(scan_file("crates/sim-core/src/telemetry.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_ignored_in_bench_and_experiments() {
        let src = "use std::time::Instant;\n";
        assert!(scan_file("crates/bench/src/lib.rs", src).is_empty());
        assert!(scan_file("crates/experiments/src/campaign.rs", src).is_empty());
    }

    #[test]
    fn panics_flagged_only_outside_test_modules() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn g(x: Option<u32>) -> u32 { x.unwrap() }\n\
                       fn h() { panic!(\"boom\"); }\n\
                   }\n";
        let d = scan_file(TICK, src);
        assert_eq!(rules_of(&d), ["tick-path-panics"]);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn expect_and_panic_flagged() {
        let src = "fn f(x: Option<u32>) { x.expect(\"set\"); }\nfn g() { panic!(\"no\"); }\n";
        let d = scan_file(TICK, src);
        assert_eq!(rules_of(&d), ["tick-path-panics", "tick-path-panics"]);
    }

    #[test]
    fn unreachable_and_friends_flagged_as_panics() {
        // Fault injection turns "can't happen" deliveries into things that
        // happen; every aborting macro in the tick path is a fuzz crash
        // waiting to be found.
        let src = "fn f(x: u8) { match x { 0 => {} _ => unreachable!(\"only zero\") } }\n\
                   fn g() { todo!(\"later\") }\n\
                   fn h() { unimplemented!() }\n";
        let d = scan_file(TICK, src);
        assert_eq!(
            rules_of(&d),
            ["tick-path-panics", "tick-path-panics", "tick-path-panics"]
        );
        assert!(d[0].message.contains("unreachable!("), "{:?}", d[0].message);
        // An allow-comment with a reason still suppresses it.
        let allowed = "// audit:allow(tick-path-panics) arm proven dead by the token slab\n\
                       fn f() { unreachable!() }\n";
        assert!(scan_file(TICK, allowed).is_empty());
    }

    #[test]
    fn lossy_cast_on_cycle_operand_flagged() {
        let src = "fn f(now: u64) -> u32 { now as u32 }\n";
        let d = scan_file(TICK, src);
        assert_eq!(rules_of(&d), ["lossy-cast"]);
        assert!(d[0].message.contains("now"));
        let addr = "let x = line_addr as u16;\n";
        assert_eq!(rules_of(&scan_file(TICK, addr)), ["lossy-cast"]);
    }

    #[test]
    fn widening_and_index_casts_stay_allowed() {
        let src = "let a = now as u64;\nlet b = g as u32;\nlet c = count as u32;\n";
        assert!(scan_file(TICK, src).is_empty());
    }

    #[test]
    fn equivalence_marker_required_for_event_caches() {
        let src = "struct Ch { min_finish: u64 }\n";
        let d = scan_file(TICK, src);
        assert_eq!(rules_of(&d), ["equivalence-doc"]);
        assert_eq!(d[0].line, 1);
        let documented = "// EQUIVALENCE: the cache only ever under-approximates the horizon.\n\
                          struct Ch { min_finish: u64 }\n";
        assert!(scan_file(TICK, documented).is_empty());
    }

    #[test]
    fn comment_mentions_do_not_fire_code_rules() {
        let src = "// HashMap would be wrong here; Instant::now too.\nfn f() {}\n";
        assert!(scan_file("crates/system/src/sim.rs", src).is_empty());
    }

    #[test]
    fn diagnostic_display_is_file_line_rule_message() {
        let d = Diagnostic {
            file: "crates/noc/src/lib.rs".into(),
            line: 42,
            rule: Rule::WallClock,
            message: "nope".into(),
        };
        assert_eq!(d.to_string(), "crates/noc/src/lib.rs:42: wall-clock: nope");
    }

    #[test]
    fn scan_workspace_rejects_non_workspace_roots() {
        let err = scan_workspace(Path::new("/nonexistent-root")).unwrap_err();
        assert!(err.to_string().contains("crates/"));
    }
}
