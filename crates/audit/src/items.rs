//! Item extraction over the [`crate::lex`] token stream.
//!
//! Finds `struct` definitions (with per-field state-class annotations)
//! and `fn` items (with their owning `impl`/`trait` type, receiver
//! mutability, parameter list, declared tick context, and body token
//! range) by brace matching — no full parser, no `syn`. `#[cfg(test)]`
//! items are skipped entirely so test helpers never enter the effect
//! analysis.
//!
//! Two annotation conventions are read here:
//!
//! * `// state: gpu-local | shared | scratch` on a struct field — the
//!   field's place in the per-GPU state partition (same line as the
//!   field or the comment line(s) directly above it).
//! * `// tick-context: <param> | orchestrator` in the comment block
//!   above a `fn` — which parameter names the GPU whose tick context
//!   the function executes in. Functions without the annotation default
//!   to a parameter literally named `g` or `gpu` when present, and to
//!   *orchestrator* (the sequential driver that parallel ticking will
//!   split) otherwise.

use crate::lex::{Tok, Token};

/// A field's declared place in the per-GPU state partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StateClass {
    /// Owned by one GPU, indexed by the current GPU in tick context.
    GpuLocal,
    /// Declared shared state: directory, page table, NoC, token slab —
    /// the serialization points parallel ticking must handle at
    /// barriers. Writes are legal and recorded in the matrix.
    Shared,
    /// Tick-scoped scratch buffers; logically dead between ticks.
    Scratch,
}

impl StateClass {
    pub fn name(self) -> &'static str {
        match self {
            StateClass::GpuLocal => "gpu-local",
            StateClass::Shared => "shared",
            StateClass::Scratch => "scratch",
        }
    }

    fn parse(word: &str) -> Option<StateClass> {
        match word {
            "gpu-local" => Some(StateClass::GpuLocal),
            "shared" => Some(StateClass::Shared),
            "scratch" => Some(StateClass::Scratch),
            _ => None,
        }
    }
}

/// One named struct field.
#[derive(Debug, Clone)]
pub struct Field {
    pub name: String,
    /// Identifier tokens of the type, in order (`Vec<GpuCore>` →
    /// `["Vec", "GpuCore"]`).
    pub ty: Vec<String>,
    /// Declared state class, if annotated.
    pub class: Option<StateClass>,
    pub line: usize,
}

impl Field {
    /// Whether the type is a per-GPU indexable container (outermost
    /// wrapper chain contains a `Vec`).
    pub fn per_gpu(&self) -> bool {
        self.ty.iter().any(|t| t == "Vec")
    }

    /// The first type identifier that is not a transparent container —
    /// the component type held by this field, if any.
    pub fn base_type(&self) -> Option<&str> {
        const CONTAINERS: [&str; 10] = [
            "Vec",
            "Option",
            "Box",
            "Arc",
            "Rc",
            "VecDeque",
            "BinaryHeap",
            "Reverse",
            "RefCell",
            "Cow",
        ];
        self.ty
            .iter()
            .map(String::as_str)
            .find(|t| !CONTAINERS.contains(t) && !is_primitive(t))
    }
}

fn is_primitive(t: &str) -> bool {
    matches!(
        t,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
            | "f32"
            | "f64"
            | "bool"
            | "char"
            | "str"
            | "String"
            | "dyn"
            | "impl"
            | "mut"
            | "const"
    )
}

/// A struct definition with named fields.
#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<Field>,
    pub line: usize,
}

/// Receiver flavor of a method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recv {
    None,
    Ref,
    RefMut,
    Owned,
}

/// The declared (or defaulted) GPU tick context of a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TickCtx {
    /// Executes in the context of the GPU named by this parameter.
    Param(String),
    /// The sequential driver: loops over all GPUs itself; per-GPU
    /// sub-calls establish their own contexts.
    Orchestrator,
}

/// One function parameter (receiver excluded).
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    /// Identifier tokens of the type.
    pub ty: Vec<String>,
}

/// A function item.
#[derive(Debug, Clone)]
pub struct FuncDef {
    /// The `impl`/`trait` type this fn belongs to, if any.
    pub owner: Option<String>,
    pub name: String,
    pub line: usize,
    pub recv: Recv,
    pub params: Vec<Param>,
    /// Token index range of the body *inside* the braces:
    /// `toks[body.0..body.1]` (empty or absent for trait declarations).
    pub body: Option<(usize, usize)>,
    /// Declared or defaulted tick context.
    pub ctx: TickCtx,
    /// Whether `// tick-context:` was written explicitly.
    pub ctx_declared: bool,
}

impl FuncDef {
    /// `Owner::name` or bare `name` for free functions.
    pub fn qname(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub structs: Vec<StructDef>,
    pub funcs: Vec<FuncDef>,
}

/// Extracts items from a lexed file.
pub fn extract(toks: &[Token]) -> FileItems {
    let mut out = FileItems::default();
    scan_items(toks, 0, toks.len(), None, &mut out);
    out
}

/// Skips a balanced group; `i` points at the opening token. Returns the
/// index one past the matching closer.
fn skip_group(toks: &[Token], mut i: usize, open: char, close: char) -> usize {
    debug_assert!(toks[i].is_punct(open));
    let mut depth = 0usize;
    while i < toks.len() {
        if toks[i].is_punct(open) {
            depth += 1;
        } else if toks[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Skips a generics group `<...>`; `i` points at `<`. `->` inside (fn
/// pointer return types) is skipped without closing a level.
fn skip_generics(toks: &[Token], mut i: usize) -> usize {
    let mut depth = 0i64;
    while i < toks.len() {
        if toks[i].is_punct('-') && toks.get(i + 1).is_some_and(|t| t.is_punct('>')) {
            i += 2;
            continue;
        }
        if toks[i].is_punct('<') {
            depth += 1;
        } else if toks[i].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Skips one item generically (used for `#[cfg(test)]` exclusion):
/// consumes tokens until a top-level `;` or past a brace-matched block.
fn skip_item(toks: &[Token], mut i: usize) -> usize {
    // After a top-level `=` (a const/static/type initializer) the rest
    // is an expression, where `<` is comparison or shift — `1 << 45`
    // must not be mistaken for an unclosed generics group.
    let mut in_expr = false;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct(';') {
            return i + 1;
        }
        if t.is_punct('{') {
            return skip_group(toks, i, '{', '}');
        }
        if t.is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i = skip_group(toks, i + 1, '[', ']');
            continue;
        }
        if t.is_punct('(') {
            i = skip_group(toks, i, '(', ')');
            continue;
        }
        if t.is_punct('<') && !in_expr {
            i = skip_generics(toks, i);
            continue;
        }
        if t.is_punct('=') && !toks.get(i + 1).is_some_and(|t| t.is_punct('=')) {
            in_expr = true;
        }
        i += 1;
    }
    i
}

/// Whether the attribute group starting at `#` (index `i`) is
/// `#[cfg(test)]` (or any cfg containing the `test` ident).
fn is_cfg_test(toks: &[Token], i: usize) -> bool {
    if !toks[i].is_punct('#') || !toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
        return false;
    }
    let end = skip_group(toks, i + 1, '[', ']');
    let inner = &toks[i + 2..end.saturating_sub(1)];
    inner.first().is_some_and(|t| t.ident() == Some("cfg"))
        && inner.iter().any(|t| t.ident() == Some("test"))
}

fn scan_items(toks: &[Token], mut i: usize, end: usize, owner: Option<&str>, out: &mut FileItems) {
    // Comment block accumulated since the last non-comment token at this
    // level; survives across attributes so `// tick-context:` can sit
    // above `#[inline]`.
    let mut pending_comments: Vec<(String, usize)> = Vec::new();
    let mut skip_next = false; // armed by #[cfg(test)]

    while i < end {
        let t = &toks[i];
        match &t.tok {
            Tok::Comment(c) => {
                pending_comments.push((c.clone(), t.line));
                i += 1;
                continue;
            }
            Tok::Punct('#') if toks.get(i + 1).is_some_and(|t| t.is_punct('[')) => {
                if is_cfg_test(toks, i) {
                    skip_next = true;
                }
                i = skip_group(toks, i + 1, '[', ']');
                continue;
            }
            _ => {}
        }
        let word = t.ident().unwrap_or("");
        match word {
            "pub" => {
                i += 1;
                if i < end && toks[i].is_punct('(') {
                    i = skip_group(toks, i, '(', ')');
                }
                continue; // visibility does not clear pending comments
            }
            "unsafe" | "async" | "extern" => {
                i += 1;
                continue;
            }
            "const" => {
                // `const fn` is a fn modifier; `const NAME: …;` is an item.
                if toks.get(i + 1).is_some_and(|t| t.ident() == Some("fn")) {
                    i += 1;
                    continue;
                }
                i = skip_item(toks, i);
                pending_comments.clear();
                skip_next = false;
            }
            "fn" => {
                if skip_next {
                    i = skip_item(toks, i);
                    skip_next = false;
                } else {
                    i = parse_fn(toks, i, owner, &pending_comments, out);
                }
                pending_comments.clear();
            }
            "struct" => {
                if skip_next {
                    i = skip_item(toks, i);
                    skip_next = false;
                } else {
                    i = parse_struct(toks, i, out);
                }
                pending_comments.clear();
            }
            "impl" | "trait" => {
                if skip_next {
                    i = skip_item(toks, i);
                    skip_next = false;
                    pending_comments.clear();
                    continue;
                }
                let (name, body_open) = impl_target(toks, i, end, word == "trait");
                if let Some(open) = body_open {
                    let close = skip_group(toks, open, '{', '}');
                    scan_items(toks, open + 1, close - 1, name.as_deref(), out);
                    i = close;
                } else {
                    i = skip_item(toks, i);
                }
                pending_comments.clear();
            }
            "mod" => {
                if skip_next {
                    i = skip_item(toks, i);
                    skip_next = false;
                    pending_comments.clear();
                    continue;
                }
                // Inline module: recurse at the same owner level.
                let mut j = i + 1;
                while j < end && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                    j += 1;
                }
                if j < end && toks[j].is_punct('{') {
                    let close = skip_group(toks, j, '{', '}');
                    scan_items(toks, j + 1, close - 1, None, out);
                    i = close;
                } else {
                    i = j + 1;
                }
                pending_comments.clear();
            }
            _ => {
                i = skip_item(toks, i);
                pending_comments.clear();
                skip_next = false;
            }
        }
    }
}

/// Resolves the owning type name of an `impl`/`trait` block and the
/// index of its opening `{`. For `impl Trait for Type`, the owner is
/// `Type`; generic arguments and lifetimes are stripped.
fn impl_target(
    toks: &[Token],
    mut i: usize,
    end: usize,
    is_trait: bool,
) -> (Option<String>, Option<usize>) {
    i += 1; // past `impl`/`trait`
    if i < end && toks[i].is_punct('<') {
        i = skip_generics(toks, i);
    }
    let mut last_path_ident: Option<String> = None;
    let mut after_for = false;
    let mut trait_name: Option<String> = None;
    while i < end {
        let t = &toks[i];
        if t.is_punct('{') {
            let owner = if is_trait {
                trait_name
            } else {
                last_path_ident
            };
            return (owner, Some(i));
        }
        if t.is_punct(';') {
            return (None, None);
        }
        if t.is_punct('<') {
            i = skip_generics(toks, i);
            continue;
        }
        match t.ident() {
            Some("for") => {
                after_for = true;
                last_path_ident = None;
            }
            Some("where") => {
                // Owner is settled; scan forward to the block.
                while i < end && !toks[i].is_punct('{') && !toks[i].is_punct(';') {
                    if toks[i].is_punct('<') {
                        i = skip_generics(toks, i);
                    } else {
                        i += 1;
                    }
                }
                continue;
            }
            Some(id) if !matches!(id, "dyn" | "mut" | "const") => {
                if trait_name.is_none() && !after_for {
                    trait_name = Some(id.to_string());
                }
                last_path_ident = Some(id.to_string());
            }
            _ => {}
        }
        i += 1;
    }
    (None, None)
}

/// Parses a `fn` item starting at the `fn` keyword; returns the index
/// one past the item.
fn parse_fn(
    toks: &[Token],
    i: usize,
    owner: Option<&str>,
    comments: &[(String, usize)],
    out: &mut FileItems,
) -> usize {
    let mut j = i + 1;
    let Some(name) = toks.get(j).and_then(Token::ident).map(str::to_string) else {
        return skip_item(toks, i);
    };
    let line = toks[j].line;
    j += 1;
    if j < toks.len() && toks[j].is_punct('<') {
        j = skip_generics(toks, j);
    }
    if j >= toks.len() || !toks[j].is_punct('(') {
        return skip_item(toks, i);
    }
    let params_end = skip_group(toks, j, '(', ')');
    let (recv, params) = parse_params(&toks[j + 1..params_end - 1]);

    // Scan the signature tail (return type, where clause) for the body.
    let mut k = params_end;
    let mut body = None;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('-') && toks.get(k + 1).is_some_and(|t| t.is_punct('>')) {
            k += 2;
            continue;
        }
        if t.is_punct('<') {
            k = skip_generics(toks, k);
            continue;
        }
        if t.is_punct(';') {
            k += 1;
            break;
        }
        if t.is_punct('{') {
            let close = skip_group(toks, k, '{', '}');
            body = Some((k + 1, close - 1));
            k = close;
            break;
        }
        k += 1;
    }

    // Tick context: explicit annotation wins; otherwise a param named
    // exactly `g` or `gpu`; otherwise orchestrator.
    let mut ctx = None;
    let mut ctx_declared = false;
    for (c, _) in comments {
        if let Some(rest) = c.split("tick-context:").nth(1) {
            let word = rest
                .trim_start()
                .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                .next()
                .unwrap_or("");
            if word == "orchestrator" {
                ctx = Some(TickCtx::Orchestrator);
            } else if !word.is_empty() {
                ctx = Some(TickCtx::Param(word.to_string()));
            }
            ctx_declared = ctx.is_some();
        }
    }
    let ctx = ctx.unwrap_or_else(|| {
        params
            .iter()
            .find(|p| p.name == "g" || p.name == "gpu")
            .map(|p| TickCtx::Param(p.name.clone()))
            .unwrap_or(TickCtx::Orchestrator)
    });

    out.funcs.push(FuncDef {
        owner: owner.map(str::to_string),
        name,
        line,
        recv,
        params,
        body,
        ctx,
        ctx_declared,
    });
    k
}

/// Splits a parameter token run on top-level commas into the receiver
/// and named parameters.
fn parse_params(toks: &[Token]) -> (Recv, Vec<Param>) {
    let mut groups: Vec<&[Token]> = Vec::new();
    let mut depth = 0i64;
    let mut start = 0usize;
    for (idx, t) in toks.iter().enumerate() {
        match &t.tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') | Tok::Punct('<') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') | Tok::Punct('>') => depth -= 1,
            Tok::Punct(',') if depth == 0 => {
                groups.push(&toks[start..idx]);
                start = idx + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        groups.push(&toks[start..]);
    }

    let mut recv = Recv::None;
    let mut params = Vec::new();
    for (gi, g) in groups.iter().enumerate() {
        let idents: Vec<&str> = g.iter().filter_map(Token::ident).collect();
        if gi == 0 && idents.contains(&"self") {
            let has_ref = g.iter().any(|t| t.is_punct('&'));
            let has_mut = idents.contains(&"mut");
            recv = match (has_ref, has_mut) {
                (true, true) => Recv::RefMut,
                (true, false) => Recv::Ref,
                _ => Recv::Owned,
            };
            continue;
        }
        // `name: Type` — skip `mut` patterns; tuple/struct patterns in
        // params don't occur in this codebase's style.
        let colon = g.iter().position(|t| t.is_punct(':'));
        let Some(colon) = colon else { continue };
        let name = g[..colon]
            .iter()
            .filter_map(Token::ident)
            .find(|&id| id != "mut");
        let Some(name) = name else { continue };
        let ty = g[colon + 1..]
            .iter()
            .filter_map(Token::ident)
            .map(str::to_string)
            .collect();
        params.push(Param {
            name: name.to_string(),
            ty,
        });
    }
    (recv, params)
}

/// Parses a struct item starting at the `struct` keyword.
fn parse_struct(toks: &[Token], i: usize, out: &mut FileItems) -> usize {
    let mut j = i + 1;
    let Some(name) = toks.get(j).and_then(Token::ident).map(str::to_string) else {
        return skip_item(toks, i);
    };
    let line = toks[j].line;
    j += 1;
    if j < toks.len() && toks[j].is_punct('<') {
        j = skip_generics(toks, j);
    }
    // Skip a where clause if present.
    while j < toks.len()
        && !toks[j].is_punct('{')
        && !toks[j].is_punct(';')
        && !toks[j].is_punct('(')
    {
        j += 1;
    }
    if j >= toks.len() || !toks[j].is_punct('{') {
        // Unit or tuple struct: no named fields.
        let end = skip_item(toks, j.min(toks.len().saturating_sub(1)).max(i));
        out.structs.push(StructDef {
            name,
            fields: Vec::new(),
            line,
        });
        return end.max(j);
    }
    let close = skip_group(toks, j, '{', '}');
    let inner = &toks[j + 1..close - 1];

    let mut fields = Vec::new();
    let mut pending_class: Option<StateClass> = None;
    let mut k = 0usize;
    let mut depth = 0i64;
    while k < inner.len() {
        let t = &inner[k];
        if let Some(c) = t.comment() {
            if depth == 0 {
                if let Some(cls) = class_of_comment(c) {
                    // Same-line trailing comment annotates the field that
                    // just ended on this line; otherwise it is a
                    // preceding annotation for the next field.
                    if let Some(last) = fields
                        .iter_mut()
                        .rev()
                        .find(|f: &&mut Field| f.line == t.line)
                    {
                        let last: &mut Field = last;
                        last.class = Some(cls);
                    } else if fields
                        .last()
                        .is_some_and(|f: &Field| field_end_line(inner, k) == Some(f.name.clone()))
                    {
                        // unreachable helper branch; kept simple below
                        pending_class = Some(cls);
                    } else {
                        pending_class = Some(cls);
                    }
                }
            }
            k += 1;
            continue;
        }
        if t.is_punct('#') && inner.get(k + 1).is_some_and(|t| t.is_punct('[')) {
            k = skip_group(inner, k + 1, '[', ']');
            continue;
        }
        match &t.tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') | Tok::Punct('<') => {
                depth += 1;
                k += 1;
            }
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') | Tok::Punct('>') => {
                depth -= 1;
                k += 1;
            }
            Tok::Ident(id) if depth == 0 => {
                if id == "pub" {
                    k += 1;
                    if k < inner.len() && inner[k].is_punct('(') {
                        k = skip_group(inner, k, '(', ')');
                    }
                    continue;
                }
                // Field: `name : type…` until top-level comma.
                let fname = id.clone();
                let fline = t.line;
                k += 1;
                if k >= inner.len() || !inner[k].is_punct(':') {
                    continue;
                }
                k += 1;
                let mut ty = Vec::new();
                let mut d = 0i64;
                let mut last_line = fline;
                while k < inner.len() {
                    let tt = &inner[k];
                    match &tt.tok {
                        Tok::Punct(',') if d == 0 => break,
                        Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') | Tok::Punct('<') => {
                            d += 1
                        }
                        Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') | Tok::Punct('>') => {
                            d -= 1
                        }
                        Tok::Ident(w) => ty.push(w.clone()),
                        _ => {}
                    }
                    if tt.comment().is_none() {
                        last_line = tt.line;
                    }
                    k += 1;
                }
                fields.push(Field {
                    name: fname,
                    ty,
                    class: pending_class.take(),
                    line: last_line,
                });
            }
            _ => {
                k += 1;
            }
        }
    }
    out.structs.push(StructDef { name, fields, line });
    close
}

/// Parses the state class out of a `// state: <class>` comment.
fn class_of_comment(c: &str) -> Option<StateClass> {
    let rest = c.split("state:").nth(1)?;
    let word = rest
        .trim_start()
        .split(|ch: char| ch.is_whitespace())
        .next()?;
    StateClass::parse(word)
}

/// Helper retained for clarity in the trailing-comment branch above;
/// always returns `None` in practice.
fn field_end_line(_inner: &[Token], _k: usize) -> Option<String> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn items(src: &str) -> FileItems {
        extract(&lex(src))
    }

    #[test]
    fn extracts_struct_fields_with_classes() {
        let src = "\
struct System {
    cores: Vec<GpuCore>, // state: gpu-local
    // state: shared
    net: LinkNetwork,
    scratch: Vec<(u64, Cycle)>, // state: scratch
    plain: u64,
}\n";
        let it = items(src);
        assert_eq!(it.structs.len(), 1);
        let s = &it.structs[0];
        assert_eq!(s.name, "System");
        let by_name = |n: &str| s.fields.iter().find(|f| f.name == n).unwrap();
        assert_eq!(by_name("cores").class, Some(StateClass::GpuLocal));
        assert!(by_name("cores").per_gpu());
        assert_eq!(by_name("cores").base_type(), Some("GpuCore"));
        assert_eq!(by_name("net").class, Some(StateClass::Shared));
        assert!(!by_name("net").per_gpu());
        assert_eq!(by_name("scratch").class, Some(StateClass::Scratch));
        assert_eq!(by_name("plain").class, None);
    }

    #[test]
    fn extracts_fns_with_owner_recv_and_params() {
        let src = "\
impl System {
    fn tick(&mut self, now: Cycle) { self.x += 1; }
    fn peek(&self) -> u64 { 0 }
}
fn free(a: usize, mut b: u64) -> u64 { b + a as u64 }
impl Fabric for NetFabric<'_> {
    fn can_send(&self, src: NodeId) -> bool { true }
}\n";
        let it = items(src);
        let f = |q: &str| it.funcs.iter().find(|f| f.qname() == q).unwrap();
        assert_eq!(f("System::tick").recv, Recv::RefMut);
        assert_eq!(f("System::peek").recv, Recv::Ref);
        assert_eq!(f("free").recv, Recv::None);
        assert_eq!(f("free").params.len(), 2);
        assert_eq!(f("free").params[1].name, "b");
        assert_eq!(f("NetFabric::can_send").owner.as_deref(), Some("NetFabric"));
        assert!(f("System::tick").body.is_some());
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "\
impl A { fn live(&self) {} }
#[cfg(test)]
mod tests {
    fn helper() { let m: std::collections::HashMap<u32, u32> = Default::default(); }
}
#[cfg(test)]
fn lone_test_fn() {}
fn after() {}\n";
        let it = items(src);
        let names: Vec<_> = it.funcs.iter().map(|f| f.qname()).collect();
        assert!(names.contains(&"A::live".to_string()));
        assert!(names.contains(&"after".to_string()));
        assert!(!names.iter().any(|n| n.contains("helper")));
        assert!(!names.iter().any(|n| n.contains("lone_test_fn")));
    }

    #[test]
    fn tick_context_annotation_and_defaults() {
        let src = "\
impl System {
    // tick-context: home
    fn write_at_home(&mut self, home: usize, line: u64) {}
    fn try_route(&mut self, g: usize) {}
    // tick-context: orchestrator
    fn sweep(&mut self, gpu: usize) {}
    fn driver(&mut self, now: Cycle) {}
}\n";
        let it = items(src);
        let f = |n: &str| it.funcs.iter().find(|f| f.name == n).unwrap();
        assert_eq!(f("write_at_home").ctx, TickCtx::Param("home".into()));
        assert!(f("write_at_home").ctx_declared);
        assert_eq!(f("try_route").ctx, TickCtx::Param("g".into()));
        assert!(!f("try_route").ctx_declared);
        assert_eq!(f("sweep").ctx, TickCtx::Orchestrator);
        assert_eq!(f("driver").ctx, TickCtx::Orchestrator);
    }

    #[test]
    fn generic_fns_and_return_types_parse() {
        let src = "\
impl Slab {
    pub fn for_each<F: FnMut(u64, &T)>(&self, mut f: F) { }
    pub fn values(&self) -> impl Iterator<Item = &T> + '_ { std::iter::empty() }
    fn pair(&self) -> (u64, u64) { (0, 0) }
}
trait NextEvent {
    fn next_event(&self, now: Cycle) -> Option<Cycle>;
}\n";
        let it = items(src);
        assert!(it.funcs.iter().any(|f| f.qname() == "Slab::for_each"));
        assert!(it.funcs.iter().any(|f| f.qname() == "Slab::values"));
        assert!(it.funcs.iter().any(|f| f.qname() == "Slab::pair"));
        let ne = it
            .funcs
            .iter()
            .find(|f| f.qname() == "NextEvent::next_event")
            .unwrap();
        assert!(ne.body.is_none());
    }

    #[test]
    fn impl_with_generics_resolves_owner() {
        let src = "impl<'a> Translator for SystemXl<'a> { fn translate(&mut self) {} }";
        let it = items(src);
        assert_eq!(
            it.funcs[0].owner.as_deref(),
            Some("SystemXl"),
            "{:?}",
            it.funcs
        );
    }
}
