//! A minimal, dependency-free Rust lexer for the lint wall.
//!
//! The line-oriented scanner of v1 could be fooled by exactly the
//! constructs this lexer understands: raw strings containing rule
//! trigger words, `'a` lifetimes that look like unterminated char
//! literals, and nested `/* /* */ */` block comments. The token stream
//! produced here is what the item extractor ([`crate::items`]) and the
//! effect analysis ([`crate::effects`]) operate on, so none of those
//! layers ever sees text inside a literal or comment as code.
//!
//! This is deliberately not a full Rust lexer: numeric literal suffixes,
//! shebangs, and multi-character operators are out of scope. Punctuation
//! is emitted one character at a time; consumers that care about `::` or
//! `=>` look at adjacent tokens. What *is* handled precisely:
//!
//! * line comments (`//`, `///`, `//!`) — kept as [`Tok::Comment`]
//!   tokens so annotation conventions (`audit:allow`, `// exchange:`,
//!   `// state:`, `// tick-context:`, `// determinism:`) stay visible,
//! * block comments with arbitrary nesting — also kept, stamped with
//!   their *starting* line,
//! * string literals: `"…"` with escapes, byte strings `b"…"`, raw
//!   strings `r"…"` / `r#"…"#` / `br##"…"##` with any number of hashes,
//! * char literals `'x'`, `'\n'`, `'\u{1F600}'`, `b'x'` versus
//!   lifetimes `'a`, `'static`, `'_`.

/// One lexical token. Literal *contents* are dropped (the lint rules
/// must never fire on text inside a literal); comments keep their text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`fn`, `self`, `HashMap`, …).
    Ident(String),
    /// A lifetime (`'a`, `'static`, `'_`), name without the quote.
    Lifetime(String),
    /// A char or byte literal; contents dropped.
    CharLit,
    /// A string literal of any flavor (plain/byte/raw); contents dropped.
    StrLit,
    /// A numeric literal; text kept for index-expression display.
    Num(String),
    /// A single punctuation character.
    Punct(char),
    /// A `//…` or `/*…*/` comment, full text including the delimiters.
    Comment(String),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    /// The comment text, if this token is a comment.
    pub fn comment(&self) -> Option<&str> {
        match &self.tok {
            Tok::Comment(s) => Some(s),
            _ => None,
        }
    }
}

/// Lexes `src` into tokens. Never fails: malformed input (unterminated
/// literals or comments) simply ends the current token at end of input,
/// which is the right behavior for a linter that must not crash on the
/// code it is criticizing.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;

    // Advances `line` for every newline in `b[from..to]`.
    fn count_lines(b: &[u8], from: usize, to: usize, line: &mut usize) {
        *line += b[from..to].iter().filter(|&&c| c == b'\n').count();
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                toks.push(Token {
                    tok: Tok::Comment(src[start..i].to_string()),
                    line,
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                toks.push(Token {
                    tok: Tok::Comment(src[start..i].to_string()),
                    line: start_line,
                });
            }
            b'"' => {
                let start_line = line;
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Token {
                    tok: Tok::StrLit,
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime or char literal. A lifetime is `'` followed by
                // an identifier start NOT closed by a `'` right after one
                // identifier-ish run (`'a` vs `'a'`). `'\…'` is always a
                // char literal.
                let after = b.get(i + 1).copied();
                let is_ident_start = after.is_some_and(|c| c.is_ascii_alphabetic() || c == b'_');
                if is_ident_start {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    if b.get(j).copied() == Some(b'\'') {
                        // `'x'` (single ident char then quote): char literal.
                        toks.push(Token {
                            tok: Tok::CharLit,
                            line,
                        });
                        i = j + 1;
                    } else {
                        toks.push(Token {
                            tok: Tok::Lifetime(src[i + 1..j].to_string()),
                            line,
                        });
                        i = j;
                    }
                } else {
                    // Char literal with escape or punctuation: `'\n'`,
                    // `'\u{…}'`, `'·'`, `'\''`.
                    let start = i;
                    i += 1;
                    if i < b.len() && b[i] == b'\\' {
                        i += 2;
                        // `\u{…}` escapes run to the closing brace.
                        while i < b.len() && b[i] != b'\'' {
                            i += 1;
                        }
                    } else {
                        // Possibly multi-byte UTF-8 char; scan to quote.
                        while i < b.len() && b[i] != b'\'' {
                            i += 1;
                        }
                    }
                    i += 1; // closing quote (or EOF)
                    count_lines(b, start, i.min(b.len()), &mut line);
                    toks.push(Token {
                        tok: Tok::CharLit,
                        line,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                // Raw / byte string prefixes glue to an immediately
                // following quote or hash: r"…", r#"…"#, b"…", br#"…"#.
                let next = b.get(i).copied();
                let rawish = matches!(word, "r" | "b" | "br" | "rb");
                if rawish && (next == Some(b'"') || next == Some(b'#')) {
                    let start_line = line;
                    if word == "b" && next == Some(b'"') {
                        // Byte string: plain escape rules.
                        i += 1;
                        while i < b.len() {
                            match b[i] {
                                b'\\' => i += 2,
                                b'"' => {
                                    i += 1;
                                    break;
                                }
                                b'\n' => {
                                    line += 1;
                                    i += 1;
                                }
                                _ => i += 1,
                            }
                        }
                    } else {
                        // Raw string: count hashes, then scan for `"###`.
                        let mut hashes = 0;
                        while b.get(i).copied() == Some(b'#') {
                            hashes += 1;
                            i += 1;
                        }
                        if b.get(i).copied() == Some(b'"') {
                            i += 1;
                            'scan: while i < b.len() {
                                if b[i] == b'\n' {
                                    line += 1;
                                } else if b[i] == b'"' {
                                    let mut k = 0;
                                    while k < hashes && b.get(i + 1 + k).copied() == Some(b'#') {
                                        k += 1;
                                    }
                                    if k == hashes {
                                        i += 1 + hashes;
                                        break 'scan;
                                    }
                                }
                                i += 1;
                            }
                        } else {
                            // `r#foo`: a raw identifier, not a string.
                            let id_start = i;
                            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                                i += 1;
                            }
                            toks.push(Token {
                                tok: Tok::Ident(src[id_start..i].to_string()),
                                line,
                            });
                            continue;
                        }
                    }
                    toks.push(Token {
                        tok: Tok::StrLit,
                        line: start_line,
                    });
                } else {
                    toks.push(Token {
                        tok: Tok::Ident(word.to_string()),
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                // Numbers may contain `_`, hex/bin prefixes, a fractional
                // part, and type suffixes; consume the identifier-ish run
                // plus embedded dots followed by digits (`1.5e3`). A dot
                // followed by a non-digit (method call `0.max(…)` or range
                // `0..n`) ends the number.
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                if i < b.len()
                    && b[i] == b'.'
                    && b.get(i + 1).copied().is_some_and(|c| c.is_ascii_digit())
                {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
                toks.push(Token {
                    tok: Tok::Num(src[start..i].to_string()),
                    line,
                });
            }
            _ => {
                // Multi-byte UTF-8 punctuation (arrows in comments are
                // already consumed; stray unicode in code is rare): emit
                // the first byte's char boundary correctly.
                let ch = src[i..].chars().next().unwrap_or('\u{FFFD}');
                toks.push(Token {
                    tok: Tok::Punct(ch),
                    line,
                });
                i += ch.len_utf8();
            }
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn raw_string_contents_are_not_code() {
        // v1's line scanner would see `HashMap` here; the lexer must not.
        let src = r##"let s = r#"use std::collections::HashMap;"#; let t = 1;"##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn raw_strings_with_varied_hashes_terminate_correctly() {
        let src = "let a = r\"x\"; let b = r#\"y\"#; let c = br##\"z\"## ; done";
        let ids = idents(src);
        assert_eq!(
            ids,
            ["let", "a", "let", "b", "let", "c", "done"]
                .map(str::to_string)
                .to_vec()
        );
        let strs = lex(src).iter().filter(|t| t.tok == Tok::StrLit).count();
        assert_eq!(strs, 3);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { 'l: loop { break 'l; } }";
        let lifetimes: Vec<_> = lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Lifetime(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, ["a", "a", "static", "l", "l"]);
    }

    #[test]
    fn char_literals_including_escapes_and_quotes() {
        let src = r"let c = 'x'; let n = '\n'; let q = '\''; let u = '\u{1F600}'; let b2 = b'a';";
        let chars = lex(src).iter().filter(|t| t.tok == Tok::CharLit).count();
        assert_eq!(chars, 5);
        // Nothing after the literals was swallowed.
        assert!(idents(src).contains(&"b2".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let ids = idents(src);
        assert_eq!(ids, ["a", "b"].map(str::to_string).to_vec());
        let comments: Vec<_> = lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Comment(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(comments, ["/* outer /* inner */ still comment */"]);
    }

    #[test]
    fn line_and_doc_comments_keep_text_and_lines() {
        let src = "// plain\n/// doc\n//! inner\nfn f() {}\n";
        let toks = lex(src);
        let comments: Vec<_> = toks
            .iter()
            .filter_map(|t| t.comment().map(|c| (c.to_string(), t.line)))
            .collect();
        assert_eq!(
            comments,
            [
                ("// plain".to_string(), 1),
                ("/// doc".to_string(), 2),
                ("//! inner".to_string(), 3)
            ]
        );
        let f = toks.iter().find(|t| t.ident() == Some("fn")).unwrap();
        assert_eq!(f.line, 4);
    }

    #[test]
    fn string_escapes_do_not_leak_code() {
        let src = r#"let s = "quote \" then HashMap"; after"#;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"after".to_string()));
    }

    #[test]
    fn multiline_strings_advance_line_numbers() {
        let src = "let s = \"line\none\";\nfn g() {}\n";
        let toks = lex(src);
        let g = toks.iter().find(|t| t.ident() == Some("fn")).unwrap();
        assert_eq!(g.line, 3);
    }

    #[test]
    fn numbers_ranges_and_method_calls_are_separate_tokens() {
        let src = "for i in 0..self.n { let x = 1.5; let y = 0.max(z); }";
        let toks = lex(src);
        // `0..self` must lex as Num(0), '.', '.', Ident(self).
        let pos = toks
            .iter()
            .position(|t| t.tok == Tok::Num("0".into()))
            .unwrap();
        assert!(toks[pos + 1].is_punct('.'));
        assert!(toks[pos + 2].is_punct('.'));
        assert_eq!(toks[pos + 3].ident(), Some("self"));
        assert!(toks.iter().any(|t| t.tok == Tok::Num("1.5".into())));
        // `0.max` keeps the 0 and the method separate.
        assert!(toks.iter().any(|t| t.ident() == Some("max")));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let src = "let r#type = 1;";
        assert!(idents(src).contains(&"type".to_string()));
    }

    #[test]
    fn unterminated_input_does_not_panic() {
        for src in ["let s = \"unterminated", "/* never closed", "let c = '"] {
            let _ = lex(src);
        }
    }
}
