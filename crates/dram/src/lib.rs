//! HBM-style DRAM model for the `carve-mgpu` simulator.
//!
//! Models the paper's per-GPU memory system (Section III): multiple
//! channels, 16 banks per channel with open-page row buffers, 128-entry
//! read/write queues per channel, FR-FCFS scheduling that prioritizes reads,
//! batched write drains triggered by a high-watermark, and a line-interleaved
//! ("minimalist"-style) address mapping that spreads consecutive cache lines
//! across channels.
//!
//! Two models are provided:
//!
//! * [`DramModel`] — the detailed channel/bank/row timing model used by all
//!   headline experiments.
//! * [`FlatMemory`] — a flat bandwidth-latency alternative used by the
//!   memory-model ablation bench (and by anyone who wants a faster, less
//!   detailed simulation).
//!
//! # Example
//!
//! ```
//! use carve_dram::{DramConfig, DramModel};
//! use sim_core::Cycle;
//!
//! let mut dram = DramModel::new(DramConfig::default());
//! dram.try_enqueue_read(1, 0x1000, Cycle(0)).unwrap();
//! let mut done = Vec::new();
//! for c in 0..10_000u64 {
//!     done.extend(dram.tick(Cycle(c)));
//!     if !done.is_empty() { break; }
//! }
//! assert_eq!(done[0].token, 1);
//! ```

#![warn(missing_docs)]

use sim_core::event::{earliest, NextEvent};
use sim_core::{BoundedQueue, Cycle, DramChannelProfile, ScaledConfig};

/// Geometry and timing of one GPU's DRAM subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Number of channels.
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Data-bus bandwidth per channel in bytes/cycle.
    pub bytes_per_cycle: f64,
    /// Row activate latency (tRCD).
    pub t_rcd: u64,
    /// Precharge latency (tRP).
    pub t_rp: u64,
    /// Column access latency (tCL).
    pub t_cl: u64,
    /// Fixed controller/PHY pipeline latency added to every access.
    pub fixed_latency: u64,
    /// Read and write queue depth per channel.
    pub queue_depth: usize,
    /// Write-queue occupancy that starts a drain batch.
    pub drain_high: usize,
    /// Write-queue occupancy that ends a drain batch.
    pub drain_low: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Cache line (transfer) size in bytes.
    pub line_size: u64,
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        DramConfig::from_scaled(&ScaledConfig::default())
    }
}

impl DramConfig {
    /// Extracts the DRAM parameters from a system configuration.
    pub fn from_scaled(cfg: &ScaledConfig) -> DramConfig {
        DramConfig {
            channels: cfg.dram_channels,
            banks_per_channel: cfg.dram_banks_per_channel,
            bytes_per_cycle: cfg.dram_channel_bytes_per_cycle,
            t_rcd: cfg.dram_t_rcd,
            t_rp: cfg.dram_t_rp,
            t_cl: cfg.dram_t_cl,
            fixed_latency: cfg.dram_fixed_latency,
            queue_depth: cfg.dram_queue_depth,
            drain_high: cfg.dram_write_drain_high,
            drain_low: cfg.dram_write_drain_low,
            row_bytes: cfg.dram_row_bytes,
            line_size: cfg.line_size,
        }
    }

    /// Aggregate bandwidth across channels in bytes/cycle.
    pub fn total_bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle * self.channels as f64
    }
}

/// A finished DRAM access, reported by [`DramModel::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Caller-supplied token identifying the request.
    pub token: u64,
    /// Cycle at which data is available (read) or committed (write).
    pub at: Cycle,
    /// Whether this was a write.
    pub is_write: bool,
}

#[derive(Debug, Clone, Copy)]
struct DramRequest {
    token: u64,
    addr: u64,
    arrival: Cycle,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    ready_at: u64,
}

#[derive(Debug)]
struct Channel {
    banks: Vec<Bank>,
    read_q: BoundedQueue<DramRequest>,
    write_q: BoundedQueue<DramRequest>,
    in_service: Vec<(Completion, u64)>, // (completion, finish cycle)
    // EQUIVALENCE: the `min_finish` / `issue_floor` caches below only ever
    // *under*-approximate the next interesting cycle, and every mutation
    // that could create earlier work (enqueue, issue, completion drain)
    // re-tightens them in the same call. A skipped tick therefore observes
    // exactly the state a stepped tick would have: the delivery scan and
    // FR-FCFS scan are elided only on ticks where a full scan would have
    // found nothing, so completions, bank timings and stats are
    // bit-identical between the event-skip and step engines (proved by
    // `next_event_reproduces_stepped_completions` and the golden tests).
    /// Earliest in-service finish cycle (`u64::MAX` when none): lets the
    /// per-tick delivery scan and the event horizon skip the list
    /// entirely until something is actually due.
    min_finish: u64,
    /// Underestimate of the earliest cycle an issue can succeed
    /// (`u64::MAX` when both queues are empty): `max(bus ready, min bank
    /// ready over queued requests)`, kept exact at every mutation so the
    /// FR-FCFS scan is skipped on the many ticks where it would find
    /// nothing.
    issue_floor: u64,
    bus_free_at: f64,
    draining: bool,
    /// Occupancy accounting for the cycle-accounting profiler: bank-time
    /// spent on row-hit vs row-miss accesses and serialized bus time.
    /// Always-on plain additions at the issue site (no journal impact —
    /// these never feed `DramStats`).
    row_hit_cycles: u64,
    row_miss_cycles: u64,
    bus_cycles: f64,
}

impl Channel {
    /// Recomputes [`Channel::issue_floor`] from scratch (both queues).
    fn recompute_issue_floor(&mut self, cfg: &DramConfig) {
        if self.read_q.is_empty() && self.write_q.is_empty() {
            self.issue_floor = u64::MAX;
            return;
        }
        let bus_ready = (self.bus_free_at - 1.0).ceil().max(0.0) as u64;
        let line = cfg.line_size;
        let chn = cfg.channels as u64;
        let nb = cfg.banks_per_channel as u64;
        let lpr = (cfg.row_bytes / line).max(1);
        let min_bank_ready = self
            .read_q
            .iter()
            .chain(self.write_q.iter())
            .map(|req| self.banks[((req.addr / line / chn / lpr) % nb) as usize].ready_at)
            .min()
            .unwrap_or(0);
        self.issue_floor = bus_ready.max(min_bank_ready);
    }

    /// Lowers [`Channel::issue_floor`] for one newly queued request.
    fn note_enqueue(&mut self, addr: u64, cfg: &DramConfig) {
        let bus_ready = (self.bus_free_at - 1.0).ceil().max(0.0) as u64;
        let line = cfg.line_size;
        let chn = cfg.channels as u64;
        let nb = cfg.banks_per_channel as u64;
        let lpr = (cfg.row_bytes / line).max(1);
        let bank_ready = self.banks[((addr / line / chn / lpr) % nb) as usize].ready_at;
        self.issue_floor = self.issue_floor.min(bus_ready.max(bank_ready));
    }
}

/// Per-GPU DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Reads serviced.
    pub reads: u64,
    /// Writes serviced.
    pub writes: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that needed activate (and possibly precharge).
    pub row_misses: u64,
    /// Total bytes moved over the data buses.
    pub bytes_transferred: u64,
    /// Enqueue attempts rejected because a queue was full.
    pub queue_rejections: u64,
}

impl DramStats {
    /// Row-buffer hit rate over all serviced accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// Shadow checker for DRAM timing legality, used by the protocol
/// sanitizer (`CARVE_SANITIZE=1`).
///
/// It keeps its *own* copy of per-channel bus occupancy and per-bank
/// ready/open-row state, updated only from issued accesses, and checks
/// every new issue against that shadow: the data bus must not overlap a
/// previous burst, a bank must not be re-accessed inside its busy window
/// (the tRP/tRCD/tRC recovery modelled by `ready_at`), a claimed row hit
/// must match the shadow's open row, and the completion must respect the
/// CAS-latency floor. Because the shadow is maintained independently of
/// the model's own `Bank`/`Channel` state, a future refactor that forgets
/// to update either side trips a violation instead of silently bending
/// timing. Only the first violation is kept.
#[derive(Debug, Default)]
pub struct TimingAudit {
    channels: Vec<AuditChannel>,
    violation: Option<String>,
}

#[derive(Debug, Default, Clone)]
struct AuditChannel {
    bus_busy_until: f64,
    banks: Vec<AuditBank>,
}

#[derive(Debug, Default, Clone, Copy)]
struct AuditBank {
    ready_at: u64,
    open_row: Option<u64>,
}

/// Slack for comparing the model's f64 bus arithmetic against the shadow.
const AUDIT_EPS: f64 = 1e-6;

impl TimingAudit {
    /// Creates an empty audit; channel/bank shadows grow on first use.
    pub fn new() -> TimingAudit {
        TimingAudit::default()
    }

    fn bank(&mut self, channel: usize, bank: usize) -> &mut AuditBank {
        if self.channels.len() <= channel {
            self.channels.resize(channel + 1, AuditChannel::default());
        }
        let ch = &mut self.channels[channel];
        if ch.banks.len() <= bank {
            ch.banks.resize(bank + 1, AuditBank::default());
        }
        &mut ch.banks[bank]
    }

    fn fail(&mut self, msg: String) {
        if self.violation.is_none() {
            self.violation = Some(msg);
        }
    }

    /// Validates one issued access against the shadow state, then rolls
    /// the shadow forward. Arguments mirror the model's issue math:
    /// `start` is the bus start time, `burst` the bus occupancy,
    /// `bank_ready` the cycle the bank recovers, `finish` the completion
    /// cycle, `row_hit` whether the model charged open-row timing.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_issue(
        &mut self,
        channel: usize,
        bank: usize,
        row: u64,
        start: f64,
        burst: f64,
        bank_ready: u64,
        finish: u64,
        row_hit: bool,
        t_cl: u64,
    ) {
        if self.violation.is_some() {
            return;
        }
        let shadow_bus = self
            .channels
            .get(channel)
            .map(|c| c.bus_busy_until)
            .unwrap_or(0.0);
        if start + AUDIT_EPS < shadow_bus {
            self.fail(format!(
                "dram channel {channel}: burst starts at {start} while the data bus \
                 is busy until {shadow_bus} (overlapping serialization)"
            ));
            return;
        }
        let b = *self.bank(channel, bank);
        if start + AUDIT_EPS < b.ready_at as f64 {
            self.fail(format!(
                "dram channel {channel} bank {bank}: access starts at {start} inside \
                 the bank's recovery window (ready at {})",
                b.ready_at
            ));
            return;
        }
        if row_hit && b.open_row != Some(row) {
            self.fail(format!(
                "dram channel {channel} bank {bank}: row-hit timing charged for row \
                 {row} but the shadow open row is {:?}",
                b.open_row
            ));
            return;
        }
        if (finish as f64) + AUDIT_EPS < start + t_cl as f64 {
            self.fail(format!(
                "dram channel {channel} bank {bank}: completion at {finish} beats the \
                 CAS-latency floor (start {start} + tCL {t_cl})"
            ));
            return;
        }
        let bank_state = self.bank(channel, bank);
        bank_state.ready_at = bank_ready;
        bank_state.open_row = Some(row);
        self.channels[channel].bus_busy_until = start + burst;
    }

    /// The first violation found, if any.
    pub fn violation(&self) -> Option<&str> {
        self.violation.as_deref()
    }
}

/// Detailed multi-channel DRAM timing model.
#[derive(Debug)]
pub struct DramModel {
    cfg: DramConfig,
    channels: Vec<Channel>,
    stats: DramStats,
    /// Timing-legality shadow checker; `None` (the default) costs one
    /// pointer check per issued access.
    audit: Option<Box<TimingAudit>>,
    /// Armed transient faults (fault injection): each one forces the next
    /// read completion to fail at delivery and retransmit after a full
    /// re-access penalty. Zero in fault-free runs.
    pending_transients: u32,
    /// Read completions retransmitted after an injected transient fault.
    transient_retries: u64,
}

impl DramModel {
    /// Creates the DRAM subsystem described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configuration (no channels/banks, zero
    /// bandwidth, or drain watermarks out of order).
    pub fn new(cfg: DramConfig) -> DramModel {
        assert!(cfg.channels > 0 && cfg.banks_per_channel > 0);
        assert!(cfg.bytes_per_cycle > 0.0);
        assert!(cfg.drain_low < cfg.drain_high && cfg.drain_high <= cfg.queue_depth);
        let channels = (0..cfg.channels)
            .map(|_| Channel {
                banks: vec![Bank::default(); cfg.banks_per_channel],
                read_q: BoundedQueue::new(cfg.queue_depth),
                write_q: BoundedQueue::new(cfg.queue_depth),
                in_service: Vec::new(),
                min_finish: u64::MAX,
                issue_floor: u64::MAX,
                bus_free_at: 0.0,
                draining: false,
                row_hit_cycles: 0,
                row_miss_cycles: 0,
                bus_cycles: 0.0,
            })
            .collect();
        DramModel {
            cfg,
            channels,
            stats: DramStats::default(),
            audit: None,
            pending_transients: 0,
            transient_retries: 0,
        }
    }

    /// Arms `n` transient faults (fault injection): each forces one read
    /// completion, at the moment it would deliver, to retransmit after a
    /// full re-access penalty (precharge + activate + CAS + burst +
    /// controller pipeline). Bounded by construction — a faulted read
    /// retries once per armed fault and then delivers.
    pub fn inject_transient_faults(&mut self, n: u32) {
        self.pending_transients = self.pending_transients.saturating_add(n);
    }

    /// Read completions retransmitted after an injected transient fault.
    pub fn transient_retries(&self) -> u64 {
        self.transient_retries
    }

    /// Enables (or disables) the [`TimingAudit`] shadow checker. Enabling
    /// mid-run starts the shadow from an empty state, which is safe: the
    /// shadow only ever *under*-approximates bus/bank occupancy, so it can
    /// miss violations in already-in-flight work but never invent one.
    pub fn set_timing_audit(&mut self, enabled: bool) {
        self.audit = enabled.then(|| Box::new(TimingAudit::new()));
    }

    /// The first timing violation the audit found, if auditing is on.
    pub fn timing_violation(&self) -> Option<&str> {
        self.audit.as_ref().and_then(|a| a.violation())
    }

    #[inline]
    fn channel_of(&self, addr: u64) -> usize {
        ((addr / self.cfg.line_size) % self.cfg.channels as u64) as usize
    }

    /// Enqueues a read. On a full queue the request is rejected and the
    /// caller must retry (back-pressure).
    pub fn try_enqueue_read(&mut self, token: u64, addr: u64, now: Cycle) -> Result<(), u64> {
        let ch = self.channel_of(addr);
        let req = DramRequest {
            token,
            addr,
            arrival: now,
        };
        match self.channels[ch].read_q.try_push(req) {
            Ok(()) => {
                self.channels[ch].note_enqueue(addr, &self.cfg);
                Ok(())
            }
            Err(r) => {
                self.stats.queue_rejections += 1;
                Err(r.token)
            }
        }
    }

    /// Enqueues a write (posted; the completion is for stats/ordering).
    pub fn try_enqueue_write(&mut self, token: u64, addr: u64, now: Cycle) -> Result<(), u64> {
        let ch = self.channel_of(addr);
        let req = DramRequest {
            token,
            addr,
            arrival: now,
        };
        match self.channels[ch].write_q.try_push(req) {
            Ok(()) => {
                self.channels[ch].note_enqueue(addr, &self.cfg);
                Ok(())
            }
            Err(r) => {
                self.stats.queue_rejections += 1;
                Err(r.token)
            }
        }
    }

    /// Whether the read queue owning `addr` has space.
    pub fn can_accept_read(&self, addr: u64) -> bool {
        !self.channels[self.channel_of(addr)].read_q.is_full()
    }

    /// Whether the write queue owning `addr` has space.
    pub fn can_accept_write(&self, addr: u64) -> bool {
        !self.channels[self.channel_of(addr)].write_q.is_full()
    }

    /// Advances every channel one cycle and returns completions due at or
    /// before `now`.
    pub fn tick(&mut self, now: Cycle) -> Vec<Completion> {
        let mut done = Vec::new();
        self.tick_into(now, &mut done);
        done
    }

    /// Advances every channel one cycle, appending completions due at or
    /// before `now` to `done` (allocation-free variant of
    /// [`DramModel::tick`]; `done` is NOT cleared).
    pub fn tick_into(&mut self, now: Cycle, done: &mut Vec<Completion>) {
        let cfg = self.cfg.clone();
        let banks_per_channel = cfg.banks_per_channel;
        for (ci, ch) in self.channels.iter_mut().enumerate() {
            // 1. Deliver finished accesses (skip the scan until something
            // is due).
            if ch.min_finish <= now.0 {
                let mut i = 0;
                let mut min = u64::MAX;
                while i < ch.in_service.len() {
                    if ch.in_service[i].1 <= now.0 {
                        let (comp, _) = ch.in_service.swap_remove(i);
                        if !comp.is_write && self.pending_transients != 0 {
                            // Injected transient fault: the data failed at
                            // delivery; retransmit after a full re-access
                            // penalty. Strictly future, so the event
                            // horizon and both engines see it identically.
                            self.pending_transients -= 1;
                            self.transient_retries += 1;
                            let burst = (cfg.line_size as f64 / cfg.bytes_per_cycle).ceil() as u64;
                            let penalty =
                                (cfg.t_rp + cfg.t_rcd + cfg.t_cl + burst + cfg.fixed_latency)
                                    .max(1);
                            let refinish = now.0 + penalty;
                            ch.in_service.push((
                                Completion {
                                    token: comp.token,
                                    at: Cycle(refinish),
                                    is_write: false,
                                },
                                refinish,
                            ));
                            min = min.min(refinish);
                            continue;
                        }
                        done.push(comp);
                    } else {
                        min = min.min(ch.in_service[i].1);
                        i += 1;
                    }
                }
                ch.min_finish = min;
            }
            // 2. Write-drain hysteresis.
            if ch.write_q.len() >= cfg.drain_high {
                ch.draining = true;
            } else if ch.write_q.len() <= cfg.drain_low {
                ch.draining = false;
            }
            // 3. Issue while the data bus has room this cycle. Skipped
            // outright while `issue_floor` (an underestimate of the
            // earliest successful issue) is in the future: the scan below
            // is read-only when nothing can issue, so this is exact.
            if now.0 < ch.issue_floor {
                continue;
            }
            while ch.bus_free_at <= now.0 as f64 + 1.0 {
                // FR-FCFS with read priority: prefer row-hit reads, then
                // oldest read; during a drain (or when no reads) serve
                // writes the same way.
                let serve_writes = ch.draining || ch.read_q.is_empty();
                let (queue, is_write) = if serve_writes && !ch.write_q.is_empty() {
                    (&mut ch.write_q, true)
                } else if !ch.read_q.is_empty() {
                    (&mut ch.read_q, false)
                } else {
                    break;
                };
                // Find a row-hit request on a ready bank; else oldest on a
                // ready bank; else give up this cycle.
                let pick = {
                    let banks = &ch.banks;
                    let line = cfg.line_size;
                    let row_bytes = cfg.row_bytes;
                    let chn = cfg.channels as u64;
                    let nb = banks_per_channel as u64;
                    let classify = |addr: u64| {
                        let cl = (addr / line) / chn;
                        let lpr = (row_bytes / line).max(1);
                        let rl = cl / lpr;
                        ((rl % nb) as usize, rl / nb)
                    };
                    let mut hit_idx: Option<usize> = None;
                    let mut ready_idx: Option<usize> = None;
                    for (i, req) in queue.iter().enumerate() {
                        let (b, row) = classify(req.addr);
                        if banks[b].ready_at <= now.0 {
                            if banks[b].open_row == Some(row) {
                                hit_idx = Some(i);
                                break;
                            }
                            if ready_idx.is_none() {
                                ready_idx = Some(i);
                            }
                        }
                    }
                    hit_idx.or(ready_idx)
                };
                let Some(idx) = pick else { break };
                let mut taken = 0usize;
                let req = queue
                    .pop_first_matching(|_| {
                        let found = taken == idx;
                        taken += 1;
                        found
                    })
                    // audit:allow(tick-path-panics) idx was computed from this queue two lines up; a miss is memory corruption, not a recoverable SimError
                    .expect("picked index must exist");
                // Timing.
                let (bank_idx, row) = {
                    let cl = (req.addr / cfg.line_size) / cfg.channels as u64;
                    let lpr = (cfg.row_bytes / cfg.line_size).max(1);
                    let rl = cl / lpr;
                    (
                        (rl % banks_per_channel as u64) as usize,
                        rl / banks_per_channel as u64,
                    )
                };
                let bank = &mut ch.banks[bank_idx];
                let start = (now.0 as f64).max(ch.bus_free_at).max(bank.ready_at as f64);
                let row_hit = bank.open_row == Some(row);
                let access_lat = match bank.open_row {
                    Some(r) if r == row => {
                        self.stats.row_hits += 1;
                        cfg.t_cl
                    }
                    Some(_) => {
                        self.stats.row_misses += 1;
                        cfg.t_rp + cfg.t_rcd + cfg.t_cl
                    }
                    None => {
                        self.stats.row_misses += 1;
                        cfg.t_rcd + cfg.t_cl
                    }
                };
                let burst = cfg.line_size as f64 / cfg.bytes_per_cycle;
                // The bank is occupied for the DRAM timing only; the fixed
                // controller/PHY pipeline latency delays the *completion*
                // without blocking the bank.
                let bank_ready = start + access_lat as f64 + burst;
                let finish = bank_ready + cfg.fixed_latency as f64;
                bank.open_row = Some(row);
                bank.ready_at = bank_ready as u64;
                ch.bus_free_at = start + burst;
                if row_hit {
                    ch.row_hit_cycles += access_lat;
                } else {
                    ch.row_miss_cycles += access_lat;
                }
                ch.bus_cycles += burst;
                self.stats.bytes_transferred += cfg.line_size;
                if is_write {
                    self.stats.writes += 1;
                } else {
                    self.stats.reads += 1;
                }
                let finish = finish.ceil() as u64;
                if let Some(audit) = self.audit.as_deref_mut() {
                    audit.observe_issue(
                        ci,
                        bank_idx,
                        row,
                        start,
                        burst,
                        bank_ready as u64,
                        finish,
                        row_hit,
                        cfg.t_cl,
                    );
                }
                ch.in_service.push((
                    Completion {
                        token: req.token,
                        at: Cycle(finish),
                        is_write,
                    },
                    finish,
                ));
                ch.min_finish = ch.min_finish.min(finish);
                let _ = req.arrival; // latency accounting happens at the caller
            }
            ch.recompute_issue_floor(&cfg);
        }
    }

    /// Whether any queue or bank still has work in flight.
    pub fn is_idle(&self) -> bool {
        self.channels
            .iter()
            .all(|c| c.read_q.is_empty() && c.write_q.is_empty() && c.in_service.is_empty())
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Per-channel occupancy breakdowns for the cycle-accounting profiler.
    /// The caller owns the GPU index ([`DramChannelProfile::gpu`] is left
    /// 0 here); row-hit/row-miss are bank-time (banks overlap, so their
    /// sum can exceed wall-clock), bus is serialized channel time, and
    /// refresh is always 0 because refresh is not modeled.
    pub fn channel_profiles(&self) -> Vec<DramChannelProfile> {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, ch)| DramChannelProfile {
                gpu: 0,
                channel: i,
                row_hit_cycles: ch.row_hit_cycles,
                row_miss_cycles: ch.row_miss_cycles,
                bus_cycles: ch.bus_cycles,
                refresh_cycles: 0,
            })
            .collect()
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// One diagnostic line per channel with queued or in-service work:
    /// queue depths, drain state, and the oldest queued request's arrival
    /// cycle. Empty when the subsystem is idle.
    pub fn occupancy_report(&self) -> Vec<String> {
        self.snapshot().occupancy_report()
    }

    /// Point-in-time occupancy of every channel. Read-only; the single
    /// source behind [`DramModel::occupancy_report`] and the telemetry
    /// sampler.
    pub fn snapshot(&self) -> DramSnapshot {
        DramSnapshot {
            channels: self
                .channels
                .iter()
                .map(|ch| ChannelSnapshot {
                    read_q: ch.read_q.len(),
                    write_q: ch.write_q.len(),
                    in_service: ch.in_service.len(),
                    draining: ch.draining,
                    oldest_arrival: ch
                        .read_q
                        .iter()
                        .chain(ch.write_q.iter())
                        .map(|r| r.arrival.0)
                        .min(),
                })
                .collect(),
        }
    }
}

/// Point-in-time occupancy of one DRAM channel (see [`DramSnapshot`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelSnapshot {
    /// Queued reads.
    pub read_q: usize,
    /// Queued writes.
    pub write_q: usize,
    /// Requests past arbitration, waiting on bank/bus timing.
    pub in_service: usize,
    /// Whether the channel is in a write-drain batch.
    pub draining: bool,
    /// Arrival cycle of the oldest queued request, if any.
    pub oldest_arrival: Option<u64>,
}

impl ChannelSnapshot {
    /// Whether the channel has any queued or in-service work.
    pub fn is_busy(&self) -> bool {
        self.read_q > 0 || self.write_q > 0 || self.in_service > 0
    }
}

/// Point-in-time occupancy snapshot of a whole DRAM subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DramSnapshot {
    /// Per-channel occupancy, in channel order.
    pub channels: Vec<ChannelSnapshot>,
}

impl DramSnapshot {
    /// Human-readable lines naming every busy channel (empty when idle).
    /// Used verbatim in watchdog stall reports.
    pub fn occupancy_report(&self) -> Vec<String> {
        self.channels
            .iter()
            .enumerate()
            .filter(|(_, ch)| ch.is_busy())
            .map(|(i, ch)| {
                format!(
                    "channel {}: read_q={} write_q={} in_service={} draining={}{}",
                    i,
                    ch.read_q,
                    ch.write_q,
                    ch.in_service,
                    ch.draining,
                    ch.oldest_arrival
                        .map_or(String::new(), |a| format!(" oldest_arrival={a}")),
                )
            })
            .collect()
    }
}

impl NextEvent for DramModel {
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let floor = now.0 + 1;
        let mut horizon: Option<Cycle> = None;
        for ch in &self.channels {
            // The floor is the lowest possible horizon; stop scanning.
            if horizon == Some(Cycle(floor)) {
                return horizon;
            }
            // Deliveries: earliest in-service finish (cached).
            if ch.min_finish != u64::MAX {
                horizon = earliest(horizon, Some(Cycle(ch.min_finish.max(floor))));
            }
            // Issues: the bus must have room (`bus_free_at <= t + 1`) and
            // some queued request's bank must be ready. `issue_floor`
            // caches exactly that (an underestimate — the scheduler may be
            // serving the other queue — which is safe: the engine just
            // performs a no-op tick there).
            if ch.issue_floor != u64::MAX {
                horizon = earliest(horizon, Some(Cycle(ch.issue_floor.max(floor))));
            }
        }
        horizon
    }
}

/// Flat bandwidth-latency memory model (ablation alternative).
///
/// Every access completes after `latency` plus queueing delay imposed by an
/// aggregate bytes/cycle budget. No banks, rows or scheduling.
#[derive(Debug)]
pub struct FlatMemory {
    latency: u64,
    bytes_per_cycle: f64,
    line_size: u64,
    next_slot: f64,
    in_service: Vec<(Completion, u64)>,
    stats: DramStats,
    pending_transients: u32,
    transient_retries: u64,
}

impl FlatMemory {
    /// Creates a flat model with fixed `latency` and aggregate bandwidth.
    pub fn new(latency: u64, bytes_per_cycle: f64, line_size: u64) -> FlatMemory {
        assert!(bytes_per_cycle > 0.0 && line_size > 0);
        FlatMemory {
            latency,
            bytes_per_cycle,
            line_size,
            next_slot: 0.0,
            in_service: Vec::new(),
            stats: DramStats::default(),
            pending_transients: 0,
            transient_retries: 0,
        }
    }

    /// Arms `n` transient faults: each forces one read completion to
    /// retransmit after a full latency + burst penalty (the flat-model
    /// analogue of [`DramModel::inject_transient_faults`]).
    pub fn inject_transient_faults(&mut self, n: u32) {
        self.pending_transients = self.pending_transients.saturating_add(n);
    }

    /// Read completions retransmitted after an injected transient fault.
    pub fn transient_retries(&self) -> u64 {
        self.transient_retries
    }

    /// Enqueues an access; flat model never rejects.
    pub fn enqueue(&mut self, token: u64, is_write: bool, now: Cycle) {
        let start = (now.0 as f64).max(self.next_slot);
        let burst = self.line_size as f64 / self.bytes_per_cycle;
        self.next_slot = start + burst;
        let finish = (start + self.latency as f64 + burst).ceil() as u64;
        self.stats.bytes_transferred += self.line_size;
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.in_service.push((
            Completion {
                token,
                at: Cycle(finish),
                is_write,
            },
            finish,
        ));
    }

    /// Returns completions due at or before `now`.
    pub fn tick(&mut self, now: Cycle) -> Vec<Completion> {
        let mut done = Vec::new();
        self.tick_into(now, &mut done);
        done
    }

    /// Appends completions due at or before `now` to `done`
    /// (allocation-free variant of [`FlatMemory::tick`]).
    pub fn tick_into(&mut self, now: Cycle, done: &mut Vec<Completion>) {
        let mut i = 0;
        while i < self.in_service.len() {
            if self.in_service[i].1 <= now.0 {
                let (comp, _) = self.in_service.swap_remove(i);
                if !comp.is_write && self.pending_transients != 0 {
                    // Injected transient fault: retransmit strictly in
                    // the future (see DramModel::tick_into).
                    self.pending_transients -= 1;
                    self.transient_retries += 1;
                    let burst = (self.line_size as f64 / self.bytes_per_cycle).ceil() as u64;
                    let refinish = now.0 + (self.latency + burst).max(1);
                    self.in_service.push((
                        Completion {
                            token: comp.token,
                            at: Cycle(refinish),
                            is_write: false,
                        },
                        refinish,
                    ));
                    continue;
                }
                done.push(comp);
            } else {
                i += 1;
            }
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Whether nothing is in flight.
    pub fn is_idle(&self) -> bool {
        self.in_service.is_empty()
    }

    /// Accesses currently in service.
    pub fn in_flight(&self) -> usize {
        self.in_service.len()
    }
}

impl NextEvent for FlatMemory {
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.in_service
            .iter()
            .map(|&(_, finish)| finish.max(now.0 + 1))
            .min()
            .map(Cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DramConfig {
        DramConfig {
            channels: 2,
            banks_per_channel: 4,
            bytes_per_cycle: 16.0,
            t_rcd: 14,
            t_rp: 14,
            t_cl: 14,
            fixed_latency: 0,
            queue_depth: 8,
            drain_high: 6,
            drain_low: 2,
            row_bytes: 2048,
            line_size: 128,
        }
    }

    fn run_until_done(dram: &mut DramModel, limit: u64) -> Vec<Completion> {
        let mut out = Vec::new();
        for c in 0..limit {
            out.extend(dram.tick(Cycle(c)));
            if dram.is_idle() {
                break;
            }
        }
        out
    }

    #[test]
    fn timing_audit_passes_a_legal_sequence() {
        let mut a = TimingAudit::new();
        // Closed bank: activate + CAS, burst of 8 cycles on the bus.
        a.observe_issue(0, 0, 5, 0.0, 8.0, 36, 36, false, 14);
        // Row hit on the now-open row, after the bus frees.
        a.observe_issue(0, 0, 5, 36.0, 8.0, 58, 58, true, 14);
        // A different channel has its own bus: overlapping is fine.
        a.observe_issue(1, 0, 5, 0.0, 8.0, 36, 36, false, 14);
        assert_eq!(a.violation(), None);
    }

    #[test]
    fn timing_audit_catches_bus_overlap() {
        let mut a = TimingAudit::new();
        a.observe_issue(0, 0, 5, 0.0, 8.0, 36, 36, false, 14);
        // Second burst starts while the first still owns the data bus.
        a.observe_issue(0, 1, 9, 4.0, 8.0, 40, 40, false, 14);
        let v = a.violation().expect("violation latched");
        assert!(v.contains("bus"), "names the bus: {v}");
    }

    #[test]
    fn timing_audit_catches_bank_recovery_breach() {
        let mut a = TimingAudit::new();
        a.observe_issue(0, 0, 5, 0.0, 8.0, 36, 36, false, 14);
        // Same bank re-issued at cycle 10 < ready_at 36 (bus is free by
        // claiming a start after the burst but inside recovery).
        a.observe_issue(0, 0, 5, 10.0, 8.0, 60, 60, true, 14);
        let v = a.violation().expect("violation latched");
        assert!(v.contains("recovery"), "names the window: {v}");
    }

    #[test]
    fn timing_audit_catches_false_row_hit() {
        let mut a = TimingAudit::new();
        a.observe_issue(0, 0, 5, 0.0, 8.0, 36, 36, false, 14);
        // Row-hit timing charged for a different row than the open one.
        a.observe_issue(0, 0, 6, 40.0, 8.0, 62, 62, true, 14);
        let v = a.violation().expect("violation latched");
        assert!(v.contains("row"), "names the row: {v}");
    }

    #[test]
    fn timing_audit_catches_cas_floor_breach() {
        let mut a = TimingAudit::new();
        // Completion before start + tCL is physically impossible.
        a.observe_issue(0, 0, 5, 0.0, 8.0, 10, 10, false, 14);
        let v = a.violation().expect("violation latched");
        assert!(v.contains("CAS"), "names the floor: {v}");
    }

    #[test]
    fn timing_audit_keeps_first_violation() {
        let mut a = TimingAudit::new();
        a.observe_issue(0, 0, 5, 0.0, 8.0, 10, 10, false, 14); // CAS breach
        a.observe_issue(0, 0, 6, 0.0, 8.0, 36, 36, true, 14); // would be row breach
        assert!(a.violation().unwrap().contains("CAS"));
    }

    #[test]
    fn audited_model_runs_clean_and_costs_nothing_when_off() {
        let mut plain = DramModel::new(small_cfg());
        let mut audited = DramModel::new(small_cfg());
        audited.set_timing_audit(true);
        for (i, addr) in (0..32u64).map(|i| (i, i * 128)).collect::<Vec<_>>() {
            plain.try_enqueue_read(i, addr, Cycle(0)).ok();
            audited.try_enqueue_read(i, addr, Cycle(0)).ok();
        }
        let a = run_until_done(&mut plain, 10_000);
        let b = run_until_done(&mut audited, 10_000);
        assert_eq!(audited.timing_violation(), None);
        // The audit is read-only: completions are bit-identical.
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.token, x.at, x.is_write), (y.token, y.at, y.is_write));
        }
    }

    #[test]
    fn single_read_completes_with_activate_latency() {
        let mut dram = DramModel::new(small_cfg());
        dram.try_enqueue_read(7, 0, Cycle(0)).unwrap();
        let done = run_until_done(&mut dram, 1000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, 7);
        assert!(!done[0].is_write);
        // tRCD + tCL + burst(128/16=8) = 36
        assert_eq!(done[0].at, Cycle(36));
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let cfg = small_cfg();
        let mut dram = DramModel::new(cfg);
        // Two lines in the same row (consecutive lines on channel 0:
        // addresses 0 and 256 with 2 channels).
        dram.try_enqueue_read(1, 0, Cycle(0)).unwrap();
        dram.try_enqueue_read(2, 256, Cycle(0)).unwrap();
        let done = run_until_done(&mut dram, 1000);
        assert_eq!(done.len(), 2);
        assert_eq!(dram.stats().row_hits, 1);
        assert_eq!(dram.stats().row_misses, 1);
    }

    #[test]
    fn channel_interleaving_spreads_lines() {
        let dram = DramModel::new(small_cfg());
        assert_ne!(dram.channel_of(0), dram.channel_of(128));
        assert_eq!(dram.channel_of(0), dram.channel_of(256));
    }

    #[test]
    fn queue_depth_is_enforced() {
        let mut dram = DramModel::new(small_cfg());
        for i in 0..8 {
            // all map to channel 0
            dram.try_enqueue_read(i, i * 256, Cycle(0)).unwrap();
        }
        assert!(dram.try_enqueue_read(99, 9 * 256, Cycle(0)).is_err());
        assert!(dram.can_accept_read(128)); // other channel still open
        assert_eq!(dram.stats().queue_rejections, 1);
    }

    #[test]
    fn reads_prioritized_over_writes_until_drain() {
        let mut dram = DramModel::new(small_cfg());
        for i in 0..4 {
            dram.try_enqueue_write(100 + i, i * 256, Cycle(0)).unwrap();
        }
        dram.try_enqueue_read(1, 0x10000, Cycle(0)).unwrap();
        let done = run_until_done(&mut dram, 5000);
        let first_read_pos = done.iter().position(|c| !c.is_write).unwrap();
        // The read finishes before at least the later writes despite
        // arriving last (write queue below drain_high, reads priority).
        assert!(first_read_pos < done.len() - 1);
        assert_eq!(done.len(), 5);
    }

    #[test]
    fn write_drain_kicks_in_at_high_watermark() {
        let mut dram = DramModel::new(small_cfg());
        for i in 0..6 {
            dram.try_enqueue_write(i, i * 256, Cycle(0)).unwrap();
        }
        let done = run_until_done(&mut dram, 5000);
        assert_eq!(done.len(), 6);
        assert_eq!(dram.stats().writes, 6);
    }

    #[test]
    fn bandwidth_bounds_throughput() {
        let cfg = small_cfg(); // 2ch x 16 B/cyc = 32 B/cyc aggregate
        let mut dram = DramModel::new(cfg);
        // Saturate: 64 sequential lines.
        let mut issued = 0u64;
        let mut completed = 0usize;
        let mut last = 0u64;
        for c in 0..100_000u64 {
            while issued < 64 {
                if dram
                    .try_enqueue_read(issued, issued * 128, Cycle(c))
                    .is_ok()
                {
                    issued += 1;
                } else {
                    break;
                }
            }
            let done = dram.tick(Cycle(c));
            completed += done.len();
            if completed == 64 {
                last = c;
                break;
            }
        }
        assert_eq!(completed, 64);
        // 64 lines * 128B = 8KB at 32 B/cyc = 256 cycles minimum.
        assert!(last >= 256, "finished unrealistically fast: {last}");
        assert!(last < 1000, "took unreasonably long: {last}");
    }

    #[test]
    fn flat_memory_latency_and_order() {
        let mut m = FlatMemory::new(100, 16.0, 128);
        m.enqueue(1, false, Cycle(0));
        m.enqueue(2, false, Cycle(0));
        let mut done = Vec::new();
        for c in 0..500u64 {
            done.extend(m.tick(Cycle(c)));
        }
        assert_eq!(done.len(), 2);
        // First: 100 + 8 = 108; second starts at bus slot 8: 8+100+8=116.
        assert_eq!(done[0].at, Cycle(108));
        assert_eq!(done[1].at, Cycle(116));
        assert!(m.is_idle());
    }

    #[test]
    #[should_panic]
    fn bad_drain_watermarks_panic() {
        let mut cfg = small_cfg();
        cfg.drain_low = cfg.drain_high;
        let _ = DramModel::new(cfg);
    }

    /// Drives `dram` with the event-skipping discipline and returns every
    /// (cycle, token) completion.
    fn run_skipping(dram: &mut DramModel, limit: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut now = 0u64;
        while now < limit {
            for c in dram.tick(Cycle(now)) {
                out.push((now, c.token));
            }
            match dram.next_event(Cycle(now)) {
                Some(next) => now = next.0,
                None => break,
            }
        }
        out
    }

    #[test]
    fn next_event_reproduces_stepped_completions() {
        let mk = || {
            let mut dram = DramModel::new(small_cfg());
            // A mix of row hits, misses, both channels, and writes.
            for (i, addr) in [0u64, 256, 128, 0x10000, 384, 0x20080]
                .into_iter()
                .enumerate()
            {
                dram.try_enqueue_read(i as u64, addr, Cycle(0)).unwrap();
            }
            dram.try_enqueue_write(100, 512, Cycle(0)).unwrap();
            dram
        };
        let mut stepped = mk();
        let mut by_step = Vec::new();
        for c in 0..5000u64 {
            for done in stepped.tick(Cycle(c)) {
                by_step.push((c, done.token));
            }
        }
        let mut skipped = mk();
        let by_skip = run_skipping(&mut skipped, 5000);
        assert_eq!(by_skip, by_step);
        assert_eq!(skipped.stats(), stepped.stats());
        assert!(skipped.is_idle());
    }

    #[test]
    fn next_event_is_none_when_idle_and_future_otherwise() {
        let mut dram = DramModel::new(small_cfg());
        assert_eq!(dram.next_event(Cycle(0)), None);
        dram.try_enqueue_read(1, 0, Cycle(0)).unwrap();
        let ev = dram.next_event(Cycle(0)).expect("queued work has an event");
        assert!(ev.0 >= 1);
    }

    #[test]
    fn flat_memory_next_event_matches_completion() {
        let mut m = FlatMemory::new(100, 16.0, 128);
        assert_eq!(m.next_event(Cycle(0)), None);
        m.enqueue(1, false, Cycle(0));
        let ev = m.next_event(Cycle(0)).unwrap();
        assert!(m.tick(Cycle(ev.0 - 1)).is_empty());
        assert_eq!(m.tick(ev).len(), 1);
    }

    #[test]
    fn occupancy_report_names_busy_channels_only() {
        let mut dram = DramModel::new(small_cfg());
        assert!(dram.occupancy_report().is_empty());
        dram.try_enqueue_read(1, 0, Cycle(5)).unwrap(); // channel 0
        dram.try_enqueue_write(2, 0, Cycle(7)).unwrap();
        let report = dram.occupancy_report();
        assert_eq!(report.len(), 1);
        assert!(report[0].contains("channel 0"));
        assert!(report[0].contains("read_q=1"));
        assert!(report[0].contains("write_q=1"));
        assert!(report[0].contains("oldest_arrival=5"));
        run_until_done(&mut dram, 5000);
        assert!(dram.occupancy_report().is_empty());
    }

    #[test]
    fn transient_fault_delays_one_read_by_a_full_reaccess() {
        let mut dram = DramModel::new(small_cfg());
        dram.inject_transient_faults(1);
        dram.try_enqueue_read(7, 0, Cycle(0)).unwrap();
        let done = run_until_done(&mut dram, 5000);
        assert_eq!(done.len(), 1, "bounded: the retry still delivers");
        assert_eq!(done[0].token, 7);
        // Clean finish would be 36 (tRCD+tCL+burst); the retransmission
        // adds tRP+tRCD+tCL+burst = 14+14+14+8 = 50 on top.
        assert_eq!(done[0].at, Cycle(86));
        assert_eq!(dram.transient_retries(), 1);
        // Subsequent reads are unaffected once the fault is consumed.
        dram.try_enqueue_read(8, 0x40000, Cycle(1000)).unwrap();
        let done = run_until_done(&mut dram, 5000);
        assert_eq!(done.len(), 1);
        assert_eq!(dram.transient_retries(), 1);
    }

    #[test]
    fn transient_fault_skips_writes_and_keeps_event_horizon_exact() {
        let mut dram = DramModel::new(small_cfg());
        dram.inject_transient_faults(1);
        dram.try_enqueue_write(1, 0, Cycle(0)).unwrap();
        dram.try_enqueue_read(2, 0x10000, Cycle(0)).unwrap();
        // Event-skip discipline must see the retried completion too.
        let by_skip = run_skipping(&mut dram, 10_000);
        assert_eq!(by_skip.len(), 2);
        assert_eq!(dram.transient_retries(), 1, "only the read was faulted");
        assert!(dram.is_idle());
        // Stepping reproduces the same (cycle, token) stream.
        let mut stepped = DramModel::new(small_cfg());
        stepped.inject_transient_faults(1);
        stepped.try_enqueue_write(1, 0, Cycle(0)).unwrap();
        stepped.try_enqueue_read(2, 0x10000, Cycle(0)).unwrap();
        let mut by_step = Vec::new();
        for c in 0..10_000u64 {
            for done in stepped.tick(Cycle(c)) {
                by_step.push((c, done.token));
            }
        }
        assert_eq!(by_skip, by_step);
    }

    #[test]
    fn flat_memory_transient_fault_retries_reads() {
        let mut m = FlatMemory::new(100, 16.0, 128);
        m.inject_transient_faults(1);
        m.enqueue(1, false, Cycle(0));
        let mut done = Vec::new();
        for c in 0..1000u64 {
            done.extend(m.tick(Cycle(c)));
        }
        // Clean: 108. Faulted at delivery, retransmit = +100+8.
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].at, Cycle(216));
        assert_eq!(m.transient_retries(), 1);
    }

    #[test]
    fn stats_row_hit_rate() {
        let mut s = DramStats::default();
        assert_eq!(s.row_hit_rate(), 0.0);
        s.row_hits = 3;
        s.row_misses = 1;
        assert!((s.row_hit_rate() - 0.75).abs() < 1e-12);
    }
}
