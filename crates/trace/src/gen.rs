//! Deterministic per-warp instruction stream generation.

use crate::spec::{Pattern, Sharing, WorkloadSpec};
use sim_core::{rng::Stream, ScaledConfig};

/// One warp-level operation.
///
/// Memory operations carry a line-aligned virtual address representing the
/// coalesced access of all 32 threads in the warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A run of `n` compute (non-memory) warp instructions.
    Compute(u32),
    /// A load from the given virtual address.
    Load(u64),
    /// A store to the given virtual address.
    Store(u64),
}

#[derive(Debug, Clone)]
struct RegionState {
    base: u64,
    lines: u64,
    pattern: Pattern,
    sharing: Sharing,
    write_prob: f64,
    rw_line_permille: u32,
    weight: f64,
    // Per-CTA slice geometry (PrivatePerCta / Neighbor).
    slice_lines: u64,
    // Sequential cursor (line index within region).
    cursor: u64,
    // Multiplier coprime with `lines`, used to scatter Zipf ranks so hot
    // lines do not cluster into a handful of pages.
    scatter: u64,
}

/// Deterministic instruction stream for one warp in one kernel launch.
///
/// Produced by [`WorkloadSpec::warp_gen`]; see the crate docs for an
/// example.
#[derive(Debug, Clone)]
pub struct WarpGen {
    regions: Vec<RegionState>,
    line_size: u64,
    remaining: u64,
    mem_fraction: f64,
    rng: Stream,
    pending_mem: bool,
    compute_debt: f64,
    total_ctas: u64,
    affinity_cta: u64,
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl WarpGen {
    /// Builds the stream for `(kernel, cta, warp)` of `spec` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cta`/`warp` exceed the kernel shape or the spec has no
    /// regions.
    pub fn new(
        spec: &WorkloadSpec,
        cfg: &ScaledConfig,
        kernel: usize,
        cta: usize,
        warp: usize,
    ) -> WarpGen {
        assert!(cta < spec.shape.ctas, "cta {cta} out of range");
        assert!(warp < spec.shape.warps_per_cta, "warp {warp} out of range");
        assert!(!spec.regions.is_empty(), "workload has no regions");
        let layout = spec.layout(cfg);
        let total_ctas = spec.shape.ctas as u64;
        let affinity = spec.affinity_cta(kernel, cta) as u64;
        let warps_per_cta = spec.shape.warps_per_cta as u64;
        let rng = Stream::from_parts(&[spec.seed, kernel as u64, cta as u64, warp as u64]);
        let regions = spec
            .regions
            .iter()
            .zip(layout.regions())
            .map(|(r, rl)| {
                let lines = rl.lines(cfg.line_size);
                let slice_lines = (lines / total_ctas).max(1);
                // Start each warp at a distinct offset within the slice so
                // warps of a CTA cover the slice cooperatively.
                let warp_off = (slice_lines / warps_per_cta.max(1)) * (warp as u64);
                let mut scatter = 0x9E37_79B1u64 % lines.max(1);
                if scatter == 0 {
                    scatter = 1;
                }
                while gcd(scatter, lines.max(1)) != 1 {
                    scatter += 1;
                }
                RegionState {
                    base: rl.base,
                    lines,
                    pattern: r.pattern,
                    sharing: r.sharing,
                    write_prob: r.write_prob,
                    rw_line_permille: r.rw_line_permille,
                    weight: r.weight,
                    slice_lines,
                    cursor: warp_off,
                    scatter,
                }
            })
            .collect();
        WarpGen {
            regions,
            line_size: cfg.line_size,
            remaining: spec.shape.instrs_per_warp as u64,
            mem_fraction: spec.mem_fraction,
            rng,
            pending_mem: false,
            compute_debt: 0.0,
            total_ctas,
            affinity_cta: affinity,
        }
    }

    /// Warp instructions left in this kernel.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Produces the next operation, or `None` when the warp has retired
    /// all its instructions for this kernel.
    pub fn next_op(&mut self) -> Option<Op> {
        if self.remaining == 0 {
            return None;
        }
        if !self.pending_mem {
            self.pending_mem = true;
            // Mean compute instructions per memory instruction, paid out
            // exactly over time via a fractional debt accumulator.
            let mean = ((1.0 - self.mem_fraction) / self.mem_fraction).max(0.0);
            self.compute_debt += mean;
            let k = self.compute_debt as u64;
            self.compute_debt -= k as f64;
            let k = k.min(self.remaining.saturating_sub(1)) as u32;
            if k > 0 {
                self.remaining -= k as u64;
                return Some(Op::Compute(k));
            }
            // Fall through to emit the memory op immediately.
        }
        self.pending_mem = false;
        self.remaining -= 1;
        Some(self.gen_mem_op())
    }

    fn gen_mem_op(&mut self) -> Op {
        // Pick a region by weight.
        let idx = {
            let total: f64 = self.regions.iter().map(|r| r.weight).sum();
            let mut x = self.rng.gen_f64() * total;
            let mut pick = self.regions.len() - 1;
            for (i, r) in self.regions.iter().enumerate() {
                if x < r.weight {
                    pick = i;
                    break;
                }
                x -= r.weight;
            }
            pick
        };
        let (line, may_write) = self.gen_line(idx);
        let r = &self.regions[idx];
        let wants_write = self.rng.gen_f64() < r.write_prob;
        let writable = match r.sharing {
            Sharing::PrivatePerCta => true,
            _ => {
                // Scatter writable lines uniformly: page-granularity false
                // sharing with line-granularity read-mostly behaviour.
                let h = line
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(17)
                    .wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
                (h % 1000) < r.rw_line_permille as u64
            }
        };
        let va = r.base + line * self.line_size;
        if wants_write && writable && may_write {
            Op::Store(va)
        } else {
            Op::Load(va)
        }
    }

    /// Draws a line index within region `idx`; the bool reports whether a
    /// write is permitted to this line (halo reads are read-only).
    fn gen_line(&mut self, idx: usize) -> (u64, bool) {
        let r = &self.regions[idx];
        let lines = r.lines;
        let slice = r.slice_lines;
        let my_slice_base = (self.affinity_cta * slice) % lines;
        match r.sharing {
            Sharing::PrivatePerCta => {
                let line = match r.pattern {
                    Pattern::Sequential => {
                        let l = my_slice_base + (self.regions[idx].cursor % slice);
                        self.regions[idx].cursor += 1;
                        l % lines
                    }
                    Pattern::Uniform => my_slice_base + self.rng.gen_range(0, slice),
                    Pattern::Zipf(s) => {
                        let rank = self.rng.gen_zipf(slice, s);
                        my_slice_base + rank
                    }
                };
                (line % lines, true)
            }
            Sharing::SharedAll => {
                let line = match r.pattern {
                    Pattern::Sequential => {
                        let l = (my_slice_base + self.regions[idx].cursor) % lines;
                        self.regions[idx].cursor += 1;
                        l
                    }
                    Pattern::Uniform => self.rng.gen_range(0, lines),
                    Pattern::Zipf(s) => {
                        let rank = self.rng.gen_zipf(lines, s);
                        // Scatter ranks so hot lines spread across pages.
                        (rank.wrapping_mul(r.scatter)) % lines
                    }
                };
                (line, true)
            }
            Sharing::Neighbor { halo } => {
                if self.rng.gen_f64() < halo {
                    // Touch the facing edge of a neighbouring CTA slice.
                    let edge = (slice / 8).max(1);
                    let left = self.rng.gen_bool(0.5);
                    let neighbor = if left {
                        (self.affinity_cta + self.total_ctas - 1) % self.total_ctas
                    } else {
                        (self.affinity_cta + 1) % self.total_ctas
                    };
                    let nbase = (neighbor * slice) % lines;
                    let off = if left {
                        // Right edge of the left neighbour.
                        slice - edge + self.rng.gen_range(0, edge)
                    } else {
                        self.rng.gen_range(0, edge)
                    };
                    (((nbase + off) % lines), false)
                } else {
                    let line = match r.pattern {
                        Pattern::Sequential => {
                            let l = my_slice_base + (self.regions[idx].cursor % slice);
                            self.regions[idx].cursor += 1;
                            l % lines
                        }
                        Pattern::Uniform => (my_slice_base + self.rng.gen_range(0, slice)) % lines,
                        Pattern::Zipf(s) => (my_slice_base + self.rng.gen_zipf(slice, s)) % lines,
                    };
                    (line, true)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use sim_core::ScaledConfig;

    fn drain(spec_name: &str, kernel: usize, cta: usize, warp: usize) -> Vec<Op> {
        let cfg = ScaledConfig::default();
        let spec = workloads::by_name(spec_name).unwrap();
        let mut g = spec.warp_gen(&cfg, kernel, cta, warp);
        std::iter::from_fn(|| g.next_op()).collect()
    }

    #[test]
    fn stream_is_deterministic() {
        assert_eq!(drain("Lulesh", 0, 3, 1), drain("Lulesh", 0, 3, 1));
    }

    #[test]
    fn different_warps_differ() {
        assert_ne!(drain("Lulesh", 0, 3, 1), drain("Lulesh", 0, 3, 2));
    }

    #[test]
    fn instruction_budget_is_exact() {
        let cfg = ScaledConfig::default();
        let spec = workloads::by_name("XSBench").unwrap();
        let ops = drain("XSBench", 0, 0, 0);
        let total: u64 = ops
            .iter()
            .map(|op| match op {
                Op::Compute(n) => *n as u64,
                _ => 1,
            })
            .sum();
        assert_eq!(total, spec.shape.instrs_per_warp as u64);
        let _ = cfg;
    }

    #[test]
    fn addresses_stay_in_layout() {
        let cfg = ScaledConfig::default();
        for name in ["XSBench", "Lulesh", "RandAccess", "stream-triad", "HPGMG"] {
            let spec = workloads::by_name(name).unwrap();
            let layout = spec.layout(&cfg);
            let mut g = spec.warp_gen(&cfg, 0, 0, 0);
            while let Some(op) = g.next_op() {
                if let Op::Load(va) | Op::Store(va) = op {
                    assert!(va < layout.total_bytes(), "{name}: va {va:#x} escapes");
                    assert_eq!(va % cfg.line_size, 0, "{name}: unaligned va");
                }
            }
        }
    }

    #[test]
    fn memory_fraction_roughly_respected() {
        let cfg = ScaledConfig::default();
        let spec = workloads::by_name("stream-triad").unwrap();
        let mut mem = 0u64;
        let mut total = 0u64;
        for cta in 0..4 {
            let mut g = spec.warp_gen(&cfg, 0, cta, 0);
            while let Some(op) = g.next_op() {
                match op {
                    Op::Compute(n) => total += n as u64,
                    _ => {
                        mem += 1;
                        total += 1;
                    }
                }
            }
        }
        let frac = mem as f64 / total as f64;
        assert!(
            (frac - spec.mem_fraction).abs() < 0.15,
            "frac={frac} target={}",
            spec.mem_fraction
        );
    }

    #[test]
    fn private_sequential_stays_in_cta_slice() {
        let cfg = ScaledConfig::default();
        let spec = workloads::by_name("stream-triad").unwrap();
        let layout = spec.layout(&cfg);
        // stream-triad is fully private: every access from CTA 0 must land
        // in the first slice of each region.
        let mut g = spec.warp_gen(&cfg, 0, 0, 0);
        while let Some(op) = g.next_op() {
            if let Op::Load(va) | Op::Store(va) = op {
                let ridx = layout.region_of(va).unwrap();
                let r = layout.regions()[ridx];
                let lines = r.lines(cfg.line_size);
                let slice = (lines / spec.shape.ctas as u64).max(1);
                let line = (va - r.base) / cfg.line_size;
                assert!(line < slice, "line {line} outside slice {slice}");
            }
        }
    }

    #[test]
    fn neighbor_halo_reaches_adjacent_slice() {
        let cfg = ScaledConfig::default();
        let spec = workloads::by_name("Lulesh").unwrap();
        let layout = spec.layout(&cfg);
        let mut crossed = false;
        for warp in 0..spec.shape.warps_per_cta {
            let mut g = spec.warp_gen(&cfg, 0, 1, warp);
            while let Some(op) = g.next_op() {
                if let Op::Load(va) | Op::Store(va) = op {
                    let ridx = layout.region_of(va).unwrap();
                    let r = layout.regions()[ridx];
                    let lines = r.lines(cfg.line_size);
                    let slice = (lines / spec.shape.ctas as u64).max(1);
                    let line = (va - r.base) / cfg.line_size;
                    let owner = (line / slice).min(spec.shape.ctas as u64 - 1);
                    if owner != 1 {
                        crossed = true;
                    }
                }
            }
        }
        assert!(crossed, "stencil workload never touched a neighbour slice");
    }

    #[test]
    fn shared_writes_are_minority_of_shared_accesses() {
        // Figure 4's line-granularity story: the shared region of a
        // Monte-Carlo workload is overwhelmingly read.
        let ops = drain("XSBench", 0, 0, 0);
        let loads = ops.iter().filter(|o| matches!(o, Op::Load(_))).count();
        let stores = ops.iter().filter(|o| matches!(o, Op::Store(_))).count();
        assert!(stores < loads / 4, "stores={stores} loads={loads}");
    }

    #[test]
    fn remap_changes_addresses_between_kernels() {
        let cfg = ScaledConfig::default();
        let spec = workloads::by_name("HPGMG").unwrap();
        let collect = |kernel| {
            let mut g = spec.warp_gen(&cfg, kernel, 0, 0);
            let mut addrs = Vec::new();
            while let Some(op) = g.next_op() {
                if let Op::Load(va) | Op::Store(va) = op {
                    addrs.push(va);
                }
            }
            addrs
        };
        let k0 = collect(0);
        let k1 = collect(1);
        // Same CTA id reads a different slice after the remap.
        assert_ne!(k0, k1);
    }
}
