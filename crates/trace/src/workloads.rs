//! The 20 benchmark models of the paper's Table II.
//!
//! Each model is a [`WorkloadSpec`] whose parameters are set from the
//! paper's own characterization:
//!
//! * footprints come from Table II;
//! * the private / read-only-shared / read-write-shared access mix targets
//!   Figure 4 (large page-granularity RW sharing from scattered writable
//!   lines; small line-granularity RW sharing);
//! * shared-working-set sizes target Figure 5 (most exceed the aggregate
//!   LLC; XSBench-class table workloads exceed even multi-GB RDCs);
//! * kernel counts target Figure 11 (iterative solvers launch many kernels
//!   and lose all RDC locality under software coherence; XSBench's few
//!   long kernels do not);
//! * NUMA sensitivity targets Figure 2 (eight workloads are private-heavy
//!   and suffer little; AlexNet/GoogLeNet/OverFeat are fixed by read-only
//!   page replication; the stencil/graph/Monte-Carlo group needs CARVE).

use crate::spec::{KernelShape, Pattern, RegionSpec, Sharing, Suite, WorkloadSpec};
use sim_core::units::{GIB, MIB};

const KB: u64 = 1024;

fn region(
    paper_bytes: u64,
    pattern: Pattern,
    sharing: Sharing,
    write_prob: f64,
    rw_line_permille: u32,
    weight: f64,
) -> RegionSpec {
    RegionSpec {
        paper_bytes,
        pattern,
        sharing,
        write_prob,
        rw_line_permille,
        weight,
    }
}

/// Shape used by iterative many-kernel workloads (solvers, stencils,
/// graph algorithms): inter-kernel reuse makes software coherence painful.
fn iterative_shape(kernels: usize) -> KernelShape {
    KernelShape {
        kernels,
        ctas: 128,
        warps_per_cta: 4,
        instrs_per_warp: 1920 / kernels.max(1),
    }
}

/// Shape used by few-long-kernel workloads (XSBench, Bitcoin, GUPS).
fn long_kernel_shape(kernels: usize) -> KernelShape {
    KernelShape {
        kernels,
        ctas: 128,
        warps_per_cta: 4,
        instrs_per_warp: 2000 / kernels.max(1),
    }
}

/// Builds all 20 workload models in Table II order.
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        // ------------------------------------------------------- HPC -----
        WorkloadSpec {
            name: "AMG",
            suite: Suite::Hpc,
            paper_footprint: 3_435 * MIB, // 3.2 GB
            shape: iterative_shape(12),
            mem_fraction: 0.40,
            regions: vec![
                // Private solution/residual vectors, streamed.
                region(
                    2 * GIB,
                    Pattern::Sequential,
                    Sharing::PrivatePerCta,
                    0.30,
                    1000,
                    0.58,
                ),
                // Shared sparse-matrix structure, read-mostly, skewed.
                region(
                    1_200 * MIB,
                    Pattern::Zipf(0.6),
                    Sharing::SharedAll,
                    0.03,
                    60,
                    0.36,
                ),
                // Small shared coarse-grid data with real RW sharing.
                region(
                    76 * MIB,
                    Pattern::Uniform,
                    Sharing::SharedAll,
                    0.25,
                    300,
                    0.06,
                ),
            ],
            remap_ctas_between_kernels: false,
            seed: 0xA3601,
        },
        WorkloadSpec {
            name: "HPGMG",
            suite: Suite::Hpc,
            paper_footprint: 2 * GIB,
            shape: iterative_shape(16),
            mem_fraction: 0.42,
            regions: vec![
                // Multigrid levels: re-partitioned every kernel (remap), so
                // "private" grid data becomes inter-GPU RW shared.
                region(
                    1_600 * MIB,
                    Pattern::Sequential,
                    Sharing::Neighbor { halo: 0.10 },
                    0.12,
                    1000,
                    0.70,
                ),
                // Shared coefficients / restriction tables.
                region(
                    448 * MIB,
                    Pattern::Zipf(0.8),
                    Sharing::SharedAll,
                    0.03,
                    60,
                    0.30,
                ),
            ],
            remap_ctas_between_kernels: true,
            seed: 0x48731,
        },
        WorkloadSpec {
            name: "HPGMG-amry",
            suite: Suite::Hpc,
            paper_footprint: 7_700 * MIB,
            shape: iterative_shape(16),
            mem_fraction: 0.42,
            regions: vec![
                region(
                    6 * GIB,
                    Pattern::Sequential,
                    Sharing::Neighbor { halo: 0.08 },
                    0.12,
                    1000,
                    0.72,
                ),
                region(
                    1_556 * MIB,
                    Pattern::Zipf(0.7),
                    Sharing::SharedAll,
                    0.03,
                    60,
                    0.28,
                ),
            ],
            remap_ctas_between_kernels: true,
            seed: 0x48732,
        },
        WorkloadSpec {
            name: "Lulesh",
            suite: Suite::Hpc,
            paper_footprint: 24 * MIB,
            shape: iterative_shape(20),
            mem_fraction: 0.45,
            regions: vec![
                // Unstructured mesh node/element arrays with heavy halos.
                region(
                    16 * MIB,
                    Pattern::Sequential,
                    Sharing::Neighbor { halo: 0.22 },
                    0.32,
                    1000,
                    0.55,
                ),
                // Shared mesh connectivity, read-mostly but scattered writes
                // (nodal accumulations) => page-level RW sharing.
                region(
                    8 * MIB,
                    Pattern::Zipf(0.7),
                    Sharing::SharedAll,
                    0.06,
                    80,
                    0.45,
                ),
            ],
            remap_ctas_between_kernels: false,
            seed: 0x107E5,
        },
        WorkloadSpec {
            name: "Lulesh-s190",
            suite: Suite::Hpc,
            paper_footprint: 3_700 * MIB,
            shape: iterative_shape(16),
            mem_fraction: 0.42,
            regions: vec![
                region(
                    3 * GIB,
                    Pattern::Sequential,
                    Sharing::Neighbor { halo: 0.06 },
                    0.32,
                    1000,
                    0.80,
                ),
                region(
                    628 * MIB,
                    Pattern::Zipf(0.6),
                    Sharing::SharedAll,
                    0.03,
                    60,
                    0.20,
                ),
            ],
            remap_ctas_between_kernels: false,
            seed: 0x107E6,
        },
        WorkloadSpec {
            name: "CoMD",
            suite: Suite::Hpc,
            paper_footprint: 910 * MIB,
            shape: iterative_shape(12),
            mem_fraction: 0.40,
            regions: vec![
                // Particle data partitioned by spatial cell, small halo.
                region(
                    768 * MIB,
                    Pattern::Sequential,
                    Sharing::Neighbor { halo: 0.04 },
                    0.35,
                    1000,
                    0.85,
                ),
                region(
                    142 * MIB,
                    Pattern::Zipf(0.5),
                    Sharing::SharedAll,
                    0.03,
                    60,
                    0.15,
                ),
            ],
            remap_ctas_between_kernels: false,
            seed: 0xC04D,
        },
        WorkloadSpec {
            name: "MCB",
            suite: Suite::Hpc,
            paper_footprint: 254 * MIB,
            shape: iterative_shape(10),
            mem_fraction: 0.45,
            regions: vec![
                // Monte-Carlo particles: private, write-heavy.
                region(
                    64 * MIB,
                    Pattern::Uniform,
                    Sharing::PrivatePerCta,
                    0.45,
                    1000,
                    0.40,
                ),
                // Shared cross-section/material tables: read-mostly random.
                region(
                    190 * MIB,
                    Pattern::Zipf(0.35),
                    Sharing::SharedAll,
                    0.03,
                    60,
                    0.60,
                ),
            ],
            remap_ctas_between_kernels: false,
            seed: 0x3CB01,
        },
        WorkloadSpec {
            name: "MiniAMR",
            suite: Suite::Hpc,
            paper_footprint: 4_400 * MIB,
            shape: iterative_shape(14),
            mem_fraction: 0.40,
            regions: vec![
                region(
                    4 * GIB,
                    Pattern::Sequential,
                    Sharing::Neighbor { halo: 0.05 },
                    0.12,
                    1000,
                    0.85,
                ),
                region(
                    304 * MIB,
                    Pattern::Zipf(0.5),
                    Sharing::SharedAll,
                    0.03,
                    60,
                    0.15,
                ),
            ],
            remap_ctas_between_kernels: true,
            seed: 0x3A42,
        },
        WorkloadSpec {
            name: "Nekbone",
            suite: Suite::Hpc,
            paper_footprint: GIB,
            shape: iterative_shape(12),
            mem_fraction: 0.35,
            regions: vec![
                // Spectral elements: overwhelmingly private dense math.
                region(
                    960 * MIB,
                    Pattern::Sequential,
                    Sharing::PrivatePerCta,
                    0.30,
                    1000,
                    0.94,
                ),
                region(
                    64 * MIB,
                    Pattern::Zipf(0.6),
                    Sharing::SharedAll,
                    0.03,
                    60,
                    0.06,
                ),
            ],
            remap_ctas_between_kernels: false,
            seed: 0x2EB0,
        },
        WorkloadSpec {
            name: "XSBench",
            suite: Suite::Hpc,
            paper_footprint: 4_400 * MIB,
            shape: long_kernel_shape(2),
            mem_fraction: 0.50,
            regions: vec![
                // Hot slice of the shared nuclide cross-section grid: far
                // larger than any LLC and comparable to the RDC, so RDC
                // capacity sweeps (Table V) show strong sensitivity.
                // Scattered tally writes make nearly every *page* classify
                // read-write shared (so software replication cannot fix
                // XSBench, per Figures 2/9) while lines stay read-mostly.
                region(
                    768 * MIB,
                    Pattern::Zipf(0.70),
                    Sharing::SharedAll,
                    0.05,
                    70,
                    0.70,
                ),
                // Cold remainder of the grid, touched rarely: keeps the
                // Figure 5 shared footprint in the multi-GB class.
                region(
                    3_328 * MIB,
                    Pattern::Uniform,
                    Sharing::SharedAll,
                    0.04,
                    70,
                    0.06,
                ),
                // Private particle state.
                region(
                    304 * MIB,
                    Pattern::Uniform,
                    Sharing::PrivatePerCta,
                    0.45,
                    1000,
                    0.24,
                ),
            ],
            remap_ctas_between_kernels: false,
            seed: 0x55BE7,
        },
        WorkloadSpec {
            name: "Euler",
            suite: Suite::Hpc,
            paper_footprint: 26 * MIB,
            shape: iterative_shape(20),
            mem_fraction: 0.45,
            regions: vec![
                region(
                    18 * MIB,
                    Pattern::Sequential,
                    Sharing::Neighbor { halo: 0.18 },
                    0.32,
                    1000,
                    0.60,
                ),
                region(
                    8 * MIB,
                    Pattern::Zipf(0.6),
                    Sharing::SharedAll,
                    0.05,
                    70,
                    0.40,
                ),
            ],
            remap_ctas_between_kernels: false,
            seed: 0xE0137,
        },
        WorkloadSpec {
            name: "SSSP",
            suite: Suite::Hpc,
            paper_footprint: 42 * MIB,
            shape: iterative_shape(16),
            mem_fraction: 0.45,
            regions: vec![
                // Graph structure (CSR): shared, skewed by degree.
                region(
                    28 * MIB,
                    Pattern::Zipf(0.6),
                    Sharing::SharedAll,
                    0.03,
                    60,
                    0.55,
                ),
                // Distance array: shared with real scattered RW updates.
                region(
                    8 * MIB,
                    Pattern::Zipf(0.5),
                    Sharing::SharedAll,
                    0.22,
                    250,
                    0.30,
                ),
                // Private worklist chunks.
                region(
                    6 * MIB,
                    Pattern::Sequential,
                    Sharing::PrivatePerCta,
                    0.40,
                    1000,
                    0.15,
                ),
            ],
            remap_ctas_between_kernels: false,
            seed: 0x555B,
        },
        WorkloadSpec {
            name: "bfs-road",
            suite: Suite::Hpc,
            paper_footprint: 590 * MIB,
            shape: iterative_shape(16),
            mem_fraction: 0.45,
            regions: vec![
                region(
                    480 * MIB,
                    Pattern::Zipf(0.45),
                    Sharing::SharedAll,
                    0.03,
                    60,
                    0.50,
                ),
                region(
                    64 * MIB,
                    Pattern::Zipf(0.45),
                    Sharing::SharedAll,
                    0.18,
                    200,
                    0.25,
                ),
                region(
                    46 * MIB,
                    Pattern::Sequential,
                    Sharing::PrivatePerCta,
                    0.40,
                    1000,
                    0.25,
                ),
            ],
            remap_ctas_between_kernels: false,
            seed: 0xBF5,
        },
        // -------------------------------------------------------- ML -----
        WorkloadSpec {
            name: "AlexNet",
            suite: Suite::Ml,
            paper_footprint: 96 * MIB,
            shape: iterative_shape(8),
            mem_fraction: 0.35,
            regions: vec![
                // Layer weights: shared by every CTA, strictly read-only —
                // the case software read-only replication fully fixes.
                region(
                    64 * MIB,
                    Pattern::Zipf(0.4),
                    Sharing::SharedAll,
                    0.0,
                    0,
                    0.50,
                ),
                // Activations: private per CTA tile.
                region(
                    32 * MIB,
                    Pattern::Sequential,
                    Sharing::PrivatePerCta,
                    0.35,
                    1000,
                    0.50,
                ),
            ],
            remap_ctas_between_kernels: false,
            seed: 0xA1E7,
        },
        WorkloadSpec {
            name: "GoogLeNet",
            suite: Suite::Ml,
            paper_footprint: 1_200 * MIB,
            shape: iterative_shape(10),
            mem_fraction: 0.35,
            regions: vec![
                region(
                    896 * MIB,
                    Pattern::Zipf(0.4),
                    Sharing::SharedAll,
                    0.0,
                    0,
                    0.55,
                ),
                region(
                    304 * MIB,
                    Pattern::Sequential,
                    Sharing::PrivatePerCta,
                    0.35,
                    1000,
                    0.45,
                ),
            ],
            remap_ctas_between_kernels: false,
            seed: 0x6006,
        },
        WorkloadSpec {
            name: "OverFeat",
            suite: Suite::Ml,
            paper_footprint: 88 * MIB,
            shape: iterative_shape(8),
            mem_fraction: 0.35,
            regions: vec![
                region(
                    56 * MIB,
                    Pattern::Zipf(0.4),
                    Sharing::SharedAll,
                    0.0,
                    0,
                    0.52,
                ),
                region(
                    32 * MIB,
                    Pattern::Sequential,
                    Sharing::PrivatePerCta,
                    0.35,
                    1000,
                    0.48,
                ),
            ],
            remap_ctas_between_kernels: false,
            seed: 0x0F3A7,
        },
        // ----------------------------------------------------- Other -----
        WorkloadSpec {
            name: "Bitcoin",
            suite: Suite::Other,
            paper_footprint: 5_600 * MIB,
            shape: long_kernel_shape(4),
            mem_fraction: 0.20,
            regions: vec![
                // Hashing: compute bound, fully private streaming.
                region(
                    5_600 * MIB,
                    Pattern::Sequential,
                    Sharing::PrivatePerCta,
                    0.10,
                    1000,
                    1.0,
                ),
            ],
            remap_ctas_between_kernels: false,
            seed: 0xB17C,
        },
        WorkloadSpec {
            name: "Raytracing",
            suite: Suite::Other,
            paper_footprint: 150 * MIB,
            shape: iterative_shape(6),
            mem_fraction: 0.38,
            regions: vec![
                // BVH: shared read-only, extremely hot near the root so the
                // working set largely fits in the LLC.
                region(
                    96 * MIB,
                    Pattern::Zipf(1.05),
                    Sharing::SharedAll,
                    0.0,
                    0,
                    0.45,
                ),
                // Private rays / framebuffer tiles.
                region(
                    54 * MIB,
                    Pattern::Sequential,
                    Sharing::PrivatePerCta,
                    0.30,
                    1000,
                    0.55,
                ),
            ],
            remap_ctas_between_kernels: false,
            seed: 0x4A71,
        },
        WorkloadSpec {
            name: "stream-triad",
            suite: Suite::Other,
            paper_footprint: 3 * GIB,
            shape: long_kernel_shape(4),
            mem_fraction: 0.60,
            regions: vec![
                // a[i] = b[i] + s*c[i]: three private streams, one written.
                region(
                    GIB,
                    Pattern::Sequential,
                    Sharing::PrivatePerCta,
                    1.0,
                    1000,
                    0.34,
                ),
                region(
                    GIB,
                    Pattern::Sequential,
                    Sharing::PrivatePerCta,
                    0.0,
                    1000,
                    0.33,
                ),
                region(
                    GIB,
                    Pattern::Sequential,
                    Sharing::PrivatePerCta,
                    0.0,
                    1000,
                    0.33,
                ),
            ],
            remap_ctas_between_kernels: false,
            seed: 0x57A1,
        },
        WorkloadSpec {
            name: "RandAccess",
            suite: Suite::Other,
            paper_footprint: 15 * GIB,
            shape: long_kernel_shape(2),
            mem_fraction: 0.50,
            regions: vec![
                // GUPS: uniform random read-modify-write over a huge table.
                // Every line is writable => RW shared even at line
                // granularity (Figure 4's 100% outlier), and the working
                // set dwarfs the RDC so CARVE adds probe latency for
                // little hit rate.
                region(
                    15 * GIB - 256 * MIB,
                    Pattern::Uniform,
                    Sharing::SharedAll,
                    0.45,
                    1000,
                    0.92,
                ),
                region(
                    256 * MIB,
                    Pattern::Sequential,
                    Sharing::PrivatePerCta,
                    0.30,
                    1000,
                    0.08,
                ),
            ],
            remap_ctas_between_kernels: false,
            seed: 0x6B75,
        },
    ]
}

/// Looks up a workload model by its Table II abbreviation.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all().into_iter().find(|w| w.name == name)
}

/// The Table II abbreviations in paper order.
pub fn names() -> Vec<&'static str> {
    all().iter().map(|w| w.name).collect()
}

const _: () = {
    let _ = KB;
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_workloads_exist() {
        assert_eq!(all().len(), 20);
    }

    #[test]
    fn names_are_unique() {
        let names = names();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn lookup_by_name_round_trips() {
        for name in names() {
            assert_eq!(by_name(name).unwrap().name, name);
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn weights_sum_to_one_ish() {
        for w in all() {
            let total: f64 = w.regions.iter().map(|r| r.weight).sum();
            assert!(
                (total - 1.0).abs() < 0.05,
                "{}: weights sum to {total}",
                w.name
            );
        }
    }

    #[test]
    fn region_sizes_track_footprint() {
        for w in all() {
            let sum = w.regions_paper_bytes() as f64;
            let claim = w.paper_footprint as f64;
            assert!(
                (sum - claim).abs() / claim < 0.12,
                "{}: regions {}B vs footprint {}B",
                w.name,
                sum,
                claim
            );
        }
    }

    #[test]
    fn probabilities_are_valid() {
        for w in all() {
            assert!(w.mem_fraction > 0.0 && w.mem_fraction < 1.0, "{}", w.name);
            for r in &w.regions {
                assert!((0.0..=1.0).contains(&r.write_prob), "{}", w.name);
                assert!(r.rw_line_permille <= 1000, "{}", w.name);
                assert!(r.weight > 0.0, "{}", w.name);
                if let Sharing::Neighbor { halo } = r.sharing {
                    assert!((0.0..1.0).contains(&halo), "{}", w.name);
                }
            }
        }
    }

    #[test]
    fn ml_weights_are_strictly_read_only() {
        for name in ["AlexNet", "GoogLeNet", "OverFeat"] {
            let w = by_name(name).unwrap();
            let shared: Vec<_> = w
                .regions
                .iter()
                .filter(|r| matches!(r.sharing, Sharing::SharedAll))
                .collect();
            assert!(!shared.is_empty());
            for r in shared {
                assert_eq!(r.write_prob, 0.0, "{name} weights must be RO");
                assert_eq!(r.rw_line_permille, 0, "{name} weights must be RO");
            }
        }
    }

    #[test]
    fn instruction_totals_are_simulation_sized() {
        for w in all() {
            let t = w.shape.total_instrs();
            assert!(
                (400_000..4_000_000).contains(&t),
                "{}: {t} instrs out of range",
                w.name
            );
        }
    }
}
