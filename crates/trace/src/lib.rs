//! Synthetic workload models for the `carve-mgpu` simulator.
//!
//! The paper evaluates 20 proprietary CUDA application traces (Table II).
//! Those traces are not available, so this crate provides parameterized
//! *workload models* — one per paper benchmark — that generate deterministic
//! per-warp instruction streams with the memory-access *structure* each
//! benchmark is characterized with in the paper:
//!
//! * total memory footprint (Table II),
//! * the split of accesses into private / read-only shared / read-write
//!   shared data at page and cache-line granularity (Figure 4),
//! * shared-working-set size relative to the LLC (Figure 5),
//! * inter-kernel data reuse (the effect separating CARVE-SWC from
//!   CARVE-HWC in Figure 11), and
//! * access regularity (streaming vs. stencil halos vs. graph / Monte-Carlo
//!   randomness).
//!
//! Every stream is generated from counters and seeded PRNG streams keyed by
//! `(workload, kernel, cta, warp)`, so runs are exactly reproducible.
//!
//! # Example
//!
//! ```
//! use carve_trace::{workloads, Op};
//! use sim_core::ScaledConfig;
//!
//! let cfg = ScaledConfig::default();
//! let spec = workloads::by_name("XSBench").unwrap();
//! let mut gen = spec.warp_gen(&cfg, 0, 0, 0);
//! let op = gen.next_op().unwrap();
//! match op {
//!     Op::Compute(n) => assert!(n > 0),
//!     Op::Load(va) | Op::Store(va) => assert!(va < spec.layout(&cfg).total_bytes()),
//! }
//! ```

#![warn(missing_docs)]

pub mod gen;
pub mod spec;
pub mod workloads;

pub use gen::{Op, WarpGen};
pub use spec::{
    KernelShape, Layout, Pattern, RegionLayout, RegionSpec, Sharing, Suite, WorkloadSpec,
};
