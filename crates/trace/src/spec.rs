//! Workload specification types and address-space layout.

use sim_core::ScaledConfig;

/// Benchmark suite grouping from the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// HPC applications (CORAL, Rodinia, Lonestar...).
    Hpc,
    /// Machine-learning / DNN workloads.
    Ml,
    /// Other (crypto, raytracing, STREAM, GUPS).
    Other,
}

impl Suite {
    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Hpc => "HPC",
            Suite::Ml => "ML",
            Suite::Other => "Other",
        }
    }
}

/// How addresses are drawn within a region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Each warp walks its slice sequentially line by line, wrapping.
    /// Models coalesced streaming (STREAM triad, dense layers).
    Sequential,
    /// Uniform random lines over the whole region (GUPS, hash tables).
    Uniform,
    /// Zipf-skewed random lines with the given exponent (graph frontiers,
    /// Monte-Carlo cross-section tables, BVH hot nodes).
    Zipf(f64),
}

/// Who touches a region, which determines NUMA sharing behaviour under
/// contiguous-CTA scheduling and first-touch placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sharing {
    /// Region is partitioned per-CTA; each CTA touches only its slice.
    /// First-touch makes these accesses local (unless CTA→data affinity is
    /// remapped between kernels).
    PrivatePerCta,
    /// Every CTA on every GPU draws from the whole region (shared tables,
    /// weights, graph structure).
    SharedAll,
    /// Stencil-style: mostly the CTA's own slice, but a `halo` fraction of
    /// accesses touch the edges of neighbouring CTA slices. CTAs at GPU
    /// batch boundaries therefore share pages across GPUs.
    Neighbor {
        /// Fraction of this region's accesses that go to a neighbour halo.
        halo: f64,
    },
}

/// One logically distinct data region of a workload (an array, table, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSpec {
    /// Size at *paper* scale in bytes (scaled down by the config at build
    /// time).
    pub paper_bytes: u64,
    /// Address pattern inside the region.
    pub pattern: Pattern,
    /// Sharing structure.
    pub sharing: Sharing,
    /// Probability an access to this region is a store.
    pub write_prob: f64,
    /// Permille of this region's *lines* that are ever writable. Writes
    /// drawn to non-writable lines are issued as reads instead. Scattering
    /// a few writable lines uniformly across the region is what creates
    /// the paper's page-granularity false sharing (Figure 4): at 2 MB page
    /// granularity nearly every page containing a writable line classifies
    /// as read-write shared, while at 128 B granularity only
    /// `rw_line_permille / 1000` of lines do.
    pub rw_line_permille: u32,
    /// Relative weight of this region when choosing where an access goes.
    pub weight: f64,
}

/// Kernel/CTA/warp shape of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelShape {
    /// Number of kernel launches in the run.
    pub kernels: usize,
    /// CTAs per kernel.
    pub ctas: usize,
    /// Warps per CTA.
    pub warps_per_cta: usize,
    /// Warp-instructions per warp per kernel (compute + memory).
    pub instrs_per_warp: usize,
}

impl KernelShape {
    /// Total warp-instructions across the whole run.
    pub fn total_instrs(&self) -> u64 {
        self.kernels as u64
            * self.ctas as u64
            * self.warps_per_cta as u64
            * self.instrs_per_warp as u64
    }
}

/// A complete workload model: one per paper benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark abbreviation from Table II (e.g. "XSBench").
    pub name: &'static str,
    /// Suite grouping.
    pub suite: Suite,
    /// Paper-reported memory footprint in bytes (Table II).
    pub paper_footprint: u64,
    /// Kernel/CTA/warp structure.
    pub shape: KernelShape,
    /// Fraction of instructions that are memory operations.
    pub mem_fraction: f64,
    /// The data regions and their access weights.
    pub regions: Vec<RegionSpec>,
    /// When true, the CTA→data affinity rotates between kernels (as in
    /// multigrid/AMR codes whose grids are re-partitioned per level). This
    /// turns "private" data into inter-GPU read-write shared data across
    /// kernel boundaries and defeats first-touch placement.
    pub remap_ctas_between_kernels: bool,
    /// Deterministic seed namespace for this workload.
    pub seed: u64,
}

/// A region placed in the flat virtual address space, at simulator scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionLayout {
    /// First byte of the region (page aligned).
    pub base: u64,
    /// Region size in bytes at simulator scale (page aligned, >= 1 page).
    pub bytes: u64,
}

impl RegionLayout {
    /// Number of cache lines in the region.
    pub fn lines(&self, line_size: u64) -> u64 {
        (self.bytes / line_size).max(1)
    }
}

/// The scaled address-space layout of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    regions: Vec<RegionLayout>,
    total: u64,
    line_size: u64,
    page_size: u64,
}

impl Layout {
    /// Regions in declaration order.
    pub fn regions(&self) -> &[RegionLayout] {
        &self.regions
    }

    /// Total VA footprint in bytes at simulator scale.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Line size the layout was built with.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Page size the layout was built with.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Which region contains `va`, if any.
    pub fn region_of(&self, va: u64) -> Option<usize> {
        self.regions
            .iter()
            .position(|r| va >= r.base && va < r.base + r.bytes)
    }
}

impl WorkloadSpec {
    /// Builds the scaled address-space layout for this workload under `cfg`.
    ///
    /// Regions are laid out back to back, each page-aligned and at least
    /// one page (so a "24 MB" paper workload still has distinct regions at
    /// 1/256 scale).
    pub fn layout(&self, cfg: &ScaledConfig) -> Layout {
        let page = cfg.page_size;
        let mut base = 0u64;
        let mut regions = Vec::with_capacity(self.regions.len());
        for r in &self.regions {
            let scaled = (r.paper_bytes / cfg.capacity_scale).max(page);
            let bytes = scaled.div_ceil(page) * page;
            regions.push(RegionLayout { base, bytes });
            base += bytes;
        }
        Layout {
            regions,
            total: base,
            line_size: cfg.line_size,
            page_size: page,
        }
    }

    /// Sum of paper-scale region sizes (should track `paper_footprint`).
    pub fn regions_paper_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.paper_bytes).sum()
    }

    /// Effective CTA index used for data affinity in `kernel`.
    ///
    /// With [`WorkloadSpec::remap_ctas_between_kernels`] set, the mapping
    /// rotates through a small cycle of shifts, modelling multigrid/AMR
    /// V-cycles: each level re-partitions the grid differently, but the
    /// same partitionings recur every cycle, so data written by one GPU is
    /// read by another *and* the remote working set repeats across kernels
    /// (the inter-kernel locality CARVE-HWC exploits and CARVE-SWC
    /// destroys).
    pub fn affinity_cta(&self, kernel: usize, cta: usize) -> usize {
        if self.remap_ctas_between_kernels {
            let ctas = self.shape.ctas.max(1);
            let shift = ((kernel % 3) * 7919) % ctas;
            (cta + shift) % ctas
        } else {
            cta
        }
    }

    /// Creates the deterministic instruction stream for one warp in one
    /// kernel launch.
    ///
    /// # Panics
    ///
    /// Panics if `cta` or `warp` is outside the kernel shape, or the spec
    /// has no regions.
    pub fn warp_gen(
        &self,
        cfg: &ScaledConfig,
        kernel: usize,
        cta: usize,
        warp: usize,
    ) -> crate::gen::WarpGen {
        crate::gen::WarpGen::new(self, cfg, kernel, cta, warp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn layout_is_page_aligned_and_disjoint() {
        let cfg = ScaledConfig::default();
        for spec in workloads::all() {
            let layout = spec.layout(&cfg);
            let mut expected_base = 0;
            for r in layout.regions() {
                assert_eq!(r.base % cfg.page_size, 0, "{}", spec.name);
                assert_eq!(r.bytes % cfg.page_size, 0, "{}", spec.name);
                assert!(r.bytes >= cfg.page_size);
                assert_eq!(r.base, expected_base);
                expected_base += r.bytes;
            }
            assert_eq!(layout.total_bytes(), expected_base);
        }
    }

    #[test]
    fn region_of_finds_correct_region() {
        let cfg = ScaledConfig::default();
        let spec = workloads::by_name("XSBench").unwrap();
        let layout = spec.layout(&cfg);
        for (i, r) in layout.regions().iter().enumerate() {
            assert_eq!(layout.region_of(r.base), Some(i));
            assert_eq!(layout.region_of(r.base + r.bytes - 1), Some(i));
        }
        assert_eq!(layout.region_of(layout.total_bytes()), None);
    }

    #[test]
    fn affinity_identity_without_remap() {
        let spec = workloads::by_name("stream-triad").unwrap();
        assert!(!spec.remap_ctas_between_kernels);
        assert_eq!(spec.affinity_cta(3, 17), 17);
    }

    #[test]
    fn affinity_rotates_with_remap() {
        let spec = workloads::by_name("HPGMG").unwrap();
        assert!(spec.remap_ctas_between_kernels);
        let k0 = spec.affinity_cta(0, 5);
        let k1 = spec.affinity_cta(1, 5);
        assert_ne!(k0, k1);
        assert!(k1 < spec.shape.ctas);
    }

    #[test]
    fn total_instrs_multiplies_shape() {
        let shape = KernelShape {
            kernels: 2,
            ctas: 3,
            warps_per_cta: 4,
            instrs_per_warp: 5,
        };
        assert_eq!(shape.total_instrs(), 120);
    }

    #[test]
    fn suite_labels() {
        assert_eq!(Suite::Hpc.label(), "HPC");
        assert_eq!(Suite::Ml.label(), "ML");
        assert_eq!(Suite::Other.label(), "Other");
    }
}
