//! `carve-bench` — first-party performance harness for the hot-path
//! datapath.
//!
//! ```text
//! carve-bench hotpath [--quick] [--reps N] [--out PATH] [--measure-only]
//!                     [--merge PATH]... [--baseline PATH]...
//!                     [--skip-components]
//! carve-bench check <json> [--baseline <json>] [--max-regress F]
//! ```
//!
//! `hotpath` runs the fig02 campaign grid (20 Table II workloads × the
//! five fig02 designs) with telemetry off and reports end-to-end
//! throughput in simulated megacycles per wall-clock second (Mcyc/s),
//! plus per-component micro-benchmarks (Mops/s) of every hot lookup
//! structure. Results land in `BENCH_hotpath.json`.
//!
//! A/B methodology: build the harness at the baseline commit, copy the
//! binary aside, then alternate `--reps 1 --measure-only` invocations of
//! the old and new binaries (interleaving absorbs machine drift). Feed
//! the old binary's measure files back via `--baseline` (and this
//! binary's via `--merge`) to produce the final report with
//! `speedup_vs_baseline`.
//!
//! `check` validates a `BENCH_hotpath.json` schema and, given a committed
//! baseline, fails when grid throughput regressed more than
//! `--max-regress` (default 0.25) — the CI `perf-smoke` gate.

use std::hint::black_box;
use std::time::Instant;

use carve::directory::Directory;
use carve::imst::Imst;
use carve_cache::mshr::MshrFile;
use carve_gpu::Tlb;
use carve_runtime::page_table::{PageTable, PlacementPolicy};
use carve_system::{Design, SimConfig};
use experiments::{par, Campaign};
use sim_core::Cycle;

/// The fig02 design columns (ideal bound + three software mechanisms +
/// full CARVE).
const FIG02_DESIGNS: [Design; 5] = [
    Design::Ideal,
    Design::NumaGpu,
    Design::NumaGpuMigrate,
    Design::NumaGpuRepl,
    Design::CarveHwc,
];

struct HotpathArgs {
    quick: bool,
    reps: usize,
    out: String,
    measure_only: bool,
    merge: Vec<String>,
    baseline: Vec<String>,
    skip_components: bool,
}

#[derive(Debug, Clone, Copy)]
struct Rep {
    wall_seconds: f64,
    total_cycles: u64,
    mcyc_per_s: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("hotpath") => hotpath(&args[1..]),
        Some("check") => check(&args[1..]),
        _ => {
            eprintln!(
                "usage: carve-bench hotpath [--quick] [--reps N] [--out PATH] \
                 [--measure-only] [--merge PATH]... [--baseline PATH]... \
                 [--skip-components]\n       carve-bench check <json> \
                 [--baseline <json>] [--max-regress F]"
            );
            2
        }
    };
    std::process::exit(code);
}

fn parse_hotpath_args(args: &[String]) -> Result<HotpathArgs, String> {
    let mut out = HotpathArgs {
        quick: false,
        reps: 3,
        out: "BENCH_hotpath.json".into(),
        measure_only: false,
        merge: Vec::new(),
        baseline: Vec::new(),
        skip_components: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--quick" => out.quick = true,
            "--measure-only" => out.measure_only = true,
            "--skip-components" => out.skip_components = true,
            "--reps" => {
                out.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?
            }
            "--out" => out.out = value("--out")?,
            "--merge" => out.merge.push(value("--merge")?),
            "--baseline" => out.baseline.push(value("--baseline")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if out.reps == 0 && out.merge.is_empty() {
        return Err("--reps 0 needs --merge files".into());
    }
    Ok(out)
}

fn hotpath(raw: &[String]) -> i32 {
    let args = match parse_hotpath_args(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("carve-bench: {e}");
            return 2;
        }
    };
    if args.quick {
        std::env::set_var("CARVE_QUICK", "1");
    }
    // Telemetry must stay off for throughput numbers; the per-point
    // configs also pin it off below, this guards Campaign defaults.
    std::env::remove_var("CARVE_TELEMETRY_INTERVAL");

    let mut reps: Vec<Rep> = Vec::new();
    for path in &args.merge {
        match read_measure_reps(path) {
            Ok(mut r) => reps.append(&mut r),
            Err(e) => {
                eprintln!("carve-bench: --merge {path}: {e}");
                return 1;
            }
        }
    }
    for rep in 0..args.reps {
        let r = run_grid_once();
        eprintln!(
            "rep {}/{}: {} Mcyc in {:.2}s = {:.2} Mcyc/s",
            rep + 1,
            args.reps,
            r.total_cycles / 1_000_000,
            r.wall_seconds,
            r.mcyc_per_s
        );
        reps.push(r);
    }
    let grid_mcyc = median(reps.iter().map(|r| r.mcyc_per_s));

    if args.measure_only {
        if let Err(e) = write_measure_json(&args.out, args.quick, &reps) {
            eprintln!("carve-bench: write {}: {e}", args.out);
            return 1;
        }
        println!("{}", args.out);
        return 0;
    }

    let components = if args.skip_components {
        Vec::new()
    } else {
        run_component_benches(args.quick)
    };

    let mut baseline_reps: Vec<Rep> = Vec::new();
    for path in &args.baseline {
        match read_measure_reps(path) {
            Ok(mut r) => baseline_reps.append(&mut r),
            Err(e) => {
                eprintln!("carve-bench: --baseline {path}: {e}");
                return 1;
            }
        }
    }
    let baseline_mcyc =
        (!baseline_reps.is_empty()).then(|| median(baseline_reps.iter().map(|r| r.mcyc_per_s)));

    if let Err(e) = write_hotpath_json(
        &args.out,
        args.quick,
        &reps,
        grid_mcyc,
        &components,
        &baseline_reps,
        baseline_mcyc,
    ) {
        eprintln!("carve-bench: write {}: {e}", args.out);
        return 1;
    }
    println!("grid: {grid_mcyc:.2} Mcyc/s over {} rep(s)", reps.len());
    for (name, mops) in &components {
        println!("component {name}: {mops:.2} Mops/s");
    }
    if let Some(base) = baseline_mcyc {
        println!(
            "baseline: {base:.2} Mcyc/s -> speedup {:.3}x",
            grid_mcyc / base
        );
    }
    println!("{}", args.out);
    0
}

/// One full pass over the fig02 grid with a fresh (memoization-free)
/// campaign; returns simulated-cycles-per-wall-second.
fn run_grid_once() -> Rep {
    let mut c = Campaign::new();
    let mut points: Vec<(carve_trace::WorkloadSpec, SimConfig)> = Vec::new();
    for spec in c.specs() {
        for design in FIG02_DESIGNS {
            let mut sim = SimConfig::with_cfg(design, c.base_cfg());
            sim.telemetry_interval = Some(0);
            points.push((spec.clone(), sim));
        }
    }
    let started = Instant::now();
    let results = c.run_parallel(&points);
    let wall_seconds = started.elapsed().as_secs_f64();
    let total_cycles: u64 = results.iter().map(|r| r.cycles).sum();
    Rep {
        wall_seconds,
        total_cycles,
        mcyc_per_s: total_cycles as f64 / 1e6 / wall_seconds,
    }
}

/// Times `op` (a batch of `batch_ops` operations) until `min_seconds` of
/// samples accumulate; returns Mops/s.
fn time_mops<F: FnMut()>(batch_ops: u64, min_seconds: f64, mut op: F) -> f64 {
    // Warm-up batch (fills tables, faults pages).
    op();
    let mut ops = 0u64;
    let started = Instant::now();
    loop {
        op();
        ops += batch_ops;
        let s = started.elapsed().as_secs_f64();
        if s >= min_seconds {
            return ops as f64 / 1e6 / s;
        }
    }
}

/// Micro-benchmarks for each hot lookup structure, on deterministic
/// access patterns shaped like the simulator's (line-granular addresses,
/// mixed hit/miss, bounded working sets).
fn run_component_benches(quick: bool) -> Vec<(&'static str, f64)> {
    let min_s = if quick { 0.05 } else { 0.25 };
    let mut out = Vec::new();

    // MSHR: primary + secondary + complete over a rotating line window.
    let mut mshr: MshrFile<u32> = MshrFile::new(256, 32);
    out.push((
        "mshr",
        time_mops(3 * 1024, min_s, || {
            for i in 0u64..1024 {
                let line = (i * 128) & 0x3_FFFF;
                black_box(mshr.allocate(line, 1));
                black_box(mshr.allocate(line, 2));
            }
            for i in 0u64..1024 {
                let line = (i * 128) & 0x3_FFFF;
                black_box(mshr.complete(line));
            }
        }),
    ));

    // TLB: working set 2x capacity so hits and FIFO evictions both occur.
    let mut tlb = Tlb::new(512);
    out.push((
        "tlb",
        time_mops(4096, min_s, || {
            for i in 0u64..4096 {
                black_box(tlb.lookup(i & 1023));
            }
        }),
    ));

    // Page table: 4 GPUs touching a 4K-page footprint (first-touch then
    // steady-state hits).
    let mut pt = PageTable::new(4, 8192, PlacementPolicy::default());
    out.push((
        "page_table",
        time_mops(4096, min_s, || {
            for i in 0u64..4096 {
                let gpu = (i & 3) as usize;
                let va = (i * 31 % 4096) * 8192;
                black_box(pt.access(gpu, va, i & 7 == 0, Cycle(i)));
            }
        }),
    ));

    // IMST: mixed local/remote read/write over a 64K-line footprint.
    let mut imst = Imst::new(7);
    out.push((
        "imst",
        time_mops(8192, min_s, || {
            for i in 0u64..8192 {
                let line = (i * 73 % 65536) * 128;
                black_box(imst.on_access(line, i & 1 == 0, i & 3 == 0));
            }
        }),
    ));

    // Directory: record sharers then write-invalidate them.
    let mut dir = Directory::new();
    out.push((
        "directory",
        time_mops(3 * 2048, min_s, || {
            for i in 0u64..2048 {
                let line = (i % 16384) * 128;
                dir.record_sharer(line, (i % 4) as usize);
                dir.record_sharer(line, ((i + 1) % 4) as usize);
            }
            for i in 0u64..2048 {
                let line = (i % 16384) * 128;
                black_box(dir.on_write(line, (i % 4) as usize));
            }
        }),
    ));

    out
}

fn median<I: Iterator<Item = f64>>(xs: I) -> f64 {
    let mut v: Vec<f64> = xs.collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN throughput"));
    match v.len() {
        0 => 0.0,
        n if n % 2 == 1 => v[n / 2],
        n => (v[n / 2 - 1] + v[n / 2]) / 2.0,
    }
}

// ---------------------------------------------------------------------
// JSON (hand-rolled — the workspace vendors no serialization crates).

fn write_measure_json(path: &str, quick: bool, reps: &[Rep]) -> std::io::Result<()> {
    use std::io::Write;
    let mut out = std::fs::File::create(path)?;
    writeln!(out, "{{")?;
    writeln!(out, "  \"schema\": \"carve-bench-measure-v1\",")?;
    writeln!(out, "  \"quick\": {quick},")?;
    writeln!(out, "  \"threads\": {},", par::thread_count())?;
    write_reps(&mut out, reps, "  ")?;
    writeln!(out, "}}")?;
    Ok(())
}

fn write_reps<W: std::io::Write>(out: &mut W, reps: &[Rep], indent: &str) -> std::io::Result<()> {
    writeln!(out, "{indent}\"reps\": [")?;
    for (i, r) in reps.iter().enumerate() {
        let comma = if i + 1 == reps.len() { "" } else { "," };
        writeln!(
            out,
            "{indent}  {{\"wall_seconds\": {:.4}, \"total_cycles\": {}, \
             \"mcyc_per_s\": {:.4}}}{comma}",
            r.wall_seconds, r.total_cycles, r.mcyc_per_s
        )?;
    }
    writeln!(out, "{indent}]")
}

#[allow(clippy::too_many_arguments)]
fn write_hotpath_json(
    path: &str,
    quick: bool,
    reps: &[Rep],
    grid_mcyc: f64,
    components: &[(&'static str, f64)],
    baseline_reps: &[Rep],
    baseline_mcyc: Option<f64>,
) -> std::io::Result<()> {
    use std::io::Write;
    let engine = if std::env::var_os("CARVE_STEP").is_some() {
        "step"
    } else {
        "event-skip"
    };
    let mut out = std::fs::File::create(path)?;
    writeln!(out, "{{")?;
    writeln!(out, "  \"schema\": \"carve-bench-hotpath-v1\",")?;
    writeln!(out, "  \"engine\": \"{engine}\",")?;
    writeln!(out, "  \"threads\": {},", par::thread_count())?;
    writeln!(out, "  \"quick\": {quick},")?;
    writeln!(out, "  \"grid_points\": {},", 5 * 20)?;
    writeln!(out, "  \"grid_mcyc_per_s\": {grid_mcyc:.4},")?;
    writeln!(out, "  \"grid\": {{")?;
    write_reps(&mut out, reps, "    ")?;
    writeln!(out, "  }},")?;
    writeln!(out, "  \"components_mops_per_s\": {{")?;
    for (i, (name, mops)) in components.iter().enumerate() {
        let comma = if i + 1 == components.len() { "" } else { "," };
        writeln!(out, "    \"{name}\": {mops:.4}{comma}")?;
    }
    writeln!(out, "  }},")?;
    match baseline_mcyc {
        Some(base) => {
            writeln!(out, "  \"baseline\": {{")?;
            writeln!(out, "    \"grid_mcyc_per_s\": {base:.4},")?;
            write_reps(&mut out, baseline_reps, "    ")?;
            writeln!(out, "  }},")?;
            writeln!(out, "  \"speedup_vs_baseline\": {:.4}", grid_mcyc / base)?;
        }
        None => writeln!(out, "  \"speedup_vs_baseline\": null")?,
    }
    writeln!(out, "}}")?;
    Ok(())
}

/// Pulls every `"mcyc_per_s": <x>` value out of a measure/hotpath JSON's
/// `reps` arrays (minimal parsing; the files are machine-written).
fn read_measure_reps(path: &str) -> Result<Vec<Rep>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    if !text.contains("carve-bench-measure-v1") && !text.contains("carve-bench-hotpath-v1") {
        return Err("not a carve-bench measure/hotpath file".into());
    }
    let mut reps = Vec::new();
    for line in text.lines() {
        let Some(wall) = json_num(line, "\"wall_seconds\":") else {
            continue;
        };
        let cycles = json_num(line, "\"total_cycles\":").unwrap_or(0.0);
        let Some(mcyc) = json_num(line, "\"mcyc_per_s\":") else {
            continue;
        };
        reps.push(Rep {
            wall_seconds: wall,
            total_cycles: cycles as u64,
            mcyc_per_s: mcyc,
        });
    }
    if reps.is_empty() {
        return Err("no reps found".into());
    }
    Ok(reps)
}

/// Extracts the number following `key` in `text`, if present.
fn json_num(text: &str, key: &str) -> Option<f64> {
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

// ---------------------------------------------------------------------
// `check`: CI schema + regression gate.

fn check(args: &[String]) -> i32 {
    let mut target: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut max_regress = 0.25f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline = it.next().cloned(),
            "--max-regress" => {
                max_regress = match it.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("carve-bench: --max-regress needs a number");
                        return 2;
                    }
                }
            }
            other if target.is_none() => target = Some(other.to_string()),
            other => {
                eprintln!("carve-bench: unexpected argument {other}");
                return 2;
            }
        }
    }
    let Some(target) = target else {
        eprintln!("carve-bench: check needs a json file");
        return 2;
    };
    let text = match std::fs::read_to_string(&target) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("carve-bench: read {target}: {e}");
            return 1;
        }
    };
    // Schema validation: every load-bearing field must be present.
    for key in [
        "\"schema\": \"carve-bench-hotpath-v1\"",
        "\"engine\":",
        "\"threads\":",
        "\"quick\":",
        "\"grid_points\":",
        "\"grid_mcyc_per_s\":",
        "\"components_mops_per_s\":",
        "\"speedup_vs_baseline\":",
    ] {
        if !text.contains(key) {
            eprintln!("carve-bench: {target}: schema check failed, missing {key}");
            return 1;
        }
    }
    let Some(got) = json_num(&text, "\"grid_mcyc_per_s\":") else {
        eprintln!("carve-bench: {target}: grid_mcyc_per_s is not a number");
        return 1;
    };
    println!("{target}: schema ok, grid {got:.2} Mcyc/s");
    if let Some(basefile) = baseline {
        let basetext = match std::fs::read_to_string(&basefile) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("carve-bench: read {basefile}: {e}");
                return 1;
            }
        };
        let Some(want) = json_num(&basetext, "\"grid_mcyc_per_s\":") else {
            eprintln!("carve-bench: {basefile}: grid_mcyc_per_s is not a number");
            return 1;
        };
        let floor = want * (1.0 - max_regress);
        if got < floor {
            eprintln!(
                "carve-bench: PERF REGRESSION: {got:.2} Mcyc/s < {floor:.2} \
                 (baseline {want:.2}, tolerance {:.0}%)",
                max_regress * 100.0
            );
            return 1;
        }
        println!(
            "regression gate ok: {got:.2} >= {floor:.2} Mcyc/s \
             (baseline {want:.2}, tolerance {:.0}%)",
            max_regress * 100.0
        );
    }
    0
}
