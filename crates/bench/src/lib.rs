//! Self-contained benchmark harness for the `carve-mgpu` simulator.
//!
//! Wall-clock microbenchmarks of the core structures (`structures`,
//! `dram_noc`, `tracegen`) and end-to-end simulation throughput per system
//! design (`end_to_end`). The *simulated-cycle* experiments that regenerate
//! the paper's tables and figures live in the `experiments` crate instead
//! (`cargo run -p experiments --bin all-figures`), because a host-time
//! benchmark measures wall time, not simulated time.
//!
//! The harness is first-party (no external crates): each benchmark runs an
//! adaptive calibration loop until it has spent a target wall-time budget,
//! then reports nanoseconds per iteration. Invoke via
//! `cargo bench -p carve-bench` — an optional CLI argument filters
//! benchmarks by substring, e.g. `cargo bench -p carve-bench -- sram`.

#![warn(missing_docs)]

use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work. Thin wrapper over [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// Per-benchmark measurement state handed to the closure registered with
/// [`Runner::bench_function`].
pub struct Bencher {
    /// Wall-time budget for the measurement phase.
    budget: Duration,
    /// Filled in by [`Bencher::iter`].
    result: Option<Measurement>,
}

/// The outcome of one benchmark: total iterations and elapsed time.
struct Measurement {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` in an adaptive loop: warm up, then grow the batch size
    /// until the measurement budget is spent, and record ns/iter.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        for _ in 0..8 {
            black_box(f());
        }
        let mut batch: u64 = 16;
        let mut total_iters: u64 = 0;
        let mut total_time = Duration::ZERO;
        while total_time < self.budget {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total_time += start.elapsed();
            total_iters += batch;
            batch = batch.saturating_mul(2).min(1 << 24);
        }
        self.result = Some(Measurement {
            iters: total_iters,
            elapsed: total_time,
        });
    }
}

/// A named collection of benchmarks sharing a `group/` prefix in output.
pub struct Group<'a> {
    runner: &'a mut Runner,
    name: String,
    budget: Duration,
}

impl Group<'_> {
    /// Lowers the measurement budget for expensive benchmarks; kept for
    /// parity with the criterion-style API the benches were written
    /// against (a smaller "sample size" maps to a smaller time budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if n <= 10 {
            self.budget = Duration::from_millis(200);
        }
        self
    }

    /// Registers and immediately runs one benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let budget = self.budget;
        self.runner.run_one(&full, budget, f);
        self
    }

    /// Ends the group. No-op; groups flush as they run.
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver: parses the CLI filter and runs benchmarks,
/// printing one `name ... ns/iter` line each.
pub struct Runner {
    filter: Option<String>,
}

impl Runner {
    /// Builds a runner from `std::env::args`; the first non-flag argument
    /// is a substring filter on benchmark names. The `--bench` flag cargo
    /// passes is ignored.
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Runner { filter }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group {
            name: name.to_string(),
            runner: self,
            budget: Duration::from_millis(50),
        }
    }

    /// Registers and immediately runs one ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, Duration::from_millis(50), f);
        self
    }

    fn run_one(&mut self, full_name: &str, budget: Duration, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            budget,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(m) if m.iters > 0 => {
                let ns = m.elapsed.as_nanos() as f64 / m.iters as f64;
                println!(
                    "bench {full_name:<44} {ns:>12.1} ns/iter ({} iters)",
                    m.iters
                );
            }
            _ => println!("bench {full_name:<44} (no measurement)"),
        }
    }
}

/// Runs a list of registration functions under a fresh [`Runner`]; the
/// entry point every bench binary calls from `main`.
pub fn run_benches(benches: &[fn(&mut Runner)]) {
    let mut r = Runner::from_args();
    for bench in benches {
        bench(&mut r);
    }
}
