//! Criterion benchmark harness for the `carve-mgpu` simulator.
//!
//! Wall-clock microbenchmarks of the core structures (`structures`,
//! `dram_noc`, `tracegen`) and end-to-end simulation throughput per system
//! design (`end_to_end`). The *simulated-cycle* experiments that regenerate
//! the paper's tables and figures live in the `experiments` crate instead
//! (`cargo run -p experiments --bin all-figures`), because criterion
//! measures host time, not simulated time.

#![warn(missing_docs)]
