//! Warp-stream generation throughput for each workload archetype.
//!
//! Every simulated instruction flows through `WarpGen::next_op`, so its
//! cost bounds overall simulation speed.

use carve_bench::{black_box, run_benches, Runner};
use carve_trace::workloads;
use sim_core::ScaledConfig;

fn bench_tracegen(c: &mut Runner) {
    let cfg = ScaledConfig::default();
    let mut g = c.benchmark_group("tracegen");
    for name in [
        "stream-triad", // sequential private
        "Lulesh",       // stencil halo
        "SSSP",         // zipf graph
        "XSBench",      // zipf table
        "RandAccess",   // uniform random
    ] {
        let spec = workloads::by_name(name).expect("known workload");
        g.bench_function(name, |b| {
            let mut gen = spec.warp_gen(&cfg, 0, 0, 0);
            b.iter(|| match gen.next_op() {
                Some(op) => black_box(op),
                None => {
                    gen = spec.warp_gen(&cfg, 0, 0, 0);
                    black_box(carve_trace::Op::Compute(0))
                }
            });
        });
    }
    g.finish();
}

fn bench_profile(c: &mut Runner) {
    use carve_runtime::sharing::SharingProfile;
    use sim_core::rng::Stream;
    c.bench_function("sharing_profile_record", |b| {
        let mut p = SharingProfile::new(8192, 128);
        let mut rng = Stream::from_seed(5);
        b.iter(|| {
            let gpu = (rng.next_u64() % 4) as usize;
            let va = rng.gen_range(0, 1 << 22) * 128;
            p.record(gpu, va, rng.gen_bool(0.2));
        });
    });
}

fn main() {
    run_benches(&[bench_tracegen, bench_profile]);
}
