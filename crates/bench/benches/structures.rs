//! Microbenchmarks of the core cache/coherence structures on the hot path
//! of every simulated cycle.

use carve::{HitPredictor, Imst, Rdc, RdcConfig};
use carve_bench::{black_box, run_benches, Runner};
use carve_cache::alloy::AlloyCache;
use carve_cache::mshr::MshrFile;
use carve_cache::sram::{AccessKind, SetAssocCache};
use sim_core::rng::Stream;

fn bench_sram(c: &mut Runner) {
    let mut g = c.benchmark_group("sram");
    g.bench_function("probe_hit", |b| {
        let mut cache = SetAssocCache::new(32 * 1024, 16, 128);
        cache.fill(0x1000, false);
        b.iter(|| black_box(cache.probe(black_box(0x1000), AccessKind::Read)));
    });
    g.bench_function("probe_miss", |b| {
        let mut cache = SetAssocCache::new(32 * 1024, 16, 128);
        b.iter(|| black_box(cache.probe(black_box(0xDEAD00), AccessKind::Read)));
    });
    g.bench_function("fill_evict_stream", |b| {
        let mut cache = SetAssocCache::new(32 * 1024, 16, 128);
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(128);
            black_box(cache.fill(addr, false))
        });
    });
    g.finish();
}

fn bench_alloy_rdc(c: &mut Runner) {
    let mut g = c.benchmark_group("rdc");
    g.bench_function("alloy_probe", |b| {
        let mut a = AlloyCache::new(8 << 20, 128);
        a.insert(0x8000, 0);
        b.iter(|| black_box(a.probe(black_box(0x8000), 0)));
    });
    g.bench_function("rdc_probe_insert_mix", |b| {
        let mut rdc = Rdc::new(RdcConfig::new(8 << 20, 128));
        let mut rng = Stream::from_seed(7);
        b.iter(|| {
            let addr = rng.gen_range(0, 1 << 24) * 128;
            if !rdc.probe(addr) {
                rdc.insert(addr);
            }
        });
    });
    g.bench_function("epoch_flush", |b| {
        let mut rdc = Rdc::new(RdcConfig::new(1 << 20, 128));
        b.iter(|| black_box(rdc.kernel_boundary_flush()));
    });
    g.finish();
}

fn bench_coherence(c: &mut Runner) {
    let mut g = c.benchmark_group("coherence");
    g.bench_function("imst_private_write", |b| {
        let mut imst = Imst::new(1);
        imst.on_access(0x80, true, false);
        b.iter(|| black_box(imst.on_access(black_box(0x80), true, true)));
    });
    g.bench_function("imst_shared_write_broadcast", |b| {
        let mut imst = Imst::with_downgrade(1, 0.0);
        imst.on_access(0x80, false, false);
        b.iter(|| black_box(imst.on_access(black_box(0x80), true, true)));
    });
    g.bench_function("hit_predictor_predict_update", |b| {
        let mut p = HitPredictor::new(4096);
        let mut rng = Stream::from_seed(3);
        b.iter(|| {
            let addr = rng.gen_range(0, 1 << 20) * 128;
            let pred = p.predict(addr);
            p.update(addr, pred);
        });
    });
    g.finish();
}

fn bench_mshr(c: &mut Runner) {
    c.bench_function("mshr_allocate_complete", |b| {
        let mut m: MshrFile<u32> = MshrFile::new(256, 32);
        b.iter(|| {
            m.allocate(0x80, 1);
            m.allocate(0x80, 2);
            black_box(m.complete(0x80))
        });
    });
}

fn main() {
    run_benches(&[bench_sram, bench_alloy_rdc, bench_coherence, bench_mshr]);
}
