//! End-to-end simulation throughput per system design.
//!
//! Measures host wall-time per full (shrunken) workload simulation — the
//! cost of regenerating one data point of the paper's figures. The
//! simulated-cycle results themselves come from
//! `cargo run -p experiments --bin all-figures`.

use carve_bench::{black_box, run_benches, Runner};
use carve_system::{run, workloads, Design, ScaledConfig, SimConfig};
use carve_trace::WorkloadSpec;

fn tiny(name: &str) -> WorkloadSpec {
    let mut spec = workloads::by_name(name).expect("known workload");
    spec.shape.kernels = 2;
    spec.shape.ctas = 16;
    spec.shape.instrs_per_warp = 40;
    spec
}

fn tiny_sim(design: Design) -> SimConfig {
    let cfg = ScaledConfig {
        sms_per_gpu: 2,
        warps_per_sm: 8,
        ..ScaledConfig::default()
    };
    SimConfig::with_cfg(design, cfg)
}

fn bench_designs(c: &mut Runner) {
    let spec = tiny("Lulesh");
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for design in [
        Design::SingleGpu,
        Design::NumaGpu,
        Design::NumaGpuRepl,
        Design::Ideal,
        Design::CarveHwc,
    ] {
        g.bench_function(design.label(), |b| {
            let sim = tiny_sim(design);
            b.iter(|| black_box(run(&spec, &sim)));
        });
    }
    g.finish();
}

fn bench_profiling(c: &mut Runner) {
    use carve_system::profile_workload;
    let spec = tiny("Lulesh");
    let cfg = ScaledConfig::default();
    let mut g = c.benchmark_group("profiling");
    g.sample_size(10);
    g.bench_function("profile_workload", |b| {
        b.iter(|| black_box(profile_workload(&spec, &cfg, 4)));
    });
    g.finish();
}

fn main() {
    run_benches(&[bench_designs, bench_profiling]);
}
