//! Throughput benchmarks of the DRAM timing model and the link fabric.

use carve_bench::{black_box, run_benches, Runner};
use carve_dram::{DramConfig, DramModel, FlatMemory};
use carve_noc::{Link, LinkNetwork, NodeId};
use sim_core::rng::Stream;
use sim_core::Cycle;

fn bench_dram(c: &mut Runner) {
    let mut g = c.benchmark_group("dram");
    g.bench_function("saturated_tick", |b| {
        let mut dram = DramModel::new(DramConfig::default());
        let mut rng = Stream::from_seed(1);
        let mut token = 0u64;
        let mut now = 0u64;
        b.iter(|| {
            // Keep the queues pressurized and advance one cycle.
            for _ in 0..2 {
                let addr = rng.gen_range(0, 1 << 20) * 128;
                if dram.can_accept_read(addr) {
                    token += 1;
                    let _ = dram.try_enqueue_read(token, addr, Cycle(now));
                }
            }
            now += 1;
            black_box(dram.tick(Cycle(now)))
        });
    });
    g.bench_function("idle_tick", |b| {
        let mut dram = DramModel::new(DramConfig::default());
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            black_box(dram.tick(Cycle(now)))
        });
    });
    g.bench_function("flat_memory_enqueue_tick", |b| {
        let mut flat = FlatMemory::new(250, 128.0, 128);
        let mut token = 0u64;
        let mut now = 0u64;
        b.iter(|| {
            token += 1;
            flat.enqueue(token, false, Cycle(now));
            now += 1;
            black_box(flat.tick(Cycle(now)))
        });
    });
    g.finish();
}

fn bench_noc(c: &mut Runner) {
    let mut g = c.benchmark_group("noc");
    g.bench_function("link_send_tick", |b| {
        let mut link = Link::new(8.0, 200).expect("positive bandwidth");
        let mut token = 0u64;
        let mut now = 0u64;
        b.iter(|| {
            token += 1;
            link.send(token, 160, Cycle(now));
            now += 30;
            black_box(link.tick(Cycle(now)))
        });
    });
    g.bench_function("network_tick_4gpu", |b| {
        let mut net = LinkNetwork::new(4, 8.0, 200, 4.0, 500).expect("positive bandwidth");
        let mut token = 0u64;
        let mut now = 0u64;
        b.iter(|| {
            token += 1;
            net.send(NodeId::Gpu(0), NodeId::Gpu(1), token, 160, Cycle(now));
            now += 25;
            black_box(net.tick(Cycle(now)))
        });
    });
    g.finish();
}

fn main() {
    run_benches(&[bench_dram, bench_noc]);
}
