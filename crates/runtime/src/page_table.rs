//! First-touch page placement, migration, replication and UM spill.
//!
//! The [`PageTable`] is the software runtime's view of memory. Every
//! simulated memory access consults it to resolve the *effective home* of
//! the page: the local GPU (first-touch private data or a replica), a
//! remote GPU, or system memory behind the CPU link (UM spill). The
//! optional policies layered on first-touch are exactly the software
//! mechanisms the paper combines and finds insufficient:
//!
//! * **page migration** — a page repeatedly accessed from one remote GPU is
//!   moved there (paying a page transfer and a stall); shared pages
//!   ping-pong, which is why the paper measures a 49% slowdown,
//! * **read-only page replication** — profile-identified read-only shared
//!   pages get a local copy on every reader (the software can not afford to
//!   collapse writable replicas, so read-write pages are excluded),
//! * **ideal replication** — the paper's upper bound: *all* shared pages
//!   are replicated with zero coherence cost,
//! * **UM spill** — a designated cold-page set lives in system memory
//!   (Table V(b)'s capacity-loss experiment).

use crate::sharing::GpuMask;
use carve_noc::NodeId;
use sim_core::fast::FastSet;
use sim_core::Cycle;

/// Pages per leaf of the two-level entry array. Workload layouts place
/// regions contiguously from VA 0 (see `carve_trace::spec`), so page
/// numbers are dense and direct indexing beats hashing; leaves keep the
/// table cheap for sparse tails (one 40 KiB leaf covers 8 MiB of VA at
/// the default 8 KiB pages).
const LEAF_PAGES: usize = 1024;

type Leaf = [Option<Entry>; LEAF_PAGES];

/// Out-of-line so the ~56 KiB array literal never lands in a hot caller's
/// stack frame (a frame that size costs a stack probe on every call).
#[cold]
#[inline(never)]
fn new_leaf() -> Box<Leaf> {
    Box::new([None; LEAF_PAGES])
}

/// Software page-replication flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replication {
    /// No replication (plain NUMA-GPU).
    #[default]
    None,
    /// Replicate profile-identified read-only shared pages.
    ReadOnlyShared,
    /// Replicate every shared page with zero cost: the ideal NUMA-GPU
    /// upper bound of Figures 2, 9, 11 and 13.
    AllShared,
}

/// The placement policy knobs of one simulated configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementPolicy {
    /// Replication flavour.
    pub replication: Replication,
    /// Enables reactive page migration.
    pub migration: bool,
    /// Remote accesses to a page before it migrates.
    pub migration_threshold: u32,
    /// Minimum cycles between successive migrations of the same page
    /// (rate limiting, as in Carrefour-style runtimes). Without it, pages
    /// hot on several GPUs ping-pong on every handful of accesses and the
    /// system live-locks into migration traffic.
    pub migration_cooldown: u64,
}

impl Default for PlacementPolicy {
    fn default() -> PlacementPolicy {
        PlacementPolicy {
            replication: Replication::None,
            migration: false,
            migration_threshold: 64,
            migration_cooldown: 5_000,
        }
    }
}

/// A page-migration decision, to be costed by the system model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMigration {
    /// Page number (VA / page size).
    pub page: u64,
    /// Previous home.
    pub from: NodeId,
    /// New home GPU.
    pub to: usize,
}

/// The result of resolving one access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessOutcome {
    /// Effective home for this access (after replication).
    pub home: NodeId,
    /// Whether the access must leave the requesting GPU.
    pub remote: bool,
    /// A migration triggered by this access, if any.
    pub migration: Option<PageMigration>,
    /// If the page is mid-migration, the cycle it becomes usable.
    pub blocked_until: Option<Cycle>,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    home: NodeId,
    readers: GpuMask,
    writers: GpuMask,
    remote_streak: u32,
    last_remote_gpu: u8,
    blocked_until: u64,
    last_migration: u64,
}

/// Counter snapshot of page-table activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageTableStats {
    /// Pages allocated by first touch on a GPU.
    pub first_touches: u64,
    /// Pages resolved to system memory (UM spill).
    pub cpu_homed_pages: u64,
    /// Migrations performed.
    pub migrations: u64,
    /// Accesses serviced from a replica.
    pub replica_hits: u64,
    /// Writes that hit a page marked replicated (RO replication would have
    /// to collapse here; counted to verify the profile kept these at zero).
    pub replica_write_violations: u64,
}

/// The runtime page table.
#[derive(Debug)]
pub struct PageTable {
    num_gpus: usize,
    page_size: u64,
    policy: PlacementPolicy,
    leaves: Vec<Option<Box<Leaf>>>,
    touched: usize,
    spill: FastSet,
    replicated: FastSet,
    pages_per_gpu: Vec<u64>,
    stats: PageTableStats,
}

impl PageTable {
    /// Creates an empty table for `num_gpus` GPUs with `page_size` pages.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is 0 or > 64 or `page_size` is 0.
    pub fn new(num_gpus: usize, page_size: u64, policy: PlacementPolicy) -> PageTable {
        assert!(num_gpus > 0 && num_gpus <= 64);
        assert!(page_size > 0);
        PageTable {
            num_gpus,
            page_size,
            policy,
            leaves: Vec::new(),
            touched: 0,
            spill: FastSet::new(),
            replicated: FastSet::new(),
            pages_per_gpu: vec![0; num_gpus],
            stats: PageTableStats::default(),
        }
    }

    #[inline]
    fn entry(&self, page: u64) -> Option<&Entry> {
        let page = page as usize;
        self.leaves.get(page / LEAF_PAGES)?.as_ref()?[page % LEAF_PAGES].as_ref()
    }

    #[inline]
    fn entry_mut(&mut self, page: u64) -> Option<&mut Entry> {
        let page = page as usize;
        self.leaves.get_mut(page / LEAF_PAGES)?.as_mut()?[page % LEAF_PAGES].as_mut()
    }

    /// Designates pages that live in system memory (UM cold-page spill).
    /// Must be called before the pages are first touched.
    pub fn set_spill_pages<I: IntoIterator<Item = u64>>(&mut self, pages: I) {
        for p in pages {
            self.spill.insert(p);
        }
    }

    /// Designates pages serviced from local replicas, per the configured
    /// [`Replication`] flavour. The caller derives the set from a
    /// [`crate::sharing::SharingProfile`].
    pub fn set_replicated_pages<I: IntoIterator<Item = u64>>(&mut self, pages: I) {
        for p in pages {
            self.replicated.insert(p);
        }
    }

    /// Resolves one access from `gpu` to `va` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is out of range.
    pub fn access(&mut self, gpu: usize, va: u64, is_write: bool, now: Cycle) -> AccessOutcome {
        assert!(gpu < self.num_gpus, "gpu {gpu} out of range");
        let page = va / self.page_size;
        let (li, off) = (page as usize / LEAF_PAGES, page as usize % LEAF_PAGES);
        if li >= self.leaves.len() {
            self.leaves.resize_with(li + 1, || None);
        }
        let leaf = self.leaves[li].get_or_insert_with(new_leaf);
        if leaf[off].is_none() {
            // First touch.
            let home = if self.spill.contains(page) {
                self.stats.cpu_homed_pages += 1;
                NodeId::Cpu
            } else {
                self.stats.first_touches += 1;
                self.pages_per_gpu[gpu] += 1;
                NodeId::Gpu(gpu)
            };
            leaf[off] = Some(Entry {
                home,
                readers: GpuMask::default(),
                writers: GpuMask::default(),
                remote_streak: 0,
                last_remote_gpu: 0,
                blocked_until: 0,
                last_migration: 0,
            });
            self.touched += 1;
        }
        let entry = leaf[off].as_mut().expect("entry materialized");
        if is_write {
            entry.writers.set(gpu);
        } else {
            entry.readers.set(gpu);
        }

        // Replica service path.
        if self.replicated.contains(page) {
            match self.policy.replication {
                Replication::AllShared => {
                    self.stats.replica_hits += 1;
                    return AccessOutcome {
                        home: NodeId::Gpu(gpu),
                        remote: false,
                        migration: None,
                        blocked_until: None,
                    };
                }
                Replication::ReadOnlyShared => {
                    if is_write {
                        // The profile should have excluded writable pages;
                        // fall through to the true home and count it.
                        self.stats.replica_write_violations += 1;
                    } else {
                        self.stats.replica_hits += 1;
                        return AccessOutcome {
                            home: NodeId::Gpu(gpu),
                            remote: false,
                            migration: None,
                            blocked_until: None,
                        };
                    }
                }
                Replication::None => {}
            }
        }

        let home = entry.home;
        let remote = home != NodeId::Gpu(gpu);
        let blocked_until = (entry.blocked_until > now.0).then_some(Cycle(entry.blocked_until));

        // Reactive migration (GPU homes only).
        let mut migration = None;
        if self.policy.migration && remote {
            if let NodeId::Gpu(_) = home {
                if entry.last_remote_gpu == gpu as u8 {
                    entry.remote_streak += 1;
                } else {
                    entry.last_remote_gpu = gpu as u8;
                    entry.remote_streak = 1;
                }
                let cooled = now.0 >= entry.last_migration + self.policy.migration_cooldown
                    || entry.last_migration == 0;
                if entry.remote_streak >= self.policy.migration_threshold && cooled {
                    migration = Some(PageMigration {
                        page,
                        from: home,
                        to: gpu,
                    });
                    if let NodeId::Gpu(old) = home {
                        self.pages_per_gpu[old] = self.pages_per_gpu[old].saturating_sub(1);
                    }
                    self.pages_per_gpu[gpu] += 1;
                    entry.home = NodeId::Gpu(gpu);
                    entry.remote_streak = 0;
                    entry.last_migration = now.0.max(1);
                    self.stats.migrations += 1;
                }
            }
        }

        AccessOutcome {
            home,
            remote,
            migration,
            blocked_until,
        }
    }

    /// Marks `page` unusable until `until` (migration in progress). The
    /// system model calls this after costing a migration transfer.
    pub fn block_page_until(&mut self, page: u64, until: Cycle) {
        if let Some(e) = self.entry_mut(page) {
            e.blocked_until = e.blocked_until.max(until.0);
        }
    }

    /// Current home of `page`, if touched.
    pub fn home_of(&self, page: u64) -> Option<NodeId> {
        self.entry(page).map(|e| e.home)
    }

    /// Pages first-touch allocated on each GPU.
    pub fn pages_per_gpu(&self) -> &[u64] {
        &self.pages_per_gpu
    }

    /// Activity counters.
    pub fn stats(&self) -> PageTableStats {
        self.stats
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Number of distinct pages touched.
    pub fn touched_pages(&self) -> usize {
        self.touched
    }

    /// The policy this table enforces.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(policy: PlacementPolicy) -> PageTable {
        PageTable::new(4, 8192, policy)
    }

    #[test]
    fn first_touch_homes_locally() {
        let mut pt = table(PlacementPolicy::default());
        let out = pt.access(1, 0x2000, false, Cycle(0));
        assert_eq!(out.home, NodeId::Gpu(1));
        assert!(!out.remote);
        assert_eq!(pt.home_of(1), Some(NodeId::Gpu(1)));
        assert_eq!(pt.pages_per_gpu(), &[0, 1, 0, 0]);
    }

    #[test]
    fn second_gpu_sees_remote() {
        let mut pt = table(PlacementPolicy::default());
        pt.access(1, 0x2000, false, Cycle(0));
        let out = pt.access(0, 0x2000, false, Cycle(1));
        assert_eq!(out.home, NodeId::Gpu(1));
        assert!(out.remote);
    }

    #[test]
    fn spilled_pages_home_to_cpu() {
        let mut pt = table(PlacementPolicy::default());
        pt.set_spill_pages([1u64]);
        let out = pt.access(0, 0x2000, false, Cycle(0));
        assert_eq!(out.home, NodeId::Cpu);
        assert!(out.remote);
        assert_eq!(pt.stats().cpu_homed_pages, 1);
    }

    #[test]
    fn ro_replication_localizes_reads_only() {
        let mut pt = table(PlacementPolicy {
            replication: Replication::ReadOnlyShared,
            ..Default::default()
        });
        pt.set_replicated_pages([1u64]);
        pt.access(1, 0x2000, false, Cycle(0)); // first touch by GPU 1
        let read = pt.access(0, 0x2000, false, Cycle(1));
        assert!(!read.remote, "replicated read must be local");
        let write = pt.access(0, 0x2000, true, Cycle(2));
        assert!(write.remote, "write bypasses the RO replica");
        assert_eq!(pt.stats().replica_write_violations, 1);
        // Both the first-toucher's read and GPU 0's read count as replica
        // service.
        assert_eq!(pt.stats().replica_hits, 2);
    }

    #[test]
    fn all_shared_replication_localizes_everything() {
        let mut pt = table(PlacementPolicy {
            replication: Replication::AllShared,
            ..Default::default()
        });
        pt.set_replicated_pages([1u64]);
        pt.access(1, 0x2000, true, Cycle(0));
        let w = pt.access(3, 0x2000, true, Cycle(1));
        assert!(!w.remote);
        assert_eq!(w.home, NodeId::Gpu(3));
    }

    #[test]
    fn migration_triggers_after_threshold() {
        let mut pt = table(PlacementPolicy {
            migration: true,
            migration_threshold: 4,
            ..Default::default()
        });
        pt.access(1, 0x2000, false, Cycle(0));
        let mut migrated = None;
        for i in 0..4 {
            let out = pt.access(0, 0x2000, false, Cycle(i + 1));
            if out.migration.is_some() {
                migrated = out.migration;
            }
        }
        let m = migrated.expect("page should migrate after 4 remote accesses");
        assert_eq!(m.from, NodeId::Gpu(1));
        assert_eq!(m.to, 0);
        assert_eq!(pt.home_of(1), Some(NodeId::Gpu(0)));
        assert_eq!(pt.stats().migrations, 1);
        // Subsequent access from GPU 0 is now local.
        assert!(!pt.access(0, 0x2000, false, Cycle(10)).remote);
    }

    #[test]
    fn migration_streak_resets_on_different_gpu() {
        let mut pt = table(PlacementPolicy {
            migration: true,
            migration_threshold: 3,
            ..Default::default()
        });
        pt.access(1, 0x2000, false, Cycle(0));
        pt.access(0, 0x2000, false, Cycle(1));
        pt.access(0, 0x2000, false, Cycle(2));
        pt.access(2, 0x2000, false, Cycle(3)); // breaks GPU 0's streak
        let out = pt.access(0, 0x2000, false, Cycle(4));
        assert!(out.migration.is_none());
        assert_eq!(pt.stats().migrations, 0);
    }

    #[test]
    fn blocked_pages_report_block() {
        let mut pt = table(PlacementPolicy::default());
        pt.access(0, 0x2000, false, Cycle(0));
        pt.block_page_until(1, Cycle(100));
        let out = pt.access(0, 0x2000, false, Cycle(50));
        assert_eq!(out.blocked_until, Some(Cycle(100)));
        let out = pt.access(0, 0x2000, false, Cycle(100));
        assert_eq!(out.blocked_until, None);
    }

    #[test]
    fn migration_ping_pong_on_shared_page() {
        // A page two GPUs fight over migrates repeatedly: the pathology
        // behind the paper's 49% migration slowdown.
        let mut pt = table(PlacementPolicy {
            migration: true,
            migration_threshold: 2,
            migration_cooldown: 0,
            ..Default::default()
        });
        pt.access(0, 0x2000, false, Cycle(0));
        let mut t = 1;
        for _ in 0..4 {
            for g in [1usize, 0] {
                for _ in 0..2 {
                    pt.access(g, 0x2000, false, Cycle(t));
                    t += 1;
                }
            }
        }
        assert!(pt.stats().migrations >= 4, "{:?}", pt.stats());
    }

    #[test]
    fn cooldown_rate_limits_migrations() {
        let mut pt = table(PlacementPolicy {
            migration: true,
            migration_threshold: 2,
            migration_cooldown: 1_000_000,
            ..Default::default()
        });
        pt.access(0, 0x2000, false, Cycle(0));
        let mut t = 1;
        for _ in 0..8 {
            for g in [1usize, 0] {
                for _ in 0..2 {
                    pt.access(g, 0x2000, false, Cycle(t));
                    t += 1;
                }
            }
        }
        // The first migration is free; the cooldown blocks all repeats
        // within the window.
        assert_eq!(pt.stats().migrations, 1, "{:?}", pt.stats());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_gpu_panics() {
        let mut pt = table(PlacementPolicy::default());
        pt.access(4, 0, false, Cycle(0));
    }
}
