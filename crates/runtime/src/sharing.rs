//! Page- and line-granularity sharing classification (Figures 4 and 5).
//!
//! A [`SharingProfile`] observes every memory access of a workload —
//! `(gpu, virtual address, read/write)` — and classifies each page and each
//! cache line as private, read-only shared or read-write shared, exactly
//! as the paper does to produce Figure 4. It also measures the shared
//! memory footprint of Figure 5 and feeds profile-guided software policies
//! (read-only page replication, UM cold-page spill).

use std::collections::HashMap;

use crate::sched::gpu_of_cta;
use carve_trace::{Op, WorkloadSpec};
use sim_core::ScaledConfig;

/// A set of GPUs, as a bitmask (supports up to 64 GPUs, the routed
/// fabric's ceiling — `carve_noc::MAX_GPUS`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct GpuMask(pub u64);

impl GpuMask {
    /// Adds GPU `g` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `g >= 64`.
    #[inline]
    pub fn set(&mut self, g: usize) {
        assert!(g < 64, "GpuMask supports at most 64 GPUs");
        self.0 |= 1 << g;
    }

    /// Whether GPU `g` is in the set.
    #[inline]
    pub fn contains(self, g: usize) -> bool {
        self.0 & (1 << g) != 0
    }

    /// Number of GPUs in the set.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True when no GPU is in the set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Union of two sets.
    #[inline]
    pub fn union(self, other: GpuMask) -> GpuMask {
        GpuMask(self.0 | other.0)
    }
}

/// Sharing class of a page or line (paper Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageClass {
    /// Touched by a single GPU.
    Private,
    /// Touched by multiple GPUs, never written.
    ReadOnlyShared,
    /// Touched by multiple GPUs, written at least once.
    ReadWriteShared,
}

#[derive(Debug, Clone, Copy, Default)]
struct Touch {
    readers: GpuMask,
    writers: GpuMask,
    accesses: u64,
}

impl Touch {
    fn classify(&self) -> PageClass {
        let sharers = self.readers.union(self.writers);
        if sharers.count() <= 1 {
            PageClass::Private
        } else if self.writers.is_empty() {
            PageClass::ReadOnlyShared
        } else {
            PageClass::ReadWriteShared
        }
    }
}

/// Access-count and footprint breakdown for one granularity.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassBreakdown {
    /// Accesses to private pages/lines.
    pub private_accesses: u64,
    /// Accesses to read-only shared pages/lines.
    pub ro_shared_accesses: u64,
    /// Accesses to read-write shared pages/lines.
    pub rw_shared_accesses: u64,
    /// Unique private pages/lines.
    pub private_units: u64,
    /// Unique read-only shared pages/lines.
    pub ro_shared_units: u64,
    /// Unique read-write shared pages/lines.
    pub rw_shared_units: u64,
}

impl ClassBreakdown {
    /// Total accesses observed.
    pub fn total_accesses(&self) -> u64 {
        self.private_accesses + self.ro_shared_accesses + self.rw_shared_accesses
    }

    /// Fractions `(private, ro_shared, rw_shared)` of all accesses.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total_accesses();
        if t == 0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.private_accesses as f64 / t as f64,
            self.ro_shared_accesses as f64 / t as f64,
            self.rw_shared_accesses as f64 / t as f64,
        )
    }

    /// Unique shared units (RO + RW).
    pub fn shared_units(&self) -> u64 {
        self.ro_shared_units + self.rw_shared_units
    }
}

/// Observes accesses and classifies pages and lines.
#[derive(Debug)]
pub struct SharingProfile {
    page_size: u64,
    line_size: u64,
    pages: HashMap<u64, Touch>,
    lines: HashMap<u64, Touch>,
}

impl SharingProfile {
    /// Creates a profile for the given page and line sizes.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new(page_size: u64, line_size: u64) -> SharingProfile {
        assert!(page_size > 0 && line_size > 0);
        SharingProfile {
            page_size,
            line_size,
            pages: HashMap::new(),
            lines: HashMap::new(),
        }
    }

    /// Records one access.
    #[inline]
    pub fn record(&mut self, gpu: usize, va: u64, is_write: bool) {
        let page = self.pages.entry(va / self.page_size).or_default();
        page.accesses += 1;
        if is_write {
            page.writers.set(gpu);
        } else {
            page.readers.set(gpu);
        }
        let line = self.lines.entry(va / self.line_size).or_default();
        line.accesses += 1;
        if is_write {
            line.writers.set(gpu);
        } else {
            line.readers.set(gpu);
        }
    }

    fn breakdown(map: &HashMap<u64, Touch>) -> ClassBreakdown {
        let mut b = ClassBreakdown::default();
        for t in map.values() {
            match t.classify() {
                PageClass::Private => {
                    b.private_accesses += t.accesses;
                    b.private_units += 1;
                }
                PageClass::ReadOnlyShared => {
                    b.ro_shared_accesses += t.accesses;
                    b.ro_shared_units += 1;
                }
                PageClass::ReadWriteShared => {
                    b.rw_shared_accesses += t.accesses;
                    b.rw_shared_units += 1;
                }
            }
        }
        b
    }

    /// Page-granularity breakdown (left bars of Figure 4).
    pub fn page_breakdown(&self) -> ClassBreakdown {
        Self::breakdown(&self.pages)
    }

    /// Line-granularity breakdown (right bars of Figure 4).
    pub fn line_breakdown(&self) -> ClassBreakdown {
        Self::breakdown(&self.lines)
    }

    /// Shared memory footprint in bytes at page granularity (Figure 5):
    /// unique shared pages × page size.
    pub fn shared_footprint_bytes(&self) -> u64 {
        self.page_breakdown().shared_units() * self.page_size
    }

    /// Total touched footprint in bytes at page granularity.
    pub fn touched_footprint_bytes(&self) -> u64 {
        self.pages.len() as u64 * self.page_size
    }

    /// Pages classified read-only shared: the set software replication may
    /// copy to every reader without any coherence obligation.
    pub fn read_only_shared_pages(&self) -> Vec<u64> {
        self.pages
            .iter()
            .filter(|(_, t)| t.classify() == PageClass::ReadOnlyShared)
            .map(|(&p, _)| p)
            .collect()
    }

    /// Pages classified shared (RO or RW): what an *ideal* NUMA-GPU
    /// replicates.
    pub fn shared_pages(&self) -> Vec<u64> {
        self.pages
            .iter()
            .filter(|(_, t)| t.classify() != PageClass::Private)
            .map(|(&p, _)| p)
            .collect()
    }

    /// Line-aligned addresses of lines classified read-write shared: the
    /// lines whose writes require coherence actions (the HWC watch list).
    pub fn rw_shared_line_addrs(&self) -> Vec<u64> {
        self.lines
            .iter()
            .filter(|(_, t)| t.classify() == PageClass::ReadWriteShared)
            .map(|(&l, _)| l * self.line_size)
            .collect()
    }

    /// Class of one page, if it was touched.
    pub fn page_class(&self, page: u64) -> Option<PageClass> {
        self.pages.get(&page).map(Touch::classify)
    }

    /// Number of sharers (reader or writer GPUs) of one page.
    pub fn page_sharers(&self, page: u64) -> u32 {
        self.pages
            .get(&page)
            .map(|t| t.readers.union(t.writers).count())
            .unwrap_or(0)
    }

    /// The coldest fraction `frac` of touched pages by access count
    /// (ties broken by page number for determinism). This is the set a
    /// UM-style runtime would leave in system memory (Table V(b)).
    pub fn coldest_pages(&self, frac: f64) -> Vec<u64> {
        let mut pages: Vec<(u64, u64)> = self.pages.iter().map(|(&p, t)| (t.accesses, p)).collect();
        pages.sort_unstable();
        let n = ((pages.len() as f64) * frac.clamp(0.0, 1.0)).round() as usize;
        pages.into_iter().take(n).map(|(_, p)| p).collect()
    }

    /// Memory-capacity multiplier if every shared page were replicated on
    /// each of its sharer GPUs (the paper reports ~2.4× on average).
    pub fn replication_footprint_multiplier(&self) -> f64 {
        let mut base = 0u64;
        let mut replicated = 0u64;
        for t in self.pages.values() {
            let sharers = t.readers.union(t.writers).count().max(1) as u64;
            base += 1;
            replicated += if t.classify() == PageClass::Private {
                1
            } else {
                sharers
            };
        }
        if base == 0 {
            1.0
        } else {
            replicated as f64 / base as f64
        }
    }
}

/// Functionally replays the full workload (no timing) through a sharing
/// profile, using NUMA-GPU's contiguous CTA batches on `num_gpus` GPUs.
///
/// This is how Figures 4 and 5 are produced, and how the profile-guided
/// software policies (replication, UM spill) obtain their page sets — the
/// stand-in for the profiling step a real runtime performs with page-fault
/// or performance-counter telemetry.
pub fn profile_workload(
    spec: &WorkloadSpec,
    cfg: &ScaledConfig,
    num_gpus: usize,
) -> SharingProfile {
    let mut profile = SharingProfile::new(cfg.page_size, cfg.line_size);
    for kernel in 0..spec.shape.kernels {
        for cta in 0..spec.shape.ctas {
            let gpu = gpu_of_cta(cta, spec.shape.ctas, num_gpus);
            for warp in 0..spec.shape.warps_per_cta {
                let mut gen = spec.warp_gen(cfg, kernel, cta, warp);
                while let Some(op) = gen.next_op() {
                    match op {
                        Op::Compute(_) => {}
                        Op::Load(va) => profile.record(gpu, va, false),
                        Op::Store(va) => profile.record(gpu, va, true),
                    }
                }
            }
        }
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use carve_trace::workloads;

    #[test]
    fn mask_operations() {
        let mut m = GpuMask::default();
        assert!(m.is_empty());
        m.set(0);
        m.set(3);
        assert!(m.contains(0) && m.contains(3) && !m.contains(1));
        assert_eq!(m.count(), 2);
        let mut o = GpuMask::default();
        o.set(1);
        assert_eq!(m.union(o).count(), 3);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn mask_bounds_checked() {
        GpuMask::default().set(64);
    }

    #[test]
    fn single_gpu_touch_is_private() {
        let mut p = SharingProfile::new(8192, 128);
        p.record(0, 0, false);
        p.record(0, 128, true);
        let b = p.page_breakdown();
        assert_eq!(b.private_accesses, 2);
        assert_eq!(b.private_units, 1);
        assert_eq!(p.page_class(0), Some(PageClass::Private));
    }

    #[test]
    fn multi_reader_page_is_ro_shared() {
        let mut p = SharingProfile::new(8192, 128);
        p.record(0, 0, false);
        p.record(1, 256, false);
        assert_eq!(p.page_class(0), Some(PageClass::ReadOnlyShared));
        // Line granularity: each line touched by one GPU => private.
        let lb = p.line_breakdown();
        assert_eq!(lb.private_units, 2);
        assert_eq!(lb.ro_shared_units, 0);
    }

    #[test]
    fn single_write_flips_page_to_rw_shared() {
        let mut p = SharingProfile::new(8192, 128);
        p.record(0, 0, false);
        p.record(1, 256, false);
        p.record(2, 512, true);
        assert_eq!(p.page_class(0), Some(PageClass::ReadWriteShared));
        // The written line itself is private at line granularity:
        // the false-sharing effect the paper highlights.
        let lb = p.line_breakdown();
        assert_eq!(lb.rw_shared_units, 0);
        assert_eq!(lb.private_units, 3);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut p = SharingProfile::new(8192, 128);
        for g in 0..4 {
            for i in 0..100u64 {
                p.record(g, i * 128 * (g as u64 + 1), i % 7 == 0);
            }
        }
        let (pr, ro, rw) = p.page_breakdown().fractions();
        assert!((pr + ro + rw - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shared_footprint_counts_shared_pages_only() {
        let mut p = SharingProfile::new(8192, 128);
        p.record(0, 0, false); // private page 0
        p.record(0, 8192, false); // page 1 shared RO
        p.record(1, 8192 + 128, false);
        assert_eq!(p.shared_footprint_bytes(), 8192);
        assert_eq!(p.touched_footprint_bytes(), 2 * 8192);
    }

    #[test]
    fn coldest_pages_picks_least_accessed() {
        let mut p = SharingProfile::new(8192, 128);
        for _ in 0..10 {
            p.record(0, 0, false); // hot page 0
        }
        p.record(0, 8192, false); // cold page 1
        p.record(0, 16384, false); // cold page 2
        let cold = p.coldest_pages(0.67);
        assert_eq!(cold.len(), 2);
        assert!(cold.contains(&1) && cold.contains(&2));
    }

    #[test]
    fn replication_multiplier_counts_sharers() {
        let mut p = SharingProfile::new(8192, 128);
        // One private page + one page shared by 4 GPUs.
        p.record(0, 0, false);
        for g in 0..4 {
            p.record(g, 8192, false);
        }
        // (1 + 4) / 2 pages = 2.5x
        assert!((p.replication_footprint_multiplier() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn ml_workload_profiles_as_ro_shared_heavy() {
        let cfg = ScaledConfig::default();
        let spec = workloads::by_name("AlexNet").unwrap();
        let p = profile_workload(&spec, &cfg, 4);
        let b = p.page_breakdown();
        let (_, ro, rw) = b.fractions();
        assert!(ro > 0.25, "AlexNet RO-shared fraction too low: {ro}");
        assert!(rw < 0.15, "AlexNet should have almost no RW sharing: {rw}");
    }

    #[test]
    fn streaming_workload_profiles_as_private() {
        let cfg = ScaledConfig::default();
        let spec = workloads::by_name("stream-triad").unwrap();
        let p = profile_workload(&spec, &cfg, 4);
        let (pr, _, _) = p.page_breakdown().fractions();
        assert!(pr > 0.9, "stream-triad should be private-heavy: {pr}");
    }

    #[test]
    fn false_sharing_gap_page_vs_line() {
        // The paper's key Figure 4 insight: RW sharing at page granularity
        // far exceeds RW sharing at line granularity.
        let cfg = ScaledConfig::default();
        let spec = workloads::by_name("Lulesh").unwrap();
        let p = profile_workload(&spec, &cfg, 4);
        let (_, _, rw_page) = p.page_breakdown().fractions();
        let (_, _, rw_line) = p.line_breakdown().fractions();
        assert!(
            rw_page > rw_line * 1.5,
            "page RW {rw_page} should exceed line RW {rw_line}"
        );
    }
}
