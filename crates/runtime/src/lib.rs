//! The GPU driver/runtime software stack of a NUMA-GPU system.
//!
//! This crate models the *software* half of the paper's HW/SW combination:
//!
//! * [`sched`] — NUMA-GPU's distributed CTA scheduling (contiguous CTA
//!   batches per GPU, exploiting inter-CTA locality),
//! * [`page_table`] — first-touch page placement, page migration, software
//!   page replication (read-only or all-shared/ideal), and Unified-Memory
//!   style spilling of cold pages to system memory (Table V(b)),
//! * [`sharing`] — the page- and line-granularity sharing classifier that
//!   reproduces Figures 4 and 5 and drives profile-guided replication.
//!
//! # Example
//!
//! ```
//! use carve_runtime::page_table::{PageTable, PlacementPolicy};
//! use carve_noc::NodeId;
//! use sim_core::Cycle;
//!
//! let mut pt = PageTable::new(4, 8192, PlacementPolicy::default());
//! // First touch by GPU 2 homes the page on GPU 2.
//! let out = pt.access(2, 0x4000, false, Cycle(0));
//! assert_eq!(out.home, NodeId::Gpu(2));
//! assert!(!out.remote);
//! // GPU 0 then accesses the same page remotely.
//! let out = pt.access(0, 0x4000, false, Cycle(1));
//! assert_eq!(out.home, NodeId::Gpu(2));
//! assert!(out.remote);
//! ```

#![warn(missing_docs)]

pub mod page_table;
pub mod sched;
pub mod sharing;

pub use page_table::{AccessOutcome, PageMigration, PageTable, PlacementPolicy, Replication};
pub use sched::gpu_of_cta;
pub use sharing::{GpuMask, PageClass, SharingProfile};

// Re-exported so downstream crates name link nodes consistently.
pub use carve_noc::NodeId;
