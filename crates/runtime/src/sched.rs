//! NUMA-GPU distributed CTA scheduling.
//!
//! NUMA-GPU (Milic et al., MICRO'17) schedules a *contiguous batch* of CTAs
//! to each GPU, because adjacent CTAs exhibit strong spatial and temporal
//! locality. Combined with first-touch page placement, this makes the
//! private slice of each CTA batch land in the local GPU memory.

/// The GPU that runs `cta` when `ctas` CTAs are split into contiguous
/// batches across `num_gpus` GPUs.
///
/// The first `ctas % num_gpus` batches get one extra CTA so every CTA is
/// assigned.
///
/// # Panics
///
/// Panics if `num_gpus` is zero or `cta >= ctas`.
///
/// # Example
///
/// ```
/// use carve_runtime::gpu_of_cta;
/// // 8 CTAs on 4 GPUs: batches of 2.
/// assert_eq!(gpu_of_cta(0, 8, 4), 0);
/// assert_eq!(gpu_of_cta(3, 8, 4), 1);
/// assert_eq!(gpu_of_cta(7, 8, 4), 3);
/// ```
pub fn gpu_of_cta(cta: usize, ctas: usize, num_gpus: usize) -> usize {
    assert!(num_gpus > 0, "need at least one GPU");
    assert!(cta < ctas, "cta {cta} out of range {ctas}");
    let base = ctas / num_gpus;
    let extra = ctas % num_gpus;
    // GPUs [0, extra) own (base + 1) CTAs each.
    let boundary = extra * (base + 1);
    if cta < boundary {
        cta / (base + 1)
    } else {
        match (cta - boundary).checked_div(base) {
            Some(q) => extra + q,
            // More GPUs than CTAs: one CTA per GPU.
            None => cta,
        }
    }
}

/// CTA index range `[start, end)` assigned to `gpu`.
///
/// # Panics
///
/// Panics if `gpu >= num_gpus` or `num_gpus` is zero.
pub fn cta_range_of_gpu(gpu: usize, ctas: usize, num_gpus: usize) -> (usize, usize) {
    assert!(gpu < num_gpus, "gpu {gpu} out of range {num_gpus}");
    let base = ctas / num_gpus;
    let extra = ctas % num_gpus;
    let start = if gpu < extra {
        gpu * (base + 1)
    } else {
        extra * (base + 1) + (gpu - extra) * base
    };
    let len = if gpu < extra { base + 1 } else { base };
    (start, (start + len).min(ctas))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cta_assigned_exactly_once() {
        for ctas in [1usize, 4, 7, 128, 129, 131] {
            for gpus in [1usize, 2, 3, 4, 8] {
                let mut counts = vec![0usize; gpus];
                for cta in 0..ctas {
                    counts[gpu_of_cta(cta, ctas, gpus)] += 1;
                }
                let total: usize = counts.iter().sum();
                assert_eq!(total, ctas);
                // Balanced within one CTA.
                let min = counts.iter().min().unwrap();
                let max = counts.iter().max().unwrap();
                assert!(max - min <= 1, "ctas={ctas} gpus={gpus} {counts:?}");
            }
        }
    }

    #[test]
    fn batches_are_contiguous() {
        for cta in 1..128usize {
            let prev = gpu_of_cta(cta - 1, 128, 4);
            let cur = gpu_of_cta(cta, 128, 4);
            assert!(cur == prev || cur == prev + 1);
        }
    }

    #[test]
    fn ranges_agree_with_assignment() {
        for gpus in [1usize, 3, 4] {
            for ctas in [5usize, 128, 131] {
                for g in 0..gpus {
                    let (s, e) = cta_range_of_gpu(g, ctas, gpus);
                    for cta in s..e {
                        assert_eq!(gpu_of_cta(cta, ctas, gpus), g);
                    }
                }
            }
        }
    }

    #[test]
    fn more_gpus_than_ctas() {
        assert_eq!(gpu_of_cta(1, 2, 4), 1);
        let (s, e) = cta_range_of_gpu(3, 2, 4);
        assert_eq!(s, e, "gpu 3 gets no CTA");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cta_out_of_range_panics() {
        let _ = gpu_of_cta(8, 8, 4);
    }
}
