//! The GPU core: SM cluster + shared TLB + banked memory-side L2.

use std::collections::VecDeque;
use std::sync::Arc;

use carve_cache::mshr::{MshrAllocate, MshrFile};
use carve_cache::sram::{AccessKind, SetAssocCache};
use carve_noc::NodeId;
use carve_trace::WorkloadSpec;
use sim_core::event::{earliest, NextEvent};
use sim_core::fast::{FastSet, Slab};
use sim_core::{BoundedQueue, Cycle, ScaledConfig};

use crate::sm::{L2Req, Sm, SmParams, SmStats};
use crate::tlb::Tlb;
use crate::types::{CoreReqKind, CoreRequest, Fabric, ReqSource, Translator, Waiter};

#[derive(Debug)]
struct Bank {
    queue: BoundedQueue<L2Req>,
    busy_until: u64,
}

/// Bookkeeping for one outstanding ReadMiss tag.
#[derive(Debug, Clone, Copy)]
struct MissMeta {
    line: u64,
    home: NodeId,
    /// For an external (remote GPU) read serviced at this home node: the
    /// system token to answer. External reads bypass the MSHR entirely —
    /// merging them into a warp miss whose page migrated away would chain
    /// this node's memory onto another node's in-flight fill and can
    /// deadlock two nodes against each other.
    external_bypass: Option<u64>,
}

/// Aggregate counters for one GPU core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Warp instructions retired.
    pub instructions: u64,
    /// Loads issued by warps.
    pub loads: u64,
    /// Stores issued by warps.
    pub stores: u64,
    /// L1 hits across SMs.
    pub l1_hits: u64,
    /// L1 misses across SMs.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Issue replays due to back-pressure.
    pub replays: u64,
    /// Secondary misses merged in the L2 MSHRs.
    pub mshr_merges: u64,
}

/// Point-in-time warp occupancy of one SM (see [`CoreSnapshot`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmOccupancy {
    /// SM index within its GPU.
    pub id: usize,
    /// Occupied (non-vacant) warp slots.
    pub active_warps: usize,
    /// Warps parked waiting for a memory response.
    pub waiting_mem: usize,
    /// CTAs queued but not yet resident.
    pub pending_ctas: usize,
    /// No resident or pending work.
    pub is_idle: bool,
}

/// Point-in-time occupancy snapshot of a whole GPU core: the single
/// source of truth behind both the watchdog's stall diagnostics and the
/// telemetry sampler.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreSnapshot {
    /// Per-SM warp occupancy, in SM order.
    pub sms: Vec<SmOccupancy>,
    /// Requests queued across all L2 bank queues.
    pub bank_queued: usize,
    /// Outstanding MSHR fills.
    pub mshr_outstanding: usize,
    /// Requests backed up in the outbox.
    pub outbox_backlog: usize,
    /// External-read completions not yet delivered to the system.
    pub undelivered_completions: usize,
}

impl CoreSnapshot {
    /// Occupied warp slots across all SMs.
    pub fn active_warps(&self) -> usize {
        self.sms.iter().map(|s| s.active_warps).sum()
    }

    /// Warps waiting on memory across all SMs.
    pub fn waiting_mem_warps(&self) -> usize {
        self.sms.iter().map(|s| s.waiting_mem).sum()
    }

    /// Human-readable lines naming every occupied structure (empty when
    /// the core is fully idle). Used verbatim in watchdog stall reports.
    pub fn occupancy_report(&self) -> Vec<String> {
        let mut out = Vec::new();
        for sm in &self.sms {
            if !sm.is_idle || sm.waiting_mem > 0 {
                out.push(format!(
                    "sm{}: active_warps={} waiting_mem={} pending_ctas={}",
                    sm.id, sm.active_warps, sm.waiting_mem, sm.pending_ctas,
                ));
            }
        }
        if self.bank_queued > 0 {
            out.push(format!("l2 bank queues: {} queued", self.bank_queued));
        }
        if self.mshr_outstanding > 0 {
            out.push(format!("mshr: {} outstanding fills", self.mshr_outstanding));
        }
        if self.outbox_backlog > 0 {
            out.push(format!(
                "outbox: {} requests backed up",
                self.outbox_backlog
            ));
        }
        if self.undelivered_completions > 0 {
            out.push(format!(
                "external_done: {} completions undelivered",
                self.undelivered_completions
            ));
        }
        out
    }
}

/// One GPU node's compute and cache hierarchy.
///
/// See the crate docs for the system boundary. Construction fixes the
/// workload (warp streams are created internally as CTAs are scheduled).
#[derive(Debug)]
pub struct GpuCore {
    gpu_id: usize,
    spec: WorkloadSpec,
    cfg: ScaledConfig,
    sms: Vec<Sm>,
    l2: SetAssocCache,
    banks: Vec<Bank>,
    mshr: MshrFile<Waiter>,
    /// In-flight ReadMiss state. The slab token *is* the request tag: the
    /// GPU id rides in the top byte (disjoint tag ranges across cores) and
    /// the slot bits make `complete_miss` a direct index — no hashing.
    miss_meta: Slab<MissMeta>,
    outbox: VecDeque<CoreRequest>,
    outbox_cap: usize,
    external_done: Vec<(u64, Cycle)>,
    l2_tlb: Tlb,
    line_size: u64,
    store_watch: Option<Arc<FastSet>>,
}

impl GpuCore {
    /// Builds GPU `gpu_id` for `spec` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero SMs or banks).
    pub fn new(cfg: &ScaledConfig, spec: &WorkloadSpec, gpu_id: usize) -> GpuCore {
        assert!(cfg.sms_per_gpu > 0 && cfg.l2_banks > 0);
        let mut params = SmParams::from_config(cfg);
        params.warps_per_cta = spec.shape.warps_per_cta;
        assert!(
            params.warps >= params.warps_per_cta,
            "SM must fit at least one CTA ({} warps)",
            params.warps_per_cta
        );
        let sms = (0..cfg.sms_per_gpu)
            .map(|i| Sm::new(i, params.clone()))
            .collect();
        let banks = (0..cfg.l2_banks)
            .map(|_| Bank {
                queue: BoundedQueue::new(16),
                busy_until: 0,
            })
            .collect();
        GpuCore {
            gpu_id,
            spec: spec.clone(),
            cfg: cfg.clone(),
            sms,
            l2: SetAssocCache::new(cfg.l2_bytes_per_gpu, cfg.l2_ways, cfg.line_size),
            banks,
            mshr: MshrFile::new(cfg.l2_mshrs_per_bank * cfg.l2_banks, 32),
            miss_meta: Slab::with_base((gpu_id as u64) << 56),
            outbox: VecDeque::new(),
            outbox_cap: 64,
            external_done: Vec::new(),
            l2_tlb: Tlb::new(cfg.l2_tlb_entries),
            line_size: cfg.line_size,
            store_watch: None,
        }
    }

    /// Installs the coherence watch list: line addresses whose *local*
    /// stores must be announced via [`CoreReqKind::SharedStoreNotice`]
    /// (hardware coherence only — lines that may be cached remotely).
    pub fn set_store_watch(&mut self, watch: Arc<FastSet>) {
        self.store_watch = Some(watch);
    }

    /// This GPU's node id.
    pub fn node(&self) -> NodeId {
        NodeId::Gpu(self.gpu_id)
    }

    /// Schedules kernel `kernel`'s CTAs `range` onto this GPU's SMs
    /// (round-robin across SMs; each SM runs its CTAs in waves).
    pub fn launch_kernel(&mut self, kernel: usize, range: std::ops::Range<usize>) {
        let n = self.sms.len();
        for (i, cta) in range.enumerate() {
            self.sms[i % n].enqueue_cta(kernel, cta);
        }
    }

    /// Advances the core one cycle: L2 banks service their queues, then
    /// each SM may issue one instruction.
    pub fn tick<T: Translator, F: Fabric>(&mut self, now: Cycle, xl: &mut T, fabric: &F) {
        for b in 0..self.banks.len() {
            self.process_bank(b, now, fabric);
        }
        for s in 0..self.sms.len() {
            let req = self.sms[s].step(
                now,
                self.gpu_id,
                &self.spec,
                &self.cfg,
                xl,
                &mut self.l2_tlb,
            );
            if let Some(req) = req {
                let bank = ((req.line_addr / self.line_size) % self.banks.len() as u64) as usize;
                if let Err(rejected) = self.banks[bank].queue.try_push(req) {
                    self.sms[s].fail_l2(rejected);
                }
            }
        }
    }

    fn process_bank<F: Fabric>(&mut self, b: usize, now: Cycle, fabric: &F) {
        if self.banks[b].busy_until > now.0 {
            return;
        }
        let Some(&req) = self.banks[b].queue.front() else {
            return;
        };
        let me = NodeId::Gpu(self.gpu_id);
        let local = req.home == me;
        if req.is_store {
            if self.outbox.len() >= self.outbox_cap {
                return; // stall: outbox full
            }
            if local {
                // Coalesced full-line store: allocate + dirty without a
                // memory fetch (write-back local policy).
                if !self.l2.probe(req.line_addr, AccessKind::Write) {
                    if let Some(ev) = self.l2.fill(req.line_addr, false) {
                        self.outbox.push_back(CoreRequest {
                            tag: 0,
                            line_addr: ev.addr,
                            home: me,
                            kind: CoreReqKind::WriteBack,
                            external: false,
                        });
                    }
                    self.l2.mark_dirty(req.line_addr);
                }
                // Announce local writes to potentially-shared lines so the
                // system's IMST can invalidate remote copies.
                if let Some(watch) = &self.store_watch {
                    if watch.contains(req.line_addr) {
                        self.outbox.push_back(CoreRequest {
                            tag: 0,
                            line_addr: req.line_addr,
                            home: me,
                            kind: CoreReqKind::SharedStoreNotice,
                            external: false,
                        });
                    }
                }
            } else {
                if !fabric.can_send(me, req.home, now) {
                    return; // stall: link congested
                }
                // Refresh any cached copy (stays clean: write-through).
                self.l2.probe(req.line_addr, AccessKind::Read);
                self.outbox.push_back(CoreRequest {
                    tag: 0,
                    line_addr: req.line_addr,
                    home: req.home,
                    kind: CoreReqKind::WriteThrough,
                    external: false,
                });
            }
            self.banks[b].queue.pop();
            self.banks[b].busy_until = now.0 + 2;
            return;
        }

        // Load path (warp or external).
        let waiter = match req.source {
            ReqSource::Warp { sm, warp } => Waiter::Warp { sm, warp },
            ReqSource::External { token } => Waiter::External { token },
            ReqSource::Store { .. } => unreachable!("stores handled above"),
        };
        if self.l2.probe(req.line_addr, AccessKind::Read) {
            let at = Cycle(now.0 + self.cfg.l2_hit_latency);
            match waiter {
                Waiter::Warp { sm, warp } => {
                    self.sms[sm].fill_l1(req.line_addr, !local);
                    self.sms[sm].wake_warp(warp, at);
                }
                Waiter::External { token } => self.external_done.push((token, at)),
            }
            self.banks[b].queue.pop();
            self.banks[b].busy_until = now.0 + 2;
            return;
        }
        // External reads always read this node's memory directly (see
        // MissMeta::external_bypass).
        if let Waiter::External { token } = waiter {
            if self.outbox.len() >= self.outbox_cap {
                return;
            }
            let tag = self.miss_meta.insert(MissMeta {
                line: req.line_addr,
                home: me,
                external_bypass: Some(token),
            });
            self.outbox.push_back(CoreRequest {
                tag,
                line_addr: req.line_addr,
                home: me,
                kind: CoreReqKind::ReadMiss,
                external: true,
            });
            self.banks[b].queue.pop();
            self.banks[b].busy_until = now.0 + 2;
            return;
        }
        // Miss: merge into an in-flight fill when possible.
        if self.mshr.contains(req.line_addr) {
            match self.mshr.allocate(req.line_addr, waiter) {
                MshrAllocate::Secondary => {
                    self.banks[b].queue.pop();
                    self.banks[b].busy_until = now.0 + 1;
                }
                MshrAllocate::Full => {} // waiter list full: stall
                MshrAllocate::Primary => unreachable!("contains() said in-flight"),
            }
            return;
        }
        // Primary miss: needs outbox space and (for remote homes) link room.
        if self.outbox.len() >= self.outbox_cap {
            return;
        }
        if !local && !fabric.can_send(me, req.home, now) {
            return;
        }
        match self.mshr.allocate(req.line_addr, waiter) {
            MshrAllocate::Full => {} // no MSHR: stall
            MshrAllocate::Secondary => unreachable!("checked not in flight"),
            MshrAllocate::Primary => {
                let tag = self.miss_meta.insert(MissMeta {
                    line: req.line_addr,
                    home: req.home,
                    external_bypass: None,
                });
                self.outbox.push_back(CoreRequest {
                    tag,
                    line_addr: req.line_addr,
                    home: req.home,
                    kind: CoreReqKind::ReadMiss,
                    external: false,
                });
                self.banks[b].queue.pop();
                self.banks[b].busy_until = now.0 + 2;
            }
        }
    }

    /// Delivers data for an outstanding [`CoreReqKind::ReadMiss`]: fills the
    /// L2 (and waiters' L1s), wakes warps and completes external reads.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is unknown (a response the core never asked for).
    pub fn complete_miss(&mut self, tag: u64, now: Cycle) {
        let MissMeta {
            line,
            home,
            external_bypass,
        } = self
            .miss_meta
            .remove(tag)
            .expect("complete_miss: unknown tag");
        let me = NodeId::Gpu(self.gpu_id);
        let remote = home != me;
        if let Some(ev) = self.l2.fill(line, remote) {
            self.outbox.push_back(CoreRequest {
                tag: 0,
                line_addr: ev.addr,
                home: me,
                kind: CoreReqKind::WriteBack,
                external: false,
            });
        }
        if let Some(token) = external_bypass {
            // Bypassed external read: answer it without touching the MSHR
            // (a demand fill for the same line may still be in flight).
            self.external_done.push((token, Cycle(now.0 + 2)));
            return;
        }
        for waiter in self.mshr.complete(line) {
            match waiter {
                Waiter::Warp { sm, warp } => {
                    self.sms[sm].fill_l1(line, remote);
                    self.sms[sm].wake_warp(warp, Cycle(now.0 + 10));
                }
                Waiter::External { token } => {
                    self.external_done.push((token, Cycle(now.0 + 2)));
                }
            }
        }
    }

    /// Enqueues a read arriving from a remote GPU into an L2 bank. Returns
    /// `Err(token)` when the bank queue is full (retry next cycle).
    pub fn external_read(&mut self, token: u64, line_addr: u64) -> Result<(), u64> {
        let bank = ((line_addr / self.line_size) % self.banks.len() as u64) as usize;
        self.banks[bank]
            .queue
            .try_push(L2Req {
                line_addr,
                is_store: false,
                home: NodeId::Gpu(self.gpu_id),
                source: ReqSource::External { token },
            })
            .map_err(|_| token)
    }

    /// Applies a write arriving from a remote GPU: refreshes any cached
    /// copy (the system separately writes DRAM — memory stays
    /// authoritative).
    pub fn external_write(&mut self, line_addr: u64) {
        if self.l2.contains(line_addr) {
            self.l2.probe(line_addr, AccessKind::Read);
        }
    }

    /// Hardware-coherence invalidate probe: drops the line from L2 and all
    /// L1s. Returns how many copies were dropped.
    pub fn invalidate_line(&mut self, line_addr: u64) -> usize {
        let mut n = 0;
        if self.l2.invalidate(line_addr).is_some() {
            n += 1;
        }
        for sm in &mut self.sms {
            if sm.invalidate_line(line_addr) {
                n += 1;
            }
        }
        n
    }

    /// Software coherence at a kernel boundary: invalidate all L1s and all
    /// remotely-homed L2 lines (NUMA-GPU's LLC extension). Returns the
    /// dirty lines dropped, which the caller must write back. Remote lines
    /// are write-through and normally clean; dirt appears only when a page
    /// *migrated here* after its lines were cached as remote.
    pub fn software_flush(&mut self) -> Vec<u64> {
        for sm in &mut self.sms {
            sm.invalidate_l1();
        }
        self.l2
            .invalidate_remote()
            .into_iter()
            .map(|ev| ev.addr)
            .collect()
    }

    /// Invalidates only the per-SM L1s (every design does this at kernel
    /// boundaries; hardware-coherent designs keep the L2). Returns lines
    /// dropped.
    pub fn invalidate_l1s(&mut self) -> usize {
        self.sms.iter_mut().map(Sm::invalidate_l1).sum()
    }

    /// TLB shootdown across the shared L2 TLB and every SM (page migrated).
    pub fn shootdown(&mut self, page: u64) {
        self.l2_tlb.shootdown(page);
        for sm in &mut self.sms {
            sm.shootdown(page);
        }
    }

    /// Oldest pending outgoing request, if any.
    pub fn outbox_front(&self) -> Option<&CoreRequest> {
        self.outbox.front()
    }

    /// Removes and returns the oldest outgoing request.
    pub fn outbox_pop(&mut self) -> Option<CoreRequest> {
        self.outbox.pop_front()
    }

    /// Takes all completed external reads `(token, ready_at)`.
    pub fn drain_external_done(&mut self) -> Vec<(u64, Cycle)> {
        std::mem::take(&mut self.external_done)
    }

    /// Moves all completed external reads into `out`, preserving both
    /// vectors' capacity (hot-path variant of [`Self::drain_external_done`]).
    pub fn drain_external_done_into(&mut self, out: &mut Vec<(u64, Cycle)>) {
        out.append(&mut self.external_done);
    }

    /// True when every SM is drained, no fills are outstanding and the
    /// outbox is empty.
    pub fn is_idle(&self) -> bool {
        self.sms.iter().all(Sm::is_idle)
            && self.mshr.is_empty()
            && self.banks.iter().all(|b| b.queue.is_empty())
            && self.outbox.is_empty()
            && self.external_done.is_empty()
    }

    /// True when SMs have no work but fills may still be in flight.
    pub fn sms_done(&self) -> bool {
        self.sms.iter().all(Sm::is_idle)
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> CoreStats {
        let mut s = CoreStats {
            l2_hits: self.l2.hits(),
            l2_misses: self.l2.misses(),
            mshr_merges: self.mshr.merged(),
            ..Default::default()
        };
        for sm in &self.sms {
            let SmStats {
                instructions,
                loads,
                stores,
                replays,
            } = sm.stats();
            s.instructions += instructions;
            s.loads += loads;
            s.stores += stores;
            s.replays += replays;
            s.l1_hits += sm.l1_hits();
            s.l1_misses += sm.l1_misses();
        }
        s
    }

    /// GPU index of this core.
    pub fn gpu_id(&self) -> usize {
        self.gpu_id
    }

    /// Read-only view of the SMs (profiler classification).
    pub fn sms(&self) -> &[Sm] {
        &self.sms
    }

    /// True when the L2 MSHR file has no free entry: the next primary miss
    /// is a structural stall.
    pub fn mshr_is_full(&self) -> bool {
        self.mshr.is_full()
    }

    /// Number of outstanding L2 fills.
    pub fn mshr_outstanding(&self) -> usize {
        self.mshr.len()
    }

    /// True when the outbox to the fabric is at capacity (back-pressure).
    pub fn outbox_is_full(&self) -> bool {
        self.outbox.len() >= self.outbox_cap
    }

    /// Total requests queued at the L2 banks.
    pub fn bank_queued(&self) -> usize {
        self.banks.iter().map(|b| b.queue.len()).sum()
    }

    /// Diagnostic lines describing everything still occupied in this core:
    /// busy SMs (active/memory-waiting warps, queued CTAs), L2 bank queue
    /// depths, outstanding MSHR fills, outbox backlog, and undelivered
    /// external completions. Empty when the core is idle.
    pub fn occupancy_report(&self) -> Vec<String> {
        self.snapshot().occupancy_report()
    }

    /// Point-in-time occupancy of every structure in the core: per-SM
    /// warp states, L2 bank queues, MSHRs, outbox, undelivered external
    /// completions. Read-only; shared by the watchdog diagnostics and the
    /// telemetry sampler.
    pub fn snapshot(&self) -> CoreSnapshot {
        CoreSnapshot {
            sms: self
                .sms
                .iter()
                .map(|sm| SmOccupancy {
                    id: sm.id(),
                    active_warps: sm.active_warps(),
                    waiting_mem: sm.warps_waiting_mem(),
                    pending_ctas: sm.pending_ctas(),
                    is_idle: sm.is_idle(),
                })
                .collect(),
            bank_queued: self.banks.iter().map(|b| b.queue.len()).sum(),
            mshr_outstanding: self.mshr.len(),
            outbox_backlog: self.outbox.len(),
            undelivered_completions: self.external_done.len(),
        }
    }
}

impl NextEvent for GpuCore {
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let floor = now.0 + 1;
        // Pending outgoing traffic and completed external reads are drained
        // by the system every tick — make that tick happen promptly.
        if !self.outbox.is_empty() || !self.external_done.is_empty() {
            return Some(Cycle(floor));
        }
        let mut horizon: Option<Cycle> = None;
        for bank in &self.banks {
            // A non-empty bank queue must be ticked every cycle once its
            // busy window ends: `process_bank` probes the L2 on each
            // attempt even when the head then stalls on back-pressure, and
            // those probes move LRU state. Skipping them would diverge
            // from the stepping engine.
            if !bank.queue.is_empty() {
                let at = bank.busy_until.max(floor);
                if at == floor {
                    return Some(Cycle(floor));
                }
                horizon = earliest(horizon, Some(Cycle(at)));
            }
        }
        for sm in &self.sms {
            horizon = earliest(horizon, sm.next_event(now));
            // The floor is the lowest possible horizon; stop scanning.
            if horizon == Some(Cycle(floor)) {
                return horizon;
            }
        }
        horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{TranslationOutcome, UnboundedFabric};
    use carve_trace::workloads;

    struct LocalXl;
    impl Translator for LocalXl {
        fn translate(&mut self, gpu: usize, _va: u64, _w: bool, _now: Cycle) -> TranslationOutcome {
            TranslationOutcome {
                home: NodeId::Gpu(gpu),
                blocked_until: None,
            }
        }
    }

    /// Runs a core standalone, answering every outbox read after `lat`
    /// cycles — a minimal stand-in for the system model.
    fn run_core(core: &mut GpuCore, lat: u64, limit: u64) -> u64 {
        let mut xl = LocalXl;
        let fabric = UnboundedFabric;
        let mut pending: Vec<(u64, u64)> = Vec::new();
        let mut c = 0u64;
        while c < limit {
            core.tick(Cycle(c), &mut xl, &fabric);
            while let Some(req) = core.outbox_front().copied() {
                core.outbox_pop();
                if req.kind == CoreReqKind::ReadMiss {
                    pending.push((req.tag, c + lat));
                }
            }
            let mut i = 0;
            while i < pending.len() {
                if pending[i].1 <= c {
                    let (tag, _) = pending.swap_remove(i);
                    core.complete_miss(tag, Cycle(c));
                } else {
                    i += 1;
                }
            }
            if core.is_idle() {
                break;
            }
            c += 1;
        }
        c
    }

    #[test]
    fn core_runs_one_kernel_to_completion() {
        let cfg = ScaledConfig::default();
        let spec = workloads::by_name("Bitcoin").unwrap();
        let mut core = GpuCore::new(&cfg, &spec, 0);
        core.launch_kernel(0, 0..8);
        let cycles = run_core(&mut core, 100, 10_000_000);
        assert!(core.is_idle(), "core did not drain");
        let expected = 8 * spec.shape.warps_per_cta as u64 * spec.shape.instrs_per_warp as u64;
        assert_eq!(core.stats().instructions, expected);
        assert!(cycles > 0);
    }

    #[test]
    fn instructions_exact_for_all_ctas() {
        let cfg = ScaledConfig::default();
        let spec = workloads::by_name("stream-triad").unwrap();
        let mut core = GpuCore::new(&cfg, &spec, 0);
        core.launch_kernel(0, 0..32);
        run_core(&mut core, 60, 20_000_000);
        assert!(core.is_idle());
        let expected = 32 * spec.shape.warps_per_cta as u64 * spec.shape.instrs_per_warp as u64;
        assert_eq!(core.stats().instructions, expected);
    }

    #[test]
    fn l1_and_l2_filter_accesses() {
        let cfg = ScaledConfig::default();
        let spec = workloads::by_name("stream-triad").unwrap();
        let mut core = GpuCore::new(&cfg, &spec, 0);
        core.launch_kernel(0, 0..8);
        run_core(&mut core, 60, 20_000_000);
        let s = core.stats();
        assert!(s.loads > 0);
        assert!(s.l1_hits + s.l1_misses >= s.loads);
    }

    #[test]
    fn external_read_hits_after_fill() {
        let cfg = ScaledConfig::default();
        let spec = workloads::by_name("Bitcoin").unwrap();
        let mut core = GpuCore::new(&cfg, &spec, 1);
        // Pre-fill a line via an external read that misses, completing it.
        core.external_read(77, 0x4000).unwrap();
        let mut xl = LocalXl;
        let fabric = UnboundedFabric;
        let mut tag = None;
        for c in 0..100u64 {
            core.tick(Cycle(c), &mut xl, &fabric);
            if let Some(req) = core.outbox_front().copied() {
                core.outbox_pop();
                assert_eq!(req.kind, CoreReqKind::ReadMiss);
                tag = Some(req.tag);
                break;
            }
        }
        core.complete_miss(tag.expect("miss must escape"), Cycle(50));
        let done = core.drain_external_done();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 77);
        // Second external read now hits in L2.
        core.external_read(78, 0x4000).unwrap();
        for c in 51..80u64 {
            core.tick(Cycle(c), &mut xl, &fabric);
        }
        let done = core.drain_external_done();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 78);
    }

    #[test]
    fn invalidate_line_drops_copies() {
        let cfg = ScaledConfig::default();
        let spec = workloads::by_name("Bitcoin").unwrap();
        let mut core = GpuCore::new(&cfg, &spec, 0);
        core.external_read(1, 0x8000).unwrap();
        let mut xl = LocalXl;
        let fabric = UnboundedFabric;
        for c in 0..50u64 {
            core.tick(Cycle(c), &mut xl, &fabric);
        }
        if let Some(req) = core.outbox_pop() {
            core.complete_miss(req.tag, Cycle(60));
        }
        assert!(core.invalidate_line(0x8000) > 0);
        assert_eq!(core.invalidate_line(0x8000), 0);
    }

    #[test]
    fn software_flush_clears_remote_l2_lines() {
        let cfg = ScaledConfig::default();
        let spec = workloads::by_name("Bitcoin").unwrap();
        struct RemoteXl;
        impl Translator for RemoteXl {
            fn translate(
                &mut self,
                _gpu: usize,
                _va: u64,
                _w: bool,
                _now: Cycle,
            ) -> TranslationOutcome {
                TranslationOutcome {
                    home: NodeId::Gpu(3),
                    blocked_until: None,
                }
            }
        }
        let mut core = GpuCore::new(&cfg, &spec, 0);
        core.launch_kernel(0, 0..4);
        let mut xl = RemoteXl;
        let fabric = UnboundedFabric;
        let mut filled = 0;
        for c in 0..200_000u64 {
            core.tick(Cycle(c), &mut xl, &fabric);
            while let Some(req) = core.outbox_front().copied() {
                core.outbox_pop();
                if req.kind == CoreReqKind::ReadMiss {
                    core.complete_miss(req.tag, Cycle(c));
                    filled += 1;
                }
            }
            if filled > 32 {
                break;
            }
        }
        assert!(filled > 0);
        let dirty = core.software_flush();
        assert!(dirty.is_empty(), "write-through remote lines must be clean");
    }
}
