//! The GPU node model: SMs, warps, TLBs, L1s and the banked memory-side L2.
//!
//! A [`GpuCore`] is everything *inside* one GPU of the paper's 4-GPU system
//! except the DRAM, the Remote Data Cache and the links, which the system
//! crate owns and routes between. The boundary is explicit:
//!
//! * the core pulls warp instructions from `carve-trace` workload streams,
//! * translates addresses through a two-level TLB and a caller-provided
//!   [`Translator`] (the runtime page table),
//! * filters accesses through per-SM L1s and the shared, banked L2
//!   (misses merge in MSHRs),
//! * and emits [`CoreRequest`]s from its outbox, which the system services
//!   against DRAM, the RDC or the link fabric, respecting back-pressure via
//!   the [`Fabric`] capacity probe.
//!
//! The model is deliberately warp-level: one memory instruction represents
//! the coalesced access of a 32-thread warp to one 128-byte line, the
//! granularity at which the paper's NUMA traffic analysis operates.

#![warn(missing_docs)]

pub mod core;
pub mod sm;
pub mod tlb;
pub mod types;

pub use crate::core::{CoreSnapshot, CoreStats, GpuCore, SmOccupancy};
pub use sm::Sm;
pub use tlb::Tlb;
pub use types::{
    CoreReqKind, CoreRequest, Fabric, ReqSource, TranslationOutcome, Translator, Waiter,
};
