//! Streaming Multiprocessor model.
//!
//! Each SM holds a fixed number of warp slots, filled CTA-by-CTA from a
//! pending queue. Every cycle the SM issues at most one warp instruction
//! from a ready warp (round-robin): compute runs simply occupy the warp for
//! their length; loads translate (TLB latency), probe the per-SM
//! write-through L1 and either complete locally or escalate to the L2;
//! stores are posted write-throughs that do not block the warp. Latency is
//! hidden exactly the way real GPUs hide it — by switching among many
//! resident warps.

use std::collections::VecDeque;

use carve_cache::sram::{AccessKind, SetAssocCache};
use carve_noc::NodeId;
use carve_trace::{Op, WarpGen, WorkloadSpec};
use sim_core::{Cycle, ScaledConfig};

use crate::tlb::Tlb;
use crate::types::{ReqSource, Translator};

/// Geometry and latency parameters of one SM.
#[derive(Debug, Clone, PartialEq)]
pub struct SmParams {
    /// Warp slots (max resident warps).
    pub warps: usize,
    /// Warps per CTA (CTAs are placed whole).
    pub warps_per_cta: usize,
    /// L1 data cache capacity in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// Cache line size in bytes.
    pub line_size: u64,
    /// Page size in bytes (for TLB indexing).
    pub page_size: u64,
    /// Latency of an L1 hit in cycles.
    pub l1_hit_latency: u64,
    /// Wake-up delay after an L2/memory fill reaches the SM.
    pub l1_fill_latency: u64,
    /// L1 TLB entries.
    pub l1_tlb_entries: usize,
    /// Added latency when the L1 TLB misses but the shared L2 TLB hits.
    pub l2_tlb_latency: u64,
    /// Added latency of a full page walk.
    pub walk_latency: u64,
}

impl SmParams {
    /// Derives SM parameters from the system configuration.
    pub fn from_config(cfg: &ScaledConfig) -> SmParams {
        SmParams {
            warps: cfg.warps_per_sm,
            warps_per_cta: 4,
            l1_bytes: cfg.l1_bytes_per_sm,
            l1_ways: cfg.l1_ways,
            line_size: cfg.line_size,
            page_size: cfg.page_size,
            l1_hit_latency: cfg.l1_hit_latency,
            l1_fill_latency: 10,
            l1_tlb_entries: cfg.l1_tlb_entries,
            l2_tlb_latency: 20,
            walk_latency: cfg.walk_latency,
        }
    }
}

/// A request escalated from the SM to an L2 bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Req {
    /// Line-aligned address.
    pub line_addr: u64,
    /// Whether this is a (posted) store.
    pub is_store: bool,
    /// Home node resolved at translation time.
    pub home: NodeId,
    /// Originating warp or external token.
    pub source: ReqSource,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Vacant,
    Ready,
    Blocked(u64),
    WaitingMem,
}

#[derive(Debug, Clone, Copy)]
enum ReplayStage {
    /// Translation done; L1 not yet probed (TLB/migration delay elapsed).
    PreL1,
    /// L1 probed and missed; the L2 queue rejected the request.
    PostL1,
}

#[derive(Debug, Clone, Copy)]
struct Replay {
    va: u64,
    is_store: bool,
    home: NodeId,
    stage: ReplayStage,
}

#[derive(Debug)]
struct Slot {
    gen: Option<WarpGen>,
    phase: Phase,
    replay: Option<Replay>,
}

/// Per-SM activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmStats {
    /// Warp instructions retired (compute + memory).
    pub instructions: u64,
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// Issue attempts replayed due to downstream back-pressure.
    pub replays: u64,
}

/// Cached result of the event-minimum scan (see [`Sm::event_min`]).
#[derive(Debug, Clone, Copy)]
enum EventCache {
    /// Slots or the CTA queue changed since the last scan.
    Dirty,
    /// `min` over every slot's contribution: `Ready` and a fillable CTA
    /// queue contribute 0, `Blocked(t)` contributes `t`; `None` when no
    /// slot can ever act without outside input.
    Clean(Option<u64>),
}

/// One Streaming Multiprocessor.
#[derive(Debug)]
pub struct Sm {
    id: usize,
    params: SmParams,
    l1: SetAssocCache,
    tlb: Tlb,
    slots: Vec<Slot>,
    pending: VecDeque<(usize, usize)>,
    rr: usize,
    stats: SmStats,
    // EQUIVALENCE: `event_cache` memoizes the slot scan for the horizon
    // query only; it never feeds `step`. Every mutation that can change
    // when a slot next acts (enqueue, fill, issue, completion, fail_l2,
    // invalidate) marks it `Dirty` in the same call, so a cached horizon
    // always equals the fresh scan a stepping engine would do, and
    // retirement order — hence every stat and journal byte — is identical
    // under both engines (golden tests pin this).
    /// Interior-mutable so [`Sm::next_event`] (`&self`, called every tick
    /// by the event-horizon engine) can reuse one scan across the many
    /// ticks where this SM's state does not change.
    event_cache: std::cell::Cell<EventCache>,
    /// Non-vacant slot count, so the per-tick [`Sm::is_idle`] checks cost
    /// O(1) instead of a slot scan.
    occupied: usize,
}

impl Sm {
    /// Creates SM `id` with the given parameters.
    pub fn new(id: usize, params: SmParams) -> Sm {
        let slots = (0..params.warps)
            .map(|_| Slot {
                gen: None,
                phase: Phase::Vacant,
                replay: None,
            })
            .collect();
        Sm {
            id,
            l1: SetAssocCache::new(params.l1_bytes, params.l1_ways, params.line_size),
            tlb: Tlb::new(params.l1_tlb_entries),
            slots,
            pending: VecDeque::new(),
            rr: 0,
            params,
            stats: SmStats::default(),
            event_cache: std::cell::Cell::new(EventCache::Dirty),
            occupied: 0,
        }
    }

    /// Queues a CTA of the given kernel for execution on this SM.
    pub fn enqueue_cta(&mut self, kernel: usize, cta: usize) {
        self.pending.push_back((kernel, cta));
        self.event_cache.set(EventCache::Dirty);
    }

    /// The cached event minimum: the earliest absolute cycle at which this
    /// SM can act on its own, with "immediately" represented as 0 (the
    /// caller clamps to `now + 1`). Recomputed only after a mutation.
    fn event_min(&self) -> Option<u64> {
        if let EventCache::Clean(m) = self.event_cache.get() {
            return m;
        }
        let mut min: Option<u64> = None;
        for slot in &self.slots {
            match slot.phase {
                Phase::Ready => {
                    self.event_cache.set(EventCache::Clean(Some(0)));
                    return Some(0);
                }
                Phase::Blocked(t) => min = Some(min.map_or(t, |m: u64| m.min(t))),
                Phase::Vacant | Phase::WaitingMem => {}
            }
        }
        if !self.pending.is_empty() && self.slots.len() - self.occupied >= self.params.warps_per_cta
        {
            min = Some(0);
        }
        self.event_cache.set(EventCache::Clean(min));
        min
    }

    fn try_fill_slots(&mut self, spec: &WorkloadSpec, cfg: &ScaledConfig) {
        loop {
            let vacant = self.slots.len() - self.occupied;
            if vacant < self.params.warps_per_cta || self.pending.is_empty() {
                return;
            }
            // audit:allow(tick-path-panics) guarded by the is_empty check two lines up
            let (kernel, cta) = self.pending.pop_front().expect("checked non-empty");
            let mut warp = 0;
            for slot in &mut self.slots {
                if warp == self.params.warps_per_cta {
                    break;
                }
                if slot.phase == Phase::Vacant {
                    slot.gen = Some(spec.warp_gen(cfg, kernel, cta, warp));
                    slot.phase = Phase::Ready;
                    slot.replay = None;
                    warp += 1;
                }
            }
            self.occupied += warp;
        }
    }

    /// Advances the SM one cycle, possibly escalating one request to L2.
    ///
    /// The caller must deliver the returned request to an L2 bank queue; if
    /// the queue rejects it, call [`Sm::fail_l2`] to restore the warp.
    pub fn step<T: Translator>(
        &mut self,
        now: Cycle,
        gpu: usize,
        spec: &WorkloadSpec,
        cfg: &ScaledConfig,
        xl: &mut T,
        l2_tlb: &mut Tlb,
    ) -> Option<L2Req> {
        // Fast path: nothing can act at `now` — no ready warp, no
        // expired block, no fillable CTA. The full body below would be a
        // pure no-op (it only reads state), so skipping it is
        // bit-identical; most SMs sit here on any given tick.
        match self.event_min() {
            Some(m) if m <= now.0 => {}
            _ => return None,
        }
        self.event_cache.set(EventCache::Dirty);
        self.try_fill_slots(spec, cfg);
        // Round-robin pick of a ready warp, waking lazily: a warp whose
        // block has expired is indistinguishable from `Ready` to every
        // observer (the event horizon clamps expired times to the floor),
        // so only the picked warp's phase is rewritten — one slot pass
        // instead of a wake pass plus a pick pass.
        let n = self.slots.len();
        let mut pick = None;
        for k in 0..n {
            let idx = (self.rr + k) % n;
            match self.slots[idx].phase {
                Phase::Ready => {
                    pick = Some(idx);
                    break;
                }
                Phase::Blocked(t) if t <= now.0 => {
                    self.slots[idx].phase = Phase::Ready;
                    pick = Some(idx);
                    break;
                }
                _ => {}
            }
        }
        let idx = pick?;
        self.rr = (idx + 1) % n;

        // Replayed op first.
        if let Some(replay) = self.slots[idx].replay.take() {
            return match replay.stage {
                ReplayStage::PreL1 => {
                    self.l1_access(idx, replay.va, replay.is_store, replay.home, now)
                }
                ReplayStage::PostL1 => {
                    // Re-emit the previously rejected L2 request.
                    let line = replay.va; // already line-aligned
                    if replay.is_store {
                        self.slots[idx].phase = Phase::Ready;
                        Some(L2Req {
                            line_addr: line,
                            is_store: true,
                            home: replay.home,
                            source: ReqSource::Store {
                                sm: self.id,
                                warp: idx,
                            },
                        })
                    } else {
                        self.slots[idx].phase = Phase::WaitingMem;
                        Some(L2Req {
                            line_addr: line,
                            is_store: false,
                            home: replay.home,
                            source: ReqSource::Warp {
                                sm: self.id,
                                warp: idx,
                            },
                        })
                    }
                }
            };
        }

        // Fresh instruction.
        let op = {
            let gen = self.slots[idx]
                .gen
                .as_mut()
                // audit:allow(tick-path-panics) Ready phase implies a live generator; breaking that is a slot-machine bug, not a run error
                .expect("ready warp has a stream");
            gen.next_op()
        };
        match op {
            None => {
                self.slots[idx].gen = None;
                self.slots[idx].phase = Phase::Vacant;
                self.occupied -= 1;
                None
            }
            Some(Op::Compute(k)) => {
                self.stats.instructions += k as u64;
                // 1 IPC issue: the warp occupies its slot for k cycles.
                self.slots[idx].phase = Phase::Blocked(now.0 + k as u64);
                None
            }
            Some(Op::Load(va)) | Some(Op::Store(va)) => {
                let is_store = matches!(op, Some(Op::Store(_)));
                self.stats.instructions += 1;
                let page = va / self.params.page_size;
                let penalty = if self.tlb.lookup(page) {
                    0
                } else if l2_tlb.lookup(page) {
                    self.params.l2_tlb_latency
                } else {
                    self.params.walk_latency
                };
                let out = xl.translate(gpu, va, is_store, now);
                let mut ready_at = now.0 + penalty;
                if let Some(b) = out.blocked_until {
                    ready_at = ready_at.max(b.0);
                }
                let line = va - (va % self.params.line_size);
                if ready_at > now.0 {
                    self.slots[idx].phase = Phase::Blocked(ready_at);
                    self.slots[idx].replay = Some(Replay {
                        va: line,
                        is_store,
                        home: out.home,
                        stage: ReplayStage::PreL1,
                    });
                    return None;
                }
                self.l1_access(idx, line, is_store, out.home, now)
            }
        }
    }

    fn l1_access(
        &mut self,
        idx: usize,
        line: u64,
        is_store: bool,
        home: NodeId,
        now: Cycle,
    ) -> Option<L2Req> {
        let hit = self.l1.probe(line, AccessKind::Read);
        if is_store {
            // Write-through, no-allocate, posted: the warp keeps running.
            self.stats.stores += 1;
            self.slots[idx].phase = Phase::Ready;
            return Some(L2Req {
                line_addr: line,
                is_store: true,
                home,
                source: ReqSource::Store {
                    sm: self.id,
                    warp: idx,
                },
            });
        }
        self.stats.loads += 1;
        if hit {
            self.slots[idx].phase = Phase::Blocked(now.0 + self.params.l1_hit_latency);
            None
        } else {
            self.slots[idx].phase = Phase::WaitingMem;
            Some(L2Req {
                line_addr: line,
                is_store: false,
                home,
                source: ReqSource::Warp {
                    sm: self.id,
                    warp: idx,
                },
            })
        }
    }

    /// Restores the warp behind a rejected L2 request so it retries.
    ///
    /// # Panics
    ///
    /// Panics if the request did not originate from this SM.
    pub fn fail_l2(&mut self, req: L2Req) {
        let warp = match req.source {
            ReqSource::Warp { sm, warp } | ReqSource::Store { sm, warp } => {
                assert_eq!(sm, self.id, "request belongs to another SM");
                warp
            }
            // audit:allow(tick-path-panics) documented caller-contract panic (see the doc comment above)
            ReqSource::External { .. } => panic!("external requests do not replay via SMs"),
        };
        self.stats.replays += 1;
        self.slots[warp].replay = Some(Replay {
            va: req.line_addr,
            is_store: req.is_store,
            home: req.home,
            stage: ReplayStage::PostL1,
        });
        self.slots[warp].phase = Phase::Ready;
        self.event_cache.set(EventCache::Dirty);
    }

    /// Wakes a memory-blocked warp at `at` (its data has been filled).
    pub fn wake_warp(&mut self, warp: usize, at: Cycle) {
        debug_assert_eq!(self.slots[warp].phase, Phase::WaitingMem);
        self.slots[warp].phase = Phase::Blocked(at.0);
        self.event_cache.set(EventCache::Dirty);
    }

    /// Installs a line in the L1 (L2/memory fill on the return path).
    pub fn fill_l1(&mut self, line_addr: u64, remote: bool) {
        // Write-through L1: evictions are always clean.
        let _ = self.l1.fill(line_addr, remote);
    }

    /// Invalidates the entire L1 (software coherence at kernel boundary).
    pub fn invalidate_l1(&mut self) -> usize {
        self.l1.invalidate_all()
    }

    /// Invalidates one line if present (hardware-coherence probe).
    pub fn invalidate_line(&mut self, line_addr: u64) -> bool {
        self.l1.invalidate(line_addr).is_some()
    }

    /// TLB shootdown for a migrated page.
    pub fn shootdown(&mut self, page: u64) {
        self.tlb.shootdown(page);
    }

    /// Occupied (non-vacant) warp slots.
    pub fn active_warps(&self) -> usize {
        self.occupied
    }

    /// Warps parked waiting for a memory response.
    pub fn warps_waiting_mem(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.phase == Phase::WaitingMem)
            .count()
    }

    /// CTAs queued but not yet resident.
    pub fn pending_ctas(&self) -> usize {
        self.pending.len()
    }

    /// No resident or pending work. Warps waiting on memory keep the SM
    /// non-idle until their fills arrive.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.occupied == 0
    }

    /// Earliest future cycle this SM could issue or change state on its
    /// own (see [`sim_core::NextEvent`]). `None` when every warp is vacant
    /// or waiting on a memory fill — only outside input can wake it then.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // `min(t_i.max(floor)) == min(t_i).max(floor)`, so the cached
        // minimum reproduces the slot scan exactly for any `now`.
        self.event_min().map(|m| Cycle(m.max(now.0 + 1)))
    }

    /// Activity counters.
    pub fn stats(&self) -> SmStats {
        self.stats
    }

    /// L1 hit count.
    pub fn l1_hits(&self) -> u64 {
        self.l1.hits()
    }

    /// L1 miss count.
    pub fn l1_misses(&self) -> u64 {
        self.l1.misses()
    }

    /// This SM's index within its GPU.
    pub fn id(&self) -> usize {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TranslationOutcome;
    use carve_trace::workloads;

    struct LocalXl;
    impl Translator for LocalXl {
        fn translate(&mut self, gpu: usize, _va: u64, _w: bool, _now: Cycle) -> TranslationOutcome {
            TranslationOutcome {
                home: NodeId::Gpu(gpu),
                blocked_until: None,
            }
        }
    }

    fn setup() -> (Sm, Tlb, WorkloadSpec, ScaledConfig) {
        let cfg = ScaledConfig::default();
        let spec = workloads::by_name("stream-triad").unwrap();
        let mut sm = Sm::new(0, SmParams::from_config(&cfg));
        sm.enqueue_cta(0, 0);
        (sm, Tlb::new(512), spec, cfg)
    }

    #[test]
    fn sm_issues_and_escalates_misses() {
        let (mut sm, mut l2_tlb, spec, cfg) = setup();
        let mut xl = LocalXl;
        let mut reqs = 0;
        for c in 0..20_000u64 {
            if sm
                .step(Cycle(c), 0, &spec, &cfg, &mut xl, &mut l2_tlb)
                .is_some()
            {
                reqs += 1;
            }
        }
        assert!(reqs > 0, "no requests escaped the SM");
        assert!(sm.stats().instructions > 0);
    }

    #[test]
    fn warp_blocks_on_load_until_woken() {
        let (mut sm, mut l2_tlb, spec, cfg) = setup();
        let mut xl = LocalXl;
        // Run until a load miss escapes.
        let mut pending: Option<L2Req> = None;
        let mut cycle = 0u64;
        while pending.is_none() && cycle < 100_000 {
            if let Some(r) = sm.step(Cycle(cycle), 0, &spec, &cfg, &mut xl, &mut l2_tlb) {
                if !r.is_store {
                    pending = Some(r);
                }
            }
            cycle += 1;
        }
        let req = pending.expect("expected a load miss");
        let ReqSource::Warp { warp, .. } = req.source else {
            panic!("load source must be a warp")
        };
        sm.fill_l1(req.line_addr, false);
        sm.wake_warp(warp, Cycle(cycle + 5));
        // After wakeup the warp issues again eventually.
        let before = sm.stats().instructions;
        for c in cycle..cycle + 5000 {
            sm.step(Cycle(c), 0, &spec, &cfg, &mut xl, &mut l2_tlb);
        }
        assert!(sm.stats().instructions > before);
    }

    #[test]
    fn fail_l2_replays_the_same_line() {
        let (mut sm, mut l2_tlb, spec, cfg) = setup();
        let mut xl = LocalXl;
        let mut first: Option<L2Req> = None;
        let mut cycle = 0u64;
        while first.is_none() && cycle < 100_000 {
            first = sm.step(Cycle(cycle), 0, &spec, &cfg, &mut xl, &mut l2_tlb);
            cycle += 1;
        }
        let req = first.expect("expected a request");
        sm.fail_l2(req);
        // The next issue from *that warp* re-emits the same line (other
        // warps may issue their own requests in between).
        let source_warp = |s: ReqSource| match s {
            ReqSource::Warp { warp, .. } | ReqSource::Store { warp, .. } => warp,
            ReqSource::External { .. } => usize::MAX,
        };
        let want = source_warp(req.source);
        let mut again = None;
        for c in cycle..cycle + 1000 {
            if let Some(r) = sm.step(Cycle(c), 0, &spec, &cfg, &mut xl, &mut l2_tlb) {
                if source_warp(r.source) == want {
                    again = Some(r);
                    break;
                }
            }
        }
        let r2 = again.expect("replay never re-issued");
        assert_eq!(r2.line_addr, req.line_addr);
        assert_eq!(r2.is_store, req.is_store);
        assert_eq!(sm.stats().replays, 1);
    }

    #[test]
    fn sm_drains_to_idle_when_memory_always_hits() {
        let cfg = ScaledConfig::default();
        let spec = workloads::by_name("Bitcoin").unwrap();
        let mut sm = Sm::new(0, SmParams::from_config(&cfg));
        sm.enqueue_cta(0, 0);
        let mut l2_tlb = Tlb::new(512);
        let mut xl = LocalXl;
        let mut waiting: Vec<(usize, u64)> = Vec::new();
        let mut c = 0u64;
        while !sm.is_idle() && c < 3_000_000 {
            if let Some(req) = sm.step(Cycle(c), 0, &spec, &cfg, &mut xl, &mut l2_tlb) {
                if let ReqSource::Warp { warp, .. } = req.source {
                    sm.fill_l1(req.line_addr, false);
                    waiting.push((warp, c + 50));
                }
            }
            waiting.retain(|&(warp, at)| {
                if at <= c {
                    sm.wake_warp(warp, Cycle(at));
                    false
                } else {
                    true
                }
            });
            c += 1;
        }
        assert!(sm.is_idle(), "SM failed to drain");
        // One CTA of Bitcoin: 4 warps x 500 instrs.
        let expected = spec.shape.warps_per_cta as u64 * spec.shape.instrs_per_warp as u64;
        assert_eq!(sm.stats().instructions, expected);
    }

    #[test]
    fn cta_fills_whole_warp_groups() {
        let (mut sm, mut l2_tlb, spec, cfg) = setup();
        let mut xl = LocalXl;
        sm.step(Cycle(0), 0, &spec, &cfg, &mut xl, &mut l2_tlb);
        assert!(!sm.is_idle());
    }
}
