//! Interface types between the GPU core and the system model.

use carve_noc::NodeId;
use sim_core::Cycle;

/// What a [`CoreRequest`] asks the system to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreReqKind {
    /// Fetch a line; the system must eventually call
    /// [`crate::GpuCore::complete_miss`] with the same tag.
    ReadMiss,
    /// Posted write-through toward the line's home (remote GPU, CPU
    /// memory, or — for write-through RDC dirty data — local DRAM).
    WriteThrough,
    /// Posted write-back of a dirty local L2 victim to local DRAM.
    WriteBack,
    /// Zero-data notification that a *local* store hit a line on the
    /// coherence watch list (see [`crate::GpuCore::set_store_watch`]).
    /// The system consults the home IMST and broadcasts invalidates if the
    /// line is genuinely shared. Models the IMST-entry-in-L2 consult of
    /// the paper's hardware-coherence design.
    SharedStoreNotice,
}

/// A memory request leaving the GPU core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreRequest {
    /// Core-unique tag (only meaningful for [`CoreReqKind::ReadMiss`]).
    pub tag: u64,
    /// Line-aligned address.
    pub line_addr: u64,
    /// Home node of the line as resolved at issue time.
    pub home: NodeId,
    /// Request flavour.
    pub kind: CoreReqKind,
    /// True when the primary waiter is a remote GPU's read (home-side leg
    /// of a remote flow); the system excludes these from the requester-side
    /// local/remote traffic accounting to avoid double counting.
    pub external: bool,
}

/// Who is waiting on an L2 fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Waiter {
    /// A warp of a local SM.
    Warp {
        /// SM index within this GPU.
        sm: usize,
        /// Warp slot within the SM.
        warp: usize,
    },
    /// A remote GPU's read, identified by the system's token.
    External {
        /// System-level token to answer with.
        token: u64,
    },
}

/// Origin of an L2 request inside the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqSource {
    /// A warp load that blocks until data returns.
    Warp {
        /// SM index.
        sm: usize,
        /// Warp slot.
        warp: usize,
    },
    /// A posted store issued by a warp (the warp does not block, but the
    /// slot is recorded so back-pressure can replay the op).
    Store {
        /// SM index.
        sm: usize,
        /// Warp slot.
        warp: usize,
    },
    /// A read arriving from a remote GPU.
    External {
        /// System-level token to answer with.
        token: u64,
    },
}

/// Result of resolving a virtual address through the runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranslationOutcome {
    /// Effective home node of the page for this access.
    pub home: NodeId,
    /// If the page is temporarily unusable (mid-migration), when it frees.
    pub blocked_until: Option<Cycle>,
}

/// The runtime page-table service the core translates through.
///
/// Implemented by the system model around
/// [`carve_runtime::PageTable`]; test doubles implement it directly.
pub trait Translator {
    /// Resolves `va` accessed by `gpu`, recording the access (first-touch
    /// allocation, sharing masks, migration triggers happen here).
    fn translate(&mut self, gpu: usize, va: u64, is_write: bool, now: Cycle) -> TranslationOutcome;
}

/// Capacity probe for the link fabric, used by L2 banks to stall rather
/// than emit traffic the links cannot absorb.
pub trait Fabric {
    /// Whether `src` may currently send a message toward `dst`.
    fn can_send(&self, src: NodeId, dst: NodeId, now: Cycle) -> bool;
}

/// A fabric with unlimited capacity (single-GPU runs, unit tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct UnboundedFabric;

impl Fabric for UnboundedFabric {
    fn can_send(&self, _src: NodeId, _dst: NodeId, _now: Cycle) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_fabric_always_sends() {
        let f = UnboundedFabric;
        assert!(f.can_send(NodeId::Gpu(0), NodeId::Gpu(1), Cycle(0)));
        assert!(f.can_send(NodeId::Gpu(3), NodeId::Cpu, Cycle(99)));
    }

    #[test]
    fn request_types_are_comparable() {
        let a = CoreRequest {
            tag: 1,
            line_addr: 0x80,
            home: NodeId::Gpu(0),
            kind: CoreReqKind::ReadMiss,
            external: false,
        };
        assert_eq!(a, a);
        assert_ne!(
            Waiter::Warp { sm: 0, warp: 1 },
            Waiter::External { token: 9 }
        );
    }
}
