//! A small FIFO TLB latency model.
//!
//! The paper's GPUs have per-SM L1 TLBs and a shared L2 TLB; large 2 MB
//! pages exist precisely to keep these effective. The simulator models the
//! TLBs purely for their *latency* contribution — translation results come
//! from the runtime page table — so a FIFO replacement TLB tracking page
//! numbers is sufficient.

use sim_core::fast::FastSet;
use std::collections::VecDeque;

/// A FIFO-replacement TLB over page numbers.
///
/// # Example
///
/// ```
/// use carve_gpu::Tlb;
/// let mut t = Tlb::new(2);
/// assert!(!t.lookup(7)); // cold miss, now cached
/// assert!(t.lookup(7));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: FastSet,
    order: VecDeque<u64>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Tlb {
        assert!(capacity > 0);
        Tlb {
            entries: FastSet::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `page`, inserting it on a miss (evicting FIFO if full).
    /// Returns `true` on hit.
    pub fn lookup(&mut self, page: u64) -> bool {
        if self.entries.contains(page) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.order.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.entries.remove(old);
            }
        }
        self.entries.insert(page);
        self.order.push_back(page);
        false
    }

    /// Drops every entry (kernel-boundary shootdown / migration).
    pub fn flush(&mut self) {
        self.entries.clear();
        self.order.clear();
    }

    /// Drops one page (migration shootdown).
    pub fn shootdown(&mut self, page: u64) {
        if self.entries.remove(page) {
            self.order.retain(|&p| p != page);
        }
    }

    /// Hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(4);
        assert!(!t.lookup(1));
        assert!(t.lookup(1));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut t = Tlb::new(2);
        t.lookup(1);
        t.lookup(2);
        t.lookup(3); // evicts 1
        assert!(!t.lookup(1));
        assert!(t.len() <= 2);
    }

    #[test]
    fn flush_and_shootdown() {
        let mut t = Tlb::new(4);
        t.lookup(1);
        t.lookup(2);
        t.shootdown(1);
        assert!(!t.lookup(1));
        t.flush();
        assert!(t.is_empty());
        assert!(!t.lookup(2));
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = Tlb::new(0);
    }
}
