//! Cache structures for the `carve-mgpu` simulator.
//!
//! Three building blocks live here:
//!
//! * [`sram`] — a set-associative, LRU SRAM cache model used for the per-SM
//!   L1s and the per-GPU memory-side L2 (LLC). Lines carry a `remote` flag so
//!   the software-coherence flush at kernel boundaries can invalidate exactly
//!   the remotely-homed lines, as NUMA-GPU does.
//! * [`mshr`] — miss status holding registers that merge secondary misses to
//!   an in-flight line and bound the number of outstanding fills.
//! * [`alloy`] — the direct-mapped, tags-with-data DRAM-cache array of
//!   Qureshi & Loh's Alloy Cache, which CARVE uses for the Remote Data Cache
//!   (RDC), including the spare-ECC-bit tag/epoch layout check from the
//!   paper's Section IV-A and the epoch-counter instant-invalidation scheme
//!   of Figure 10.
//!
//! # Example
//!
//! ```
//! use carve_cache::sram::{SetAssocCache, AccessKind};
//!
//! let mut l1 = SetAssocCache::new(16 * 1024, 4, 128);
//! let addr = 0x1000;
//! assert!(!l1.probe(addr, AccessKind::Read)); // cold miss
//! l1.fill(addr, false);
//! assert!(l1.probe(addr, AccessKind::Read)); // now a hit
//! ```

#![warn(missing_docs)]

pub mod alloy;
pub mod mshr;
pub mod sram;

pub use alloy::{AlloyCache, AlloyProbe, EccLayout};
pub use mshr::MshrFile;
pub use sram::{AccessKind, Eviction, SetAssocCache};
