//! Alloy-style direct-mapped tags-with-data DRAM cache array.
//!
//! CARVE architects its Remote Data Cache (RDC) as an Alloy Cache
//! (Qureshi & Loh, MICRO'12): direct-mapped, one 128 B line per set, tag
//! stored *with* the data in the spare ECC bits of HBM so a single DRAM
//! access returns both (no separate tag array, no tag-serialization
//! latency). This module models that array plus the paper's two metadata
//! tricks:
//!
//! * [`EccLayout`] verifies the Section IV-A bit budget: HBM provides 16 B
//!   of ECC per 128 B line; SECDED at 16 B granularity uses 72 bits, leaving
//!   56 spare bits for tag + epoch + state.
//! * Epoch-counter invalidation (Figure 10): each line stores the 20-bit
//!   epoch (EPCTR) it was installed in; a probe only hits when tag *and*
//!   epoch match, so bumping the epoch register invalidates the entire RDC
//!   in zero time. On EPCTR rollover the array is physically reset.

/// Result of probing the Alloy array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlloyProbe {
    /// Tag and epoch matched; data is served from local memory.
    Hit,
    /// Set empty or held a different tag: a true miss.
    Miss,
    /// Tag matched but the line's epoch is stale (installed before the
    /// last kernel-boundary invalidation). Counts as a miss; the line is
    /// logically invalid.
    StaleEpoch,
}

#[derive(Debug, Clone, Copy, Default)]
struct AlloyLine {
    valid: bool,
    dirty: bool,
    tag: u64,
    epoch: u32,
}

/// Width of the per-kernel epoch counter (paper: 20 bits).
pub const EPOCH_BITS: u32 = 20;
/// Maximum epoch value before rollover.
pub const EPOCH_MAX: u32 = (1 << EPOCH_BITS) - 1;

/// Direct-mapped tags-with-data DRAM cache array.
///
/// # Example
///
/// ```
/// use carve_cache::alloy::{AlloyCache, AlloyProbe};
///
/// let mut rdc = AlloyCache::new(64 * 1024, 128);
/// assert_eq!(rdc.probe(0x4000, 0), AlloyProbe::Miss);
/// rdc.insert(0x4000, 0);
/// assert_eq!(rdc.probe(0x4000, 0), AlloyProbe::Hit);
/// // Epoch bump = instant whole-cache invalidation:
/// assert_eq!(rdc.probe(0x4000, 1), AlloyProbe::StaleEpoch);
/// ```
#[derive(Debug, Clone)]
pub struct AlloyCache {
    line_size: u64,
    sets: u64,
    lines: Vec<AlloyLine>,
    hits: u64,
    misses: u64,
    stale_misses: u64,
    conflict_evictions: u64,
}

impl AlloyCache {
    /// Creates an array of `capacity_bytes / line_size` direct-mapped sets.
    ///
    /// # Panics
    ///
    /// Panics if sizes are zero or capacity yields no sets.
    pub fn new(capacity_bytes: u64, line_size: u64) -> AlloyCache {
        assert!(capacity_bytes > 0 && line_size > 0);
        let sets = capacity_bytes / line_size;
        assert!(sets > 0, "capacity must hold at least one line");
        AlloyCache {
            line_size,
            sets,
            lines: vec![AlloyLine::default(); sets as usize],
            hits: 0,
            misses: 0,
            stale_misses: 0,
            conflict_evictions: 0,
        }
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr / self.line_size;
        ((line_addr % self.sets) as usize, line_addr / self.sets)
    }

    /// Probes for `addr` under the current `epoch` (one simulated DRAM
    /// access retrieves tag + data together).
    pub fn probe(&mut self, addr: u64, epoch: u32) -> AlloyProbe {
        let (set, tag) = self.set_and_tag(addr);
        let line = &self.lines[set];
        if line.valid && line.tag == tag {
            if line.epoch == epoch {
                self.hits += 1;
                AlloyProbe::Hit
            } else {
                self.stale_misses += 1;
                AlloyProbe::StaleEpoch
            }
        } else {
            self.misses += 1;
            AlloyProbe::Miss
        }
    }

    /// Probes without updating statistics (used by invalidation snoops).
    pub fn contains(&self, addr: u64, epoch: u32) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let line = &self.lines[set];
        line.valid && line.tag == tag && line.epoch == epoch
    }

    /// Installs `addr` under `epoch`, displacing whatever occupied the set.
    /// Returns the address of a *dirty* victim needing write-back (only
    /// possible for the write-back RDC variant), else `None`.
    pub fn insert(&mut self, addr: u64, epoch: u32) -> Option<u64> {
        let (set, tag) = self.set_and_tag(addr);
        let line = &mut self.lines[set];
        let victim = if line.valid && (line.tag != tag || line.epoch != epoch) {
            self.conflict_evictions += 1;
            if line.dirty && line.epoch == epoch {
                Some((line.tag * self.sets + set as u64) * self.line_size)
            } else {
                None
            }
        } else {
            None
        };
        *line = AlloyLine {
            valid: true,
            dirty: false,
            tag,
            epoch,
        };
        victim
    }

    /// Marks `addr`'s line dirty if resident under `epoch` (write-back
    /// variant only). Returns whether the line was present.
    pub fn mark_dirty(&mut self, addr: u64, epoch: u32) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let line = &mut self.lines[set];
        if line.valid && line.tag == tag && line.epoch == epoch {
            line.dirty = true;
            true
        } else {
            false
        }
    }

    /// Invalidates `addr`'s line if resident (hardware-coherence
    /// write-invalidate). Returns whether a line was dropped.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let line = &mut self.lines[set];
        if line.valid && line.tag == tag {
            line.valid = false;
            true
        } else {
            false
        }
    }

    /// Physically resets every line (EPCTR rollover). O(sets).
    pub fn reset(&mut self) {
        for line in &mut self.lines {
            *line = AlloyLine::default();
        }
    }

    /// Collects the addresses of all dirty lines in `epoch` and cleans
    /// them (dirty-map flush for the write-back variant).
    pub fn drain_dirty(&mut self, epoch: u32) -> Vec<u64> {
        let mut out = Vec::new();
        for (set, line) in self.lines.iter_mut().enumerate() {
            if line.valid && line.dirty && line.epoch == epoch {
                out.push((line.tag * self.sets + set as u64) * self.line_size);
                line.dirty = false;
            }
        }
        out
    }

    /// Number of sets (== lines) in the array.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Probe hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// True misses (tag mismatch / empty set).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Misses caused by stale epochs (software-coherence invalidations).
    pub fn stale_misses(&self) -> u64 {
        self.stale_misses
    }

    /// Lines displaced by conflicting inserts.
    pub fn conflict_evictions(&self) -> u64 {
        self.conflict_evictions
    }

    /// Hit rate over all probes.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.stale_misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The spare-ECC-bit budget for RDC metadata (paper Section IV-A, fn. 3).
///
/// HBM provides 16 bytes of ECC per 128-byte line. SECDED protecting each
/// 16-byte transfer needs 9 bits, so 8 × 9 = 72 bits are spent on ECC,
/// leaving 56 spare bits to hold the RDC tag, the 20-bit epoch, and
/// valid/dirty/sharing metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccLayout {
    /// Data protected per line, in bytes (128).
    pub data_bytes: u64,
    /// ECC bits available per line (16 B = 128 bits).
    pub ecc_bits: u32,
    /// Bits consumed by SECDED protection (72).
    pub secded_bits: u32,
}

impl Default for EccLayout {
    fn default() -> EccLayout {
        EccLayout {
            data_bytes: 128,
            ecc_bits: 128,
            secded_bits: 72,
        }
    }
}

impl EccLayout {
    /// Spare bits left for metadata after SECDED.
    pub fn spare_bits(&self) -> u32 {
        self.ecc_bits - self.secded_bits
    }

    /// Tag bits required for an RDC of `rdc_bytes` caching a remote
    /// physical space of `remote_bytes`, with `line_size`-byte lines.
    pub fn required_tag_bits(&self, remote_bytes: u64, rdc_bytes: u64, line_size: u64) -> u32 {
        let sets = (rdc_bytes / line_size).max(1);
        let remote_lines = (remote_bytes / line_size).max(1);
        let tags = remote_lines.div_ceil(sets).max(1);
        64 - tags.saturating_sub(1).leading_zeros().min(63)
    }

    /// Whether tag + epoch + valid + dirty + 2-bit sharing state fit in
    /// the spare ECC bits.
    pub fn metadata_fits(&self, remote_bytes: u64, rdc_bytes: u64, line_size: u64) -> bool {
        let tag = self.required_tag_bits(remote_bytes, rdc_bytes, line_size);
        tag + EPOCH_BITS + 1 + 1 + 2 <= self.spare_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_insert_hit_roundtrip() {
        let mut a = AlloyCache::new(16 * 128, 128);
        assert_eq!(a.probe(0x100, 0), AlloyProbe::Miss);
        a.insert(0x100, 0);
        assert_eq!(a.probe(0x100, 0), AlloyProbe::Hit);
        assert_eq!(a.hits(), 1);
        assert_eq!(a.misses(), 1);
    }

    #[test]
    fn direct_mapped_conflict_displaces() {
        let mut a = AlloyCache::new(16 * 128, 128);
        let stride = 16 * 128u64; // same set
        a.insert(0, 0);
        a.insert(stride, 0);
        assert_eq!(a.probe(0, 0), AlloyProbe::Miss);
        assert_eq!(a.probe(stride, 0), AlloyProbe::Hit);
        assert_eq!(a.conflict_evictions(), 1);
    }

    #[test]
    fn epoch_bump_invalidates_instantly() {
        let mut a = AlloyCache::new(16 * 128, 128);
        a.insert(0x200, 5);
        assert_eq!(a.probe(0x200, 5), AlloyProbe::Hit);
        assert_eq!(a.probe(0x200, 6), AlloyProbe::StaleEpoch);
        assert_eq!(a.stale_misses(), 1);
        // Re-insert under the new epoch revives the line.
        a.insert(0x200, 6);
        assert_eq!(a.probe(0x200, 6), AlloyProbe::Hit);
    }

    #[test]
    fn invalidate_drops_line() {
        let mut a = AlloyCache::new(16 * 128, 128);
        a.insert(0x80, 0);
        assert!(a.invalidate(0x80));
        assert!(!a.invalidate(0x80));
        assert_eq!(a.probe(0x80, 0), AlloyProbe::Miss);
    }

    #[test]
    fn dirty_victim_reported_for_writeback_variant() {
        let mut a = AlloyCache::new(16 * 128, 128);
        let stride = 16 * 128u64;
        a.insert(0, 0);
        assert!(a.mark_dirty(0, 0));
        let victim = a.insert(stride, 0);
        assert_eq!(victim, Some(0));
    }

    #[test]
    fn clean_or_stale_victims_not_written_back() {
        let mut a = AlloyCache::new(16 * 128, 128);
        let stride = 16 * 128u64;
        a.insert(0, 0);
        assert_eq!(a.insert(stride, 0), None); // clean victim
        a.insert(0, 1);
        a.mark_dirty(0, 1);
        // Stale-epoch dirty data is dead after an SWC flush: no write-back.
        assert_eq!(a.insert(stride, 2), None);
    }

    #[test]
    fn drain_dirty_returns_and_cleans() {
        let mut a = AlloyCache::new(16 * 128, 128);
        a.insert(0x80, 3);
        a.insert(0x900, 3);
        a.mark_dirty(0x80, 3);
        a.mark_dirty(0x900, 3);
        let mut d = a.drain_dirty(3);
        d.sort_unstable();
        assert_eq!(d, vec![0x80, 0x900]);
        assert!(a.drain_dirty(3).is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let mut a = AlloyCache::new(16 * 128, 128);
        a.insert(0x80, 0);
        a.reset();
        assert_eq!(a.probe(0x80, 0), AlloyProbe::Miss);
    }

    #[test]
    fn ecc_budget_matches_paper() {
        let ecc = EccLayout::default();
        assert_eq!(ecc.spare_bits(), 56);
        // Paper: 3 remote GPUs x 32GB cached by a 2GB RDC needs ~6 tag bits.
        let gib = 1u64 << 30;
        let tag = ecc.required_tag_bits(3 * 32 * gib, 2 * gib, 128);
        assert_eq!(tag, 6);
        assert!(ecc.metadata_fits(3 * 32 * gib, 2 * gib, 128));
    }

    #[test]
    fn tiny_rdc_needs_more_tag_bits() {
        let ecc = EccLayout::default();
        let gib = 1u64 << 30;
        let small = ecc.required_tag_bits(3 * 32 * gib, gib / 2, 128);
        assert!(small > 6);
    }

    #[test]
    fn hit_rate_counts_stale_as_miss() {
        let mut a = AlloyCache::new(16 * 128, 128);
        a.insert(0x80, 0);
        a.probe(0x80, 0); // hit
        a.probe(0x80, 1); // stale
        assert!((a.hit_rate() - 0.5).abs() < 1e-9);
    }
}
