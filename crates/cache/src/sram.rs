//! Set-associative SRAM cache model (L1 / L2).
//!
//! The model tracks tags and metadata only — simulated programs have no data
//! values. Lines record whether they cache *remotely homed* memory so the
//! NUMA-GPU software-coherence flush ([`SetAssocCache::invalidate_remote`])
//! can drop exactly those lines at kernel boundaries.

/// Whether an access reads or writes the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// A dirty line pushed out by a fill, which the owner must write back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line-aligned address of the victim.
    pub addr: u64,
    /// Whether the victim cached remotely homed memory.
    pub remote: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    remote: bool,
    lru: u64,
}

/// A set-associative cache with true-LRU replacement.
///
/// Write policy is the *caller's* decision: [`SetAssocCache::probe`] updates
/// recency and reports hit/miss; the caller chooses whether to
/// [`fill`](SetAssocCache::fill) on a miss (allocate-on-miss) and whether to
/// [`mark_dirty`](SetAssocCache::mark_dirty) on stores (write-back) or to
/// propagate the store downstream (write-through).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    line_size: u64,
    lines: Vec<Line>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates a cache of `capacity_bytes` with `ways` ways and
    /// `line_size`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, capacity not
    /// divisible into at least one set, or a non-power-of-two set count —
    /// required for mask indexing).
    pub fn new(capacity_bytes: u64, ways: usize, line_size: u64) -> SetAssocCache {
        assert!(capacity_bytes > 0 && ways > 0 && line_size > 0);
        let total_lines = (capacity_bytes / line_size) as usize;
        assert!(
            total_lines >= ways,
            "capacity {capacity_bytes} too small for {ways} ways of {line_size}B lines"
        );
        let sets = total_lines / ways;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        SetAssocCache {
            sets,
            ways,
            line_size,
            lines: vec![Line::default(); sets * ways],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn index(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr / self.line_size;
        let set = (line_addr as usize) & (self.sets - 1);
        let tag = line_addr / self.sets as u64;
        (set, tag)
    }

    /// Looks up `addr`; on a hit updates recency (and dirty state for
    /// writes, so callers using write-back semantics get it for free).
    /// Returns `true` on hit.
    pub fn probe(&mut self, addr: u64, kind: AccessKind) -> bool {
        self.tick += 1;
        let (set, tag) = self.index(addr);
        let base = set * self.ways;
        for way in 0..self.ways {
            let line = &mut self.lines[base + way];
            if line.valid && line.tag == tag {
                line.lru = self.tick;
                if kind == AccessKind::Write {
                    line.dirty = true;
                }
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Looks up `addr` without disturbing recency or hit/miss statistics.
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        let base = set * self.ways;
        (0..self.ways).any(|w| {
            let l = &self.lines[base + w];
            l.valid && l.tag == tag
        })
    }

    /// Installs the line for `addr`, evicting LRU if the set is full.
    /// Returns the evicted line if it was valid *and dirty* (needs
    /// write-back); clean victims vanish silently.
    pub fn fill(&mut self, addr: u64, remote: bool) -> Option<Eviction> {
        self.tick += 1;
        let (set, tag) = self.index(addr);
        let base = set * self.ways;
        // Already present (e.g. racing fills merged by an MSHR): refresh.
        for way in 0..self.ways {
            let line = &mut self.lines[base + way];
            if line.valid && line.tag == tag {
                line.lru = self.tick;
                line.remote = remote;
                return None;
            }
        }
        // Choose an invalid way, else the LRU way.
        let mut victim = base;
        let mut best = u64::MAX;
        for way in 0..self.ways {
            let line = &self.lines[base + way];
            if !line.valid {
                victim = base + way;
                break;
            }
            if line.lru < best {
                best = line.lru;
                victim = base + way;
            }
        }
        let old = self.lines[victim];
        self.lines[victim] = Line {
            tag,
            valid: true,
            dirty: false,
            remote,
            lru: self.tick,
        };
        if old.valid && old.dirty {
            let line_addr = (old.tag * self.sets as u64 + set as u64) * self.line_size;
            Some(Eviction {
                addr: line_addr,
                remote: old.remote,
            })
        } else {
            None
        }
    }

    /// Marks the line holding `addr` dirty (no-op if absent). Returns
    /// whether the line was present.
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        let base = set * self.ways;
        for way in 0..self.ways {
            let line = &mut self.lines[base + way];
            if line.valid && line.tag == tag {
                line.dirty = true;
                return true;
            }
        }
        false
    }

    /// Invalidates the line holding `addr` if present; returns whether the
    /// invalidated line was dirty.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let (set, tag) = self.index(addr);
        let base = set * self.ways;
        for way in 0..self.ways {
            let line = &mut self.lines[base + way];
            if line.valid && line.tag == tag {
                line.valid = false;
                return Some(line.dirty);
            }
        }
        None
    }

    /// Invalidates every line (kernel-boundary L1 flush). Returns the number
    /// of lines dropped.
    pub fn invalidate_all(&mut self) -> usize {
        let mut n = 0;
        for line in &mut self.lines {
            if line.valid {
                line.valid = false;
                n += 1;
            }
        }
        n
    }

    /// Invalidates only lines caching *remote* memory (NUMA-GPU's software
    /// coherence extension to the LLC). Returns dirty remote lines that
    /// would need write-back before dropping.
    pub fn invalidate_remote(&mut self) -> Vec<Eviction> {
        let mut dirty = Vec::new();
        for set in 0..self.sets {
            for way in 0..self.ways {
                let idx = set * self.ways + way;
                let line = self.lines[idx];
                if line.valid && line.remote {
                    if line.dirty {
                        let addr = (line.tag * self.sets as u64 + set as u64) * self.line_size;
                        dirty.push(Eviction { addr, remote: true });
                    }
                    self.lines[idx].valid = false;
                }
            }
        }
        dirty
    }

    /// Total line-granularity accesses that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total line-granularity accesses that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all probes (0.0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Configured line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> SetAssocCache {
        SetAssocCache::new(4096, 4, 128) // 8 sets x 4 ways
    }

    #[test]
    fn cold_miss_then_hit_after_fill() {
        let mut c = cache();
        assert!(!c.probe(0x1000, AccessKind::Read));
        c.fill(0x1000, false);
        assert!(c.probe(0x1000, AccessKind::Read));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn same_line_different_offset_hits() {
        let mut c = cache();
        c.fill(0x1000, false);
        assert!(c.probe(0x1000 + 64, AccessKind::Read));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = cache();
        // 5 lines mapping to the same set (stride = sets * line = 8*128).
        let stride = 8 * 128u64;
        for i in 0..4 {
            c.fill(i * stride, false);
        }
        // Touch line 0 to make line 1 LRU.
        assert!(c.probe(0, AccessKind::Read));
        c.fill(4 * stride, false);
        assert!(c.contains(0));
        assert!(!c.contains(stride), "LRU line should have been evicted");
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = cache();
        let stride = 8 * 128u64;
        c.fill(0, false);
        assert!(c.mark_dirty(0));
        for i in 1..=4u64 {
            let ev = c.fill(i * stride, false);
            if i < 4 {
                assert!(ev.is_none());
            } else {
                let ev = ev.expect("dirty LRU line must be evicted with write-back");
                assert_eq!(ev.addr, 0);
            }
        }
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut c = cache();
        let stride = 8 * 128u64;
        for i in 0..=4u64 {
            assert!(c.fill(i * stride, false).is_none());
        }
    }

    #[test]
    fn write_probe_sets_dirty() {
        let mut c = cache();
        c.fill(0x80, false);
        assert!(c.probe(0x80, AccessKind::Write));
        assert_eq!(c.invalidate(0x80), Some(true));
    }

    #[test]
    fn invalidate_remote_keeps_local_lines() {
        let mut c = cache();
        c.fill(0x0000, false);
        c.fill(0x2000, true);
        c.fill(0x4000, true);
        c.mark_dirty(0x4000);
        let dirty = c.invalidate_remote();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].addr, 0x4000);
        assert!(c.contains(0x0000));
        assert!(!c.contains(0x2000));
        assert!(!c.contains(0x4000));
    }

    #[test]
    fn invalidate_all_counts_lines() {
        let mut c = cache();
        c.fill(0x0, false);
        c.fill(0x1000, false);
        assert_eq!(c.invalidate_all(), 2);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn refill_of_resident_line_does_not_evict() {
        let mut c = cache();
        c.fill(0x100, false);
        c.mark_dirty(0x100);
        assert!(c.fill(0x100, true).is_none());
        // Remote flag refreshed by the new fill.
        let dirty = c.invalidate_remote();
        assert_eq!(dirty.len(), 1);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_sets_rejected() {
        let _ = SetAssocCache::new(3 * 128 * 4, 4, 128);
    }

    #[test]
    fn hit_rate_tracks_probes() {
        let mut c = cache();
        c.fill(0, false);
        c.probe(0, AccessKind::Read);
        c.probe(0x10000, AccessKind::Read);
        assert!((c.hit_rate() - 0.5).abs() < 1e-9);
    }
}
