//! Miss Status Holding Registers.
//!
//! An [`MshrFile`] bounds the number of distinct outstanding line fills and
//! merges *secondary* misses (another access to a line already being
//! fetched) into the existing entry, so one memory response wakes every
//! waiter. Generic over the waiter token `W` (the GPU model uses warp ids;
//! tests use plain integers).

use sim_core::fast::FastMap;

/// Outcome of [`MshrFile::allocate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAllocate {
    /// First miss to this line: the caller must issue the fill downstream.
    Primary,
    /// Fill already in flight: the waiter was merged; do not issue.
    Secondary,
    /// No free entry (structural stall): retry next cycle.
    Full,
}

/// A file of miss status holding registers keyed by line address.
///
/// # Example
///
/// ```
/// use carve_cache::mshr::{MshrFile, MshrAllocate};
///
/// let mut m: MshrFile<u32> = MshrFile::new(4, 8);
/// assert_eq!(m.allocate(0x100, 1), MshrAllocate::Primary);
/// assert_eq!(m.allocate(0x100, 2), MshrAllocate::Secondary);
/// assert_eq!(m.complete(0x100), vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile<W> {
    entries: FastMap<Vec<W>>,
    capacity: usize,
    max_waiters: usize,
    merged: u64,
    stalls: u64,
}

impl<W> MshrFile<W> {
    /// Creates a file with `capacity` entries, each holding at most
    /// `max_waiters` merged waiters.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `max_waiters` is zero.
    pub fn new(capacity: usize, max_waiters: usize) -> MshrFile<W> {
        assert!(capacity > 0 && max_waiters > 0);
        MshrFile {
            entries: FastMap::with_capacity(capacity),
            capacity,
            max_waiters,
            merged: 0,
            stalls: 0,
        }
    }

    /// Registers a miss on `line_addr` for `waiter`.
    pub fn allocate(&mut self, line_addr: u64, waiter: W) -> MshrAllocate {
        if let Some(waiters) = self.entries.get_mut(line_addr) {
            if waiters.len() >= self.max_waiters {
                self.stalls += 1;
                return MshrAllocate::Full;
            }
            waiters.push(waiter);
            self.merged += 1;
            return MshrAllocate::Secondary;
        }
        if self.entries.len() >= self.capacity {
            self.stalls += 1;
            return MshrAllocate::Full;
        }
        self.entries.insert(line_addr, vec![waiter]);
        MshrAllocate::Primary
    }

    /// Completes the fill for `line_addr`, returning every merged waiter
    /// (empty if the line had no entry).
    pub fn complete(&mut self, line_addr: u64) -> Vec<W> {
        self.entries.remove(line_addr).unwrap_or_default()
    }

    /// Whether a fill for `line_addr` is outstanding.
    pub fn contains(&self, line_addr: u64) -> bool {
        self.entries.contains_key(line_addr)
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no fills are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when every entry is occupied: the next *primary* miss will
    /// stall (secondaries to in-flight lines may still merge).
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Count of merged secondary misses.
    pub fn merged(&self) -> u64 {
        self.merged
    }

    /// Count of structural stalls (allocations rejected for capacity).
    pub fn stalls(&self) -> u64 {
        self.stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_secondary_then_complete() {
        let mut m: MshrFile<u8> = MshrFile::new(2, 4);
        assert_eq!(m.allocate(0x80, 1), MshrAllocate::Primary);
        assert_eq!(m.allocate(0x80, 2), MshrAllocate::Secondary);
        assert!(m.contains(0x80));
        assert_eq!(m.complete(0x80), vec![1, 2]);
        assert!(!m.contains(0x80));
        assert_eq!(m.merged(), 1);
    }

    #[test]
    fn capacity_limit_stalls_new_lines() {
        let mut m: MshrFile<u8> = MshrFile::new(1, 4);
        assert_eq!(m.allocate(0x80, 1), MshrAllocate::Primary);
        assert_eq!(m.allocate(0x100, 2), MshrAllocate::Full);
        assert_eq!(m.stalls(), 1);
        // Secondary to the existing line still merges.
        assert_eq!(m.allocate(0x80, 3), MshrAllocate::Secondary);
    }

    #[test]
    fn waiter_limit_stalls_merges() {
        let mut m: MshrFile<u8> = MshrFile::new(4, 2);
        m.allocate(0x80, 1);
        m.allocate(0x80, 2);
        assert_eq!(m.allocate(0x80, 3), MshrAllocate::Full);
    }

    #[test]
    fn complete_unknown_line_is_empty() {
        let mut m: MshrFile<u8> = MshrFile::new(4, 2);
        assert!(m.complete(0xdead).is_empty());
        assert!(m.is_empty());
    }

    #[test]
    fn capacity_and_fullness_visible() {
        let mut m: MshrFile<u8> = MshrFile::new(2, 4);
        assert_eq!(m.capacity(), 2);
        assert!(!m.is_full());
        m.allocate(0x0, 0);
        m.allocate(0x80, 1);
        assert!(m.is_full());
        m.complete(0x0);
        assert!(!m.is_full());
    }

    #[test]
    fn len_tracks_entries() {
        let mut m: MshrFile<u8> = MshrFile::new(4, 2);
        m.allocate(0x0, 0);
        m.allocate(0x80, 1);
        assert_eq!(m.len(), 2);
        m.complete(0x0);
        assert_eq!(m.len(), 1);
    }
}
