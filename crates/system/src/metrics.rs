//! Results of one simulation run.

use crate::design::Design;
use carve::RdcStats;
use carve_dram::DramStats;
use sim_core::profile::ProfileReport;
use sim_core::telemetry::Timeline;
use sim_core::{Histogram, RecoverySnapshot};

/// Everything measured by one [`crate::run`] invocation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Workload name.
    pub workload: String,
    /// The simulated design.
    pub design: Design,
    /// Total simulated cycles (including kernel launch gaps).
    pub cycles: u64,
    /// Warp instructions retired across all GPUs.
    pub instructions: u64,
    /// Kernels executed.
    pub kernels: usize,
    /// Memory requests serviced from local GPU memory (including RDC hits).
    pub local_serviced: u64,
    /// Memory requests serviced remotely (peer GPU memory or system
    /// memory over the links).
    pub remote_serviced: u64,
    /// Of the remote requests, those answered by system (CPU) memory.
    pub cpu_serviced: u64,
    /// Requests answered by an RDC hit (subset of `local_serviced`).
    pub rdc_hits_serviced: u64,
    /// Aggregated RDC statistics (zero for non-CARVE designs).
    pub rdc: RdcStats,
    /// Bytes moved over inter-GPU links.
    pub link_bytes: u64,
    /// Bytes moved over CPU links.
    pub cpu_link_bytes: u64,
    /// Page migrations performed.
    pub migrations: u64,
    /// Hardware-coherence write-invalidate broadcasts (IMST decisions).
    pub broadcasts: u64,
    /// Targeted invalidate messages under directory coherence.
    pub directory_invalidates: u64,
    /// Aggregated DRAM statistics across GPUs.
    pub dram: DramStats,
    /// L2 hits across GPUs.
    pub l2_hits: u64,
    /// L2 misses across GPUs.
    pub l2_misses: u64,
    /// L1 hits across GPUs.
    pub l1_hits: u64,
    /// L1 misses across GPUs.
    pub l1_misses: u64,
    /// Issue replays due to back-pressure.
    pub replays: u64,
    /// Secondary misses merged in MSHRs.
    pub mshr_merges: u64,
    /// Latency distribution of warp-visible read misses (cycles from L2
    /// miss to fill).
    pub read_latency: Histogram,
    /// Whether the run drained before `max_cycles`.
    pub completed: bool,
    /// Interval telemetry samples, present when sampling was enabled
    /// (`SimConfig::telemetry_interval` / `CARVE_TELEMETRY_INTERVAL`).
    /// Deliberately excluded from the campaign journal: the journal's
    /// 36-field line format is a stable resume contract, and timelines can
    /// be arbitrarily large. Results decoded from a journal carry `None`.
    pub timeline: Option<Timeline>,
    /// Cycle-accounting stall breakdown, present when profiling was
    /// enabled (`SimConfig::cycle_profile` / `--profile`). Like the
    /// timeline it is excluded from the 36-field journal encoding —
    /// campaigns that want per-point breakdowns journal a compact
    /// sidecar instead — so results decoded from a journal carry `None`.
    pub profile: Option<ProfileReport>,
    /// Recovery accounting, present when a fault plan was armed
    /// (`SimConfig::fault_plan` / `--faults`). Like the timeline it is
    /// excluded from the 36-field journal encoding — the faulted-ness of
    /// a campaign point lives in its *key*, not its result line — so
    /// results decoded from a journal carry `None`.
    pub recovery: Option<RecoverySnapshot>,
}

impl SimResult {
    /// Warp instructions per cycle across the whole system.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Fraction of post-LLC memory requests serviced remotely (Figure 8).
    /// RDC hits count as local — that is CARVE's whole point.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local_serviced + self.remote_serviced;
        if total == 0 {
            0.0
        } else {
            self.remote_serviced as f64 / total as f64
        }
    }

    /// Speedup of this run relative to `baseline` (same workload).
    ///
    /// # Panics
    ///
    /// Debug builds panic if the runs simulate different workloads (a
    /// cross-workload cycle ratio is always a harness bug); release
    /// builds fall back to 0.0 so one malformed grid cell cannot take
    /// down a whole campaign. Use [`SimResult::try_speedup_over`] to
    /// handle the mismatch explicitly.
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        debug_assert_eq!(
            self.workload, baseline.workload,
            "speedup comparisons must share a workload"
        );
        self.try_speedup_over(baseline).unwrap_or(0.0)
    }

    /// Speedup of this run relative to `baseline`, or `None` when the
    /// runs simulate different workloads (the non-panicking form of
    /// [`SimResult::speedup_over`]).
    pub fn try_speedup_over(&self, baseline: &SimResult) -> Option<f64> {
        if self.workload != baseline.workload {
            return None;
        }
        if self.cycles == 0 {
            return Some(0.0);
        }
        Some(baseline.cycles as f64 / self.cycles as f64)
    }

    /// Performance relative to `reference` expressed as reference-cycles /
    /// own-cycles (1.0 = parity, <1 = slower than the reference).
    ///
    /// # Panics
    ///
    /// Debug builds panic on a cross-workload comparison (see
    /// [`SimResult::speedup_over`]); release builds fall back to 0.0. Use
    /// [`SimResult::try_performance_vs`] to handle the mismatch
    /// explicitly.
    pub fn performance_vs(&self, reference: &SimResult) -> f64 {
        debug_assert_eq!(
            self.workload, reference.workload,
            "performance comparisons must share a workload"
        );
        self.try_performance_vs(reference).unwrap_or(0.0)
    }

    /// Performance relative to `reference`, or `None` when the runs
    /// simulate different workloads (the non-panicking form of
    /// [`SimResult::performance_vs`]).
    pub fn try_performance_vs(&self, reference: &SimResult) -> Option<f64> {
        self.try_speedup_over(reference)
    }

    /// Serializes every field into one tab-separated journal line (no
    /// trailing newline). [`SimResult::decode_journal_line`] restores the
    /// exact value, so campaign tables rebuilt from a journal are
    /// byte-identical to tables from live runs.
    ///
    /// # Panics
    ///
    /// Panics if the workload name contains a tab or newline (no real
    /// workload does; this guards the journal's framing).
    pub fn encode_journal_line(&self) -> String {
        assert!(
            !self.workload.contains(['\t', '\n']),
            "workload name {:?} would break journal framing",
            self.workload
        );
        let f: Vec<String> = vec![
            self.workload.clone(),
            self.design.label().to_string(),
            self.cycles.to_string(),
            self.instructions.to_string(),
            self.kernels.to_string(),
            self.local_serviced.to_string(),
            self.remote_serviced.to_string(),
            self.cpu_serviced.to_string(),
            self.rdc_hits_serviced.to_string(),
            self.rdc.hits.to_string(),
            self.rdc.misses.to_string(),
            self.rdc.stale_misses.to_string(),
            self.rdc.insertions.to_string(),
            self.rdc.store_updates.to_string(),
            self.rdc.invalidations.to_string(),
            self.rdc.epoch_bumps.to_string(),
            self.rdc.rollover_resets.to_string(),
            self.link_bytes.to_string(),
            self.cpu_link_bytes.to_string(),
            self.migrations.to_string(),
            self.broadcasts.to_string(),
            self.directory_invalidates.to_string(),
            self.dram.reads.to_string(),
            self.dram.writes.to_string(),
            self.dram.row_hits.to_string(),
            self.dram.row_misses.to_string(),
            self.dram.bytes_transferred.to_string(),
            self.dram.queue_rejections.to_string(),
            self.l2_hits.to_string(),
            self.l2_misses.to_string(),
            self.l1_hits.to_string(),
            self.l1_misses.to_string(),
            self.replays.to_string(),
            self.mshr_merges.to_string(),
            self.read_latency.encode(),
            self.completed.to_string(),
        ];
        f.join("\t")
    }

    /// Parses a line produced by [`SimResult::encode_journal_line`].
    /// Returns `None` on any malformed or truncated input (a partially
    /// written trailing line after a crash must not poison the resume).
    pub fn decode_journal_line(line: &str) -> Option<SimResult> {
        let mut f = line.split('\t');
        let u = |f: &mut std::str::Split<'_, char>| f.next()?.parse::<u64>().ok();
        let workload = f.next()?.to_string();
        let design = Design::from_label(f.next()?)?;
        let cycles = u(&mut f)?;
        let instructions = u(&mut f)?;
        let kernels = f.next()?.parse::<usize>().ok()?;
        let local_serviced = u(&mut f)?;
        let remote_serviced = u(&mut f)?;
        let cpu_serviced = u(&mut f)?;
        let rdc_hits_serviced = u(&mut f)?;
        let rdc = RdcStats {
            hits: u(&mut f)?,
            misses: u(&mut f)?,
            stale_misses: u(&mut f)?,
            insertions: u(&mut f)?,
            store_updates: u(&mut f)?,
            invalidations: u(&mut f)?,
            epoch_bumps: u(&mut f)?,
            rollover_resets: u(&mut f)?,
        };
        let link_bytes = u(&mut f)?;
        let cpu_link_bytes = u(&mut f)?;
        let migrations = u(&mut f)?;
        let broadcasts = u(&mut f)?;
        let directory_invalidates = u(&mut f)?;
        let dram = DramStats {
            reads: u(&mut f)?,
            writes: u(&mut f)?,
            row_hits: u(&mut f)?,
            row_misses: u(&mut f)?,
            bytes_transferred: u(&mut f)?,
            queue_rejections: u(&mut f)?,
        };
        let l2_hits = u(&mut f)?;
        let l2_misses = u(&mut f)?;
        let l1_hits = u(&mut f)?;
        let l1_misses = u(&mut f)?;
        let replays = u(&mut f)?;
        let mshr_merges = u(&mut f)?;
        let read_latency = Histogram::decode(f.next()?)?;
        let completed = match f.next()? {
            "true" => true,
            "false" => false,
            _ => return None,
        };
        if f.next().is_some() {
            return None; // trailing garbage: treat as corrupt
        }
        Some(SimResult {
            workload,
            design,
            cycles,
            instructions,
            kernels,
            local_serviced,
            remote_serviced,
            cpu_serviced,
            rdc_hits_serviced,
            rdc,
            link_bytes,
            cpu_link_bytes,
            migrations,
            broadcasts,
            directory_invalidates,
            dram,
            l2_hits,
            l2_misses,
            l1_hits,
            l1_misses,
            replays,
            mshr_merges,
            read_latency,
            completed,
            timeline: None,
            profile: None,
            recovery: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(workload: &str, cycles: u64) -> SimResult {
        SimResult {
            workload: workload.to_string(),
            design: Design::NumaGpu,
            cycles,
            instructions: 1000,
            kernels: 1,
            local_serviced: 60,
            remote_serviced: 40,
            cpu_serviced: 0,
            rdc_hits_serviced: 0,
            rdc: RdcStats::default(),
            link_bytes: 0,
            cpu_link_bytes: 0,
            migrations: 0,
            broadcasts: 0,
            directory_invalidates: 0,
            dram: DramStats::default(),
            l2_hits: 0,
            l2_misses: 0,
            l1_hits: 0,
            l1_misses: 0,
            replays: 0,
            mshr_merges: 0,
            read_latency: Histogram::new(),
            completed: true,
            timeline: None,
            profile: None,
            recovery: None,
        }
    }

    #[test]
    fn remote_fraction_and_ipc() {
        let r = result("w", 500);
        assert!((r.remote_fraction() - 0.4).abs() < 1e-12);
        assert!((r.ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let fast = result("w", 100);
        let slow = result("w", 400);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
        assert!((slow.performance_vs(&fast) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "share a workload")]
    fn cross_workload_speedup_panics() {
        let a = result("a", 100);
        let b = result("b", 100);
        let _ = a.speedup_over(&b);
    }

    #[test]
    fn try_speedup_over_reports_mismatch_without_panicking() {
        let a = result("a", 100);
        let b = result("b", 100);
        assert_eq!(a.try_speedup_over(&b), None);
        let c = result("a", 400);
        assert_eq!(a.try_speedup_over(&c), Some(4.0));
        let idle = result("a", 0);
        assert_eq!(idle.try_speedup_over(&c), Some(0.0));
    }

    #[test]
    fn journal_line_excludes_timeline_and_decodes_to_none() {
        let mut r = result("w", 10);
        let without = r.encode_journal_line();
        r.timeline = Some(Timeline::new(100));
        r.profile = Some(ProfileReport {
            cycles: 10,
            sms_per_gpu: 2,
            gpus: vec![[1u64; sim_core::NUM_STALL_CATS]],
            intervals: Vec::new(),
            dram: Vec::new(),
            links: Vec::new(),
        });
        r.recovery = Some(RecoverySnapshot {
            faults_applied: 3,
            reroutes: 2,
            ..RecoverySnapshot::default()
        });
        let with = r.encode_journal_line();
        // Neither the timeline, the stall profile, nor the recovery
        // accounting may leak into the stable 36-field journal format.
        assert_eq!(with, without);
        let back = SimResult::decode_journal_line(&with).expect("well-formed");
        assert!(back.timeline.is_none());
        assert!(back.profile.is_none());
        assert!(back.recovery.is_none());
    }

    #[test]
    fn journal_line_round_trips_every_field() {
        let mut r = result("Lulesh", 12345);
        r.design = Design::CarveHwc;
        r.rdc = RdcStats {
            hits: 1,
            misses: 2,
            stale_misses: 3,
            insertions: 4,
            store_updates: 5,
            invalidations: 6,
            epoch_bumps: 7,
            rollover_resets: 8,
        };
        r.dram = DramStats {
            reads: 11,
            writes: 12,
            row_hits: 13,
            row_misses: 14,
            bytes_transferred: 15,
            queue_rejections: 16,
        };
        r.read_latency.record(100);
        r.read_latency.record(9000);
        let line = r.encode_journal_line();
        assert!(!line.contains('\n'));
        let back = SimResult::decode_journal_line(&line).expect("well-formed");
        assert_eq!(back.workload, r.workload);
        assert_eq!(back.design, r.design);
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(back.rdc, r.rdc);
        assert_eq!(back.dram, r.dram);
        assert_eq!(back.read_latency, r.read_latency);
        assert_eq!(back.completed, r.completed);
        // And the re-encoding is byte-identical (resume determinism).
        assert_eq!(back.encode_journal_line(), line);
    }

    #[test]
    fn truncated_journal_line_is_rejected_not_misparsed() {
        let line = result("w", 10).encode_journal_line();
        for cut in [1, line.len() / 2, line.len() - 1] {
            assert!(
                SimResult::decode_journal_line(&line[..cut]).is_none(),
                "accepted a truncated line cut at {cut}"
            );
        }
        assert!(SimResult::decode_journal_line(&format!("{line}\textra")).is_none());
        assert!(SimResult::decode_journal_line("").is_none());
    }
}
