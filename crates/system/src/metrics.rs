//! Results of one simulation run.

use crate::design::Design;
use carve::RdcStats;
use carve_dram::DramStats;
use sim_core::Histogram;

/// Everything measured by one [`crate::run`] invocation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Workload name.
    pub workload: String,
    /// The simulated design.
    pub design: Design,
    /// Total simulated cycles (including kernel launch gaps).
    pub cycles: u64,
    /// Warp instructions retired across all GPUs.
    pub instructions: u64,
    /// Kernels executed.
    pub kernels: usize,
    /// Memory requests serviced from local GPU memory (including RDC hits).
    pub local_serviced: u64,
    /// Memory requests serviced remotely (peer GPU memory or system
    /// memory over the links).
    pub remote_serviced: u64,
    /// Of the remote requests, those answered by system (CPU) memory.
    pub cpu_serviced: u64,
    /// Requests answered by an RDC hit (subset of `local_serviced`).
    pub rdc_hits_serviced: u64,
    /// Aggregated RDC statistics (zero for non-CARVE designs).
    pub rdc: RdcStats,
    /// Bytes moved over inter-GPU links.
    pub link_bytes: u64,
    /// Bytes moved over CPU links.
    pub cpu_link_bytes: u64,
    /// Page migrations performed.
    pub migrations: u64,
    /// Hardware-coherence write-invalidate broadcasts (IMST decisions).
    pub broadcasts: u64,
    /// Targeted invalidate messages under directory coherence.
    pub directory_invalidates: u64,
    /// Aggregated DRAM statistics across GPUs.
    pub dram: DramStats,
    /// L2 hits across GPUs.
    pub l2_hits: u64,
    /// L2 misses across GPUs.
    pub l2_misses: u64,
    /// L1 hits across GPUs.
    pub l1_hits: u64,
    /// L1 misses across GPUs.
    pub l1_misses: u64,
    /// Issue replays due to back-pressure.
    pub replays: u64,
    /// Secondary misses merged in MSHRs.
    pub mshr_merges: u64,
    /// Latency distribution of warp-visible read misses (cycles from L2
    /// miss to fill).
    pub read_latency: Histogram,
    /// Whether the run drained before `max_cycles`.
    pub completed: bool,
}

impl SimResult {
    /// Warp instructions per cycle across the whole system.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Fraction of post-LLC memory requests serviced remotely (Figure 8).
    /// RDC hits count as local — that is CARVE's whole point.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local_serviced + self.remote_serviced;
        if total == 0 {
            0.0
        } else {
            self.remote_serviced as f64 / total as f64
        }
    }

    /// Speedup of this run relative to `baseline` (same workload).
    ///
    /// # Panics
    ///
    /// Panics if the runs simulate different workloads.
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        assert_eq!(
            self.workload, baseline.workload,
            "speedup comparisons must share a workload"
        );
        if self.cycles == 0 {
            return 0.0;
        }
        baseline.cycles as f64 / self.cycles as f64
    }

    /// Performance relative to `reference` expressed as reference-cycles /
    /// own-cycles (1.0 = parity, <1 = slower than the reference).
    pub fn performance_vs(&self, reference: &SimResult) -> f64 {
        self.speedup_over(reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(workload: &str, cycles: u64) -> SimResult {
        SimResult {
            workload: workload.to_string(),
            design: Design::NumaGpu,
            cycles,
            instructions: 1000,
            kernels: 1,
            local_serviced: 60,
            remote_serviced: 40,
            cpu_serviced: 0,
            rdc_hits_serviced: 0,
            rdc: RdcStats::default(),
            link_bytes: 0,
            cpu_link_bytes: 0,
            migrations: 0,
            broadcasts: 0,
            directory_invalidates: 0,
            dram: DramStats::default(),
            l2_hits: 0,
            l2_misses: 0,
            l1_hits: 0,
            l1_misses: 0,
            replays: 0,
            mshr_merges: 0,
            read_latency: Histogram::new(),
            completed: true,
        }
    }

    #[test]
    fn remote_fraction_and_ipc() {
        let r = result("w", 500);
        assert!((r.remote_fraction() - 0.4).abs() < 1e-12);
        assert!((r.ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let fast = result("w", 100);
        let slow = result("w", 400);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
        assert!((slow.performance_vs(&fast) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "share a workload")]
    fn cross_workload_speedup_panics() {
        let a = result("a", 100);
        let b = result("b", 100);
        let _ = a.speedup_over(&b);
    }
}
