//! Chaos harness: randomized fault-injection scenarios with the protocol
//! sanitizer and the watchdog as oracles.
//!
//! A [`ChaosScenario`] is one (workload × design × machine × fault plan)
//! draw. [`ChaosScenario::random`] generates them deterministically from a
//! seed; [`ChaosScenario::run_both_engines`] executes one under event-skip
//! *and* stepping, demands the engines agree (byte-identical journals on
//! success, same outcome class on failure), and classifies the result as a
//! [`ChaosOutcome`]. Scenarios whose oracle fired are shrunk by
//! [`minimize`] (greedy fault-event removal) and serialized as replayable
//! fixture files (`#carve-chaos v1` key=value format) that
//! `tests/chaos.rs` replays as a regression corpus.
//!
//! The contract being fuzzed: *graceful* fault plans (no packet
//! drop/dup) must either complete or fail cleanly with
//! `FabricPartitioned`; any watchdog stall or sanitizer violation under a
//! graceful plan — and any engine divergence at all — is a simulator bug.
//! Lossy plans are oracle bait: the sanitizer or watchdog is expected to
//! catch the injected misbehaviour, and the dumped fixtures pin that the
//! oracles keep catching it.

use carve_trace::WorkloadSpec;
use sim_core::rng::Stream;
use sim_core::{FaultPlan, SimError, TopologySpec};

use crate::design::{Design, SimConfig};
use crate::sim::{try_run_with_profile_mode, EngineMode};

/// Workloads the fuzzer draws from: a mix of sharing patterns (stencil,
/// random-access, streaming, graph) keeps the fault surface broad while
/// every run stays sub-second after shrinking.
const WORKLOAD_POOL: [&str; 5] = ["Lulesh", "XSBench", "CoMD", "stream-triad", "SSSP"];

/// Designs the fuzzer draws from: the plain NUMA baseline plus both
/// coherent CARVE flavours (hardware coherence exercises invalidate
/// traffic, software coherence exercises epoch flushes).
const DESIGN_POOL: [Design; 3] = [Design::NumaGpu, Design::CarveHwc, Design::CarveSwc];

/// Machine shapes the fuzzer draws from. Every pair is valid by
/// construction (`SimConfig::validate` accepts all of them), covering
/// single-hop meshes, a switched fabric, a ring, and hierarchical pods.
const MACHINE_POOL: [(usize, TopologySpec); 6] = [
    (2, TopologySpec::AllToAll),
    (3, TopologySpec::AllToAll),
    (4, TopologySpec::AllToAll),
    (4, TopologySpec::Switch),
    (8, TopologySpec::Ring),
    (8, TopologySpec::Hierarchical { pod_size: 4 }),
];

/// Fault-plan horizon for generated scenarios: inside the runtime of
/// every shrunk workload, so events actually land mid-run.
const PLAN_HORIZON: u64 = 20_000;

/// Watchdog budget for chaos runs: small enough that a hung scenario is
/// classified in well under a second, large enough that no healthy
/// (even heavily degraded) shrunk run comes near it.
const CHAOS_WATCHDOG: u64 = 60_000;

/// Cycle cap for chaos runs (shrunk runs finish in tens of thousands).
const CHAOS_MAX_CYCLES: u64 = 4_000_000;

/// One randomized or replayed chaos draw.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosScenario {
    /// Workload name (shrunk to the fixture shape by [`ChaosScenario::spec`]).
    pub workload: String,
    /// System design under test.
    pub design: Design,
    /// GPU count.
    pub gpus: usize,
    /// Interconnect topology.
    pub topology: TopologySpec,
    /// Whether the protocol sanitizer oracle is armed (always true for
    /// fuzzer-generated scenarios).
    pub sanitize: bool,
    /// The injected fault schedule.
    pub plan: FaultPlan,
}

/// How a chaos run ended, as one comparable class per oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// The run completed (graceful degradation absorbed the plan).
    Completed,
    /// The watchdog caught a hang (e.g. a dropped response starved a
    /// requester forever).
    Watchdog,
    /// A link outage severed the fabric; the run aborted cleanly.
    Partitioned,
    /// The sanitizer caught the named invariant being broken.
    Sanitizer(String),
    /// The run hit the hard cycle cap before any oracle fired.
    Exhausted,
    /// Anything else (configuration rejection mid-fuzz is a harness bug).
    Other(String),
}

impl ChaosOutcome {
    /// Stable text form used in fixture `expect=` lines.
    pub fn encode(&self) -> String {
        match self {
            ChaosOutcome::Completed => "ok".into(),
            ChaosOutcome::Watchdog => "watchdog".into(),
            ChaosOutcome::Partitioned => "partitioned".into(),
            ChaosOutcome::Sanitizer(invariant) => format!("sanitizer:{invariant}"),
            ChaosOutcome::Exhausted => "exhausted".into(),
            ChaosOutcome::Other(msg) => format!("other:{msg}"),
        }
    }

    /// Inverse of [`ChaosOutcome::encode`].
    pub fn parse(s: &str) -> ChaosOutcome {
        match s {
            "ok" => ChaosOutcome::Completed,
            "watchdog" => ChaosOutcome::Watchdog,
            "partitioned" => ChaosOutcome::Partitioned,
            "exhausted" => ChaosOutcome::Exhausted,
            _ => match s.split_once(':') {
                Some(("sanitizer", inv)) => ChaosOutcome::Sanitizer(inv.to_string()),
                Some(("other", msg)) => ChaosOutcome::Other(msg.to_string()),
                _ => ChaosOutcome::Other(s.to_string()),
            },
        }
    }

    fn classify(result: &Result<crate::SimResult, SimError>) -> ChaosOutcome {
        match result {
            Ok(_) => ChaosOutcome::Completed,
            Err(SimError::WatchdogStall { .. }) => ChaosOutcome::Watchdog,
            Err(SimError::FabricPartitioned { .. }) => ChaosOutcome::Partitioned,
            Err(SimError::SanitizerViolation { invariant, .. }) => {
                ChaosOutcome::Sanitizer(invariant.clone())
            }
            Err(SimError::ResourceExhausted { .. }) => ChaosOutcome::Exhausted,
            Err(e) => ChaosOutcome::Other(e.to_string()),
        }
    }
}

impl ChaosScenario {
    /// Deterministically generates scenario `index` of seed `seed`.
    /// Fault plans are lossy-enabled (oracle bait) with probability ~1/2.
    pub fn random(seed: u64, index: u64) -> ChaosScenario {
        let mut rng = Stream::from_parts(&[seed, index]);
        let workload = WORKLOAD_POOL[rng.gen_range(0, WORKLOAD_POOL.len() as u64) as usize];
        let design = DESIGN_POOL[rng.gen_range(0, DESIGN_POOL.len() as u64) as usize];
        let (gpus, topology) = MACHINE_POOL[rng.gen_range(0, MACHINE_POOL.len() as u64) as usize];
        let allow_lossy = rng.gen_bool(0.5);
        let intensity = rng.gen_f64();
        let plan = FaultPlan::random(&mut rng, PLAN_HORIZON, intensity, allow_lossy);
        ChaosScenario {
            workload: workload.to_string(),
            design,
            gpus,
            topology,
            sanitize: true,
            plan,
        }
    }

    /// The shrunk workload spec this scenario runs (the `v1` fixture
    /// shape: ≤2 kernels, 16 CTAs, 60 instructions per warp).
    pub fn spec(&self) -> Option<WorkloadSpec> {
        let mut spec = crate::workloads::by_name(&self.workload)?;
        spec.shape.kernels = spec.shape.kernels.min(2);
        spec.shape.ctas = 16;
        spec.shape.instrs_per_warp = 60;
        Some(spec)
    }

    /// The simulation config this scenario runs (the `v1` quick machine:
    /// 2 SMs × 8 warps per GPU, chaos watchdog/cap, telemetry off).
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = sim_core::ScaledConfig {
            sms_per_gpu: 2,
            warps_per_sm: 8,
            ..sim_core::ScaledConfig::default()
        };
        cfg.num_gpus = self.gpus;
        cfg.topology = self.topology;
        let mut sim = SimConfig::with_cfg(self.design, cfg);
        sim.sanitize = Some(self.sanitize);
        sim.telemetry_interval = Some(0);
        sim.watchdog_cycles = Some(CHAOS_WATCHDOG);
        sim.max_cycles = CHAOS_MAX_CYCLES;
        sim.fault_plan = Some(self.plan.clone());
        sim
    }

    /// Runs the scenario under one engine and classifies the result.
    pub fn run(&self, mode: EngineMode) -> ChaosOutcome {
        let Some(spec) = self.spec() else {
            return ChaosOutcome::Other(format!("unknown workload {:?}", self.workload));
        };
        match run_guarded(&spec, &self.sim_config(), mode) {
            Ok(result) => ChaosOutcome::classify(&result),
            Err(panic_msg) => ChaosOutcome::Other(format!("panic: {panic_msg}")),
        }
    }

    /// Runs the scenario under *both* engines and demands they agree:
    /// same outcome class, and byte-identical journal lines when both
    /// complete.
    ///
    /// # Errors
    ///
    /// Returns a description of the divergence — always a simulator bug,
    /// never an acceptable fuzz finding.
    pub fn run_both_engines(&self) -> Result<ChaosOutcome, String> {
        let Some(spec) = self.spec() else {
            return Err(format!("unknown workload {:?}", self.workload));
        };
        let sim = self.sim_config();
        let skip = run_guarded(&spec, &sim, EngineMode::EventSkip)
            .map_err(|m| format!("panic under event-skip on {}: {m}", self.encode_compact()))?;
        let step = run_guarded(&spec, &sim, EngineMode::Step)
            .map_err(|m| format!("panic under step on {}: {m}", self.encode_compact()))?;
        let (o_skip, o_step) = (ChaosOutcome::classify(&skip), ChaosOutcome::classify(&step));
        if o_skip != o_step {
            return Err(format!(
                "engine divergence on {}: event-skip {} vs step {}",
                self.encode_compact(),
                o_skip.encode(),
                o_step.encode()
            ));
        }
        if let (Ok(a), Ok(b)) = (&skip, &step) {
            if a.encode_journal_line() != b.encode_journal_line() {
                return Err(format!(
                    "engine divergence on {}: completed with different journals",
                    self.encode_compact()
                ));
            }
            if a.recovery != b.recovery {
                return Err(format!(
                    "engine divergence on {}: different recovery accounting",
                    self.encode_compact()
                ));
            }
        }
        Ok(o_skip)
    }

    /// One-line rendering for fuzz logs.
    pub fn encode_compact(&self) -> String {
        format!(
            "{} design={} gpus={} topo={} faults={}",
            self.workload,
            self.design.label(),
            self.gpus,
            self.topology.label(),
            self.plan.encode()
        )
    }
}

/// Runs one engine with a panic guard, so a simulator panic becomes a
/// reported fuzz failure (with its message) instead of killing the whole
/// fuzz loop — the scenario that triggered it is the finding.
fn run_guarded(
    spec: &WorkloadSpec,
    sim: &SimConfig,
    mode: EngineMode,
) -> Result<Result<crate::SimResult, SimError>, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        try_run_with_profile_mode(spec, sim, None, mode)
    }))
    .map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string())
    })
}

/// A scenario plus its recorded outcome: the unit of the replay corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosFixture {
    /// The scenario to replay.
    pub scenario: ChaosScenario,
    /// The outcome the replay must reproduce (under both engines).
    pub expect: ChaosOutcome,
}

impl ChaosFixture {
    /// Serializes the fixture as the `#carve-chaos v1` key=value format.
    pub fn encode(&self) -> String {
        let s = &self.scenario;
        format!(
            "#carve-chaos v1\nworkload={}\ndesign={}\ngpus={}\ntopology={}\nsanitize={}\nfaults={}\nexpect={}\n",
            s.workload,
            s.design.label(),
            s.gpus,
            s.topology.label(),
            s.sanitize,
            s.plan.encode(),
            self.expect.encode(),
        )
    }

    /// Parses a fixture file produced by [`ChaosFixture::encode`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed line or missing key.
    pub fn parse(text: &str) -> Result<ChaosFixture, String> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        if header.trim() != "#carve-chaos v1" {
            return Err(format!("chaos fixture: bad header {header:?}"));
        }
        let mut workload = None;
        let mut design = None;
        let mut gpus = None;
        let mut topology = None;
        let mut sanitize = None;
        let mut faults = None;
        let mut expect = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("chaos fixture: line {line:?} is not key=value"))?;
            match key {
                "workload" => workload = Some(value.to_string()),
                "design" => {
                    design = Some(
                        Design::from_label(value)
                            .ok_or_else(|| format!("chaos fixture: unknown design {value:?}"))?,
                    );
                }
                "gpus" => {
                    gpus = Some(
                        value
                            .parse::<usize>()
                            .map_err(|_| format!("chaos fixture: bad gpus {value:?}"))?,
                    );
                }
                "topology" => {
                    topology = Some(
                        TopologySpec::from_label(value)
                            .ok_or_else(|| format!("chaos fixture: unknown topology {value:?}"))?,
                    );
                }
                "sanitize" => sanitize = Some(value == "true"),
                "faults" => faults = Some(FaultPlan::parse(value)?),
                "expect" => expect = Some(ChaosOutcome::parse(value)),
                other => return Err(format!("chaos fixture: unknown key {other:?}")),
            }
        }
        let missing = |what: &str| format!("chaos fixture: missing {what}=");
        Ok(ChaosFixture {
            scenario: ChaosScenario {
                workload: workload.ok_or_else(|| missing("workload"))?,
                design: design.ok_or_else(|| missing("design"))?,
                gpus: gpus.ok_or_else(|| missing("gpus"))?,
                topology: topology.ok_or_else(|| missing("topology"))?,
                sanitize: sanitize.ok_or_else(|| missing("sanitize"))?,
                plan: faults.ok_or_else(|| missing("faults"))?,
            },
            expect: expect.ok_or_else(|| missing("expect"))?,
        })
    }
}

/// Greedily shrinks a scenario's fault plan: repeatedly drops any single
/// event whose removal preserves the outcome, until no event can be
/// removed. Deterministic (first-removable-event order), and every probe
/// runs under one engine only — the caller re-verifies the minimized
/// scenario under both.
pub fn minimize(
    scenario: &ChaosScenario,
    expect: &ChaosOutcome,
    mode: EngineMode,
) -> ChaosScenario {
    let mut current = scenario.clone();
    'shrink: loop {
        for i in 0..current.plan.len() {
            let mut candidate = current.clone();
            candidate.plan = current.plan.without_event(i);
            if candidate.run(mode) == *expect {
                current = candidate;
                continue 'shrink;
            }
        }
        return current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_encoding_round_trips() {
        for o in [
            ChaosOutcome::Completed,
            ChaosOutcome::Watchdog,
            ChaosOutcome::Partitioned,
            ChaosOutcome::Sanitizer("noc-conservation".into()),
            ChaosOutcome::Exhausted,
            ChaosOutcome::Other("boom".into()),
        ] {
            assert_eq!(ChaosOutcome::parse(&o.encode()), o);
        }
    }

    #[test]
    fn fixture_round_trips_through_text() {
        let fixture = ChaosFixture {
            scenario: ChaosScenario {
                workload: "Lulesh".into(),
                design: Design::CarveHwc,
                gpus: 4,
                topology: TopologySpec::Switch,
                sanitize: true,
                plan: FaultPlan::parse("dup@500:n1,freeze@900+50").unwrap(),
            },
            expect: ChaosOutcome::Sanitizer("noc-conservation".into()),
        };
        let text = fixture.encode();
        assert!(text.starts_with("#carve-chaos v1\n"));
        let back = ChaosFixture::parse(&text).expect("round trip");
        assert_eq!(back, fixture);
    }

    #[test]
    fn fixture_parse_rejects_malformed_input() {
        assert!(ChaosFixture::parse("").is_err());
        assert!(ChaosFixture::parse("#carve-chaos v2\n").is_err());
        let ok = ChaosFixture {
            scenario: ChaosScenario {
                workload: "Lulesh".into(),
                design: Design::NumaGpu,
                gpus: 2,
                topology: TopologySpec::AllToAll,
                sanitize: true,
                plan: FaultPlan::new(),
            },
            expect: ChaosOutcome::Completed,
        }
        .encode();
        // Dropping any one required line must fail with a named key.
        for skip in 1..7 {
            let broken: String = ok
                .lines()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, l)| format!("{l}\n"))
                .collect();
            assert!(ChaosFixture::parse(&broken).is_err(), "line {skip}");
        }
        assert!(ChaosFixture::parse("#carve-chaos v1\nnonsense\n").is_err());
    }

    #[test]
    fn random_scenarios_are_seed_deterministic_and_valid() {
        for i in 0..12 {
            let a = ChaosScenario::random(7, i);
            let b = ChaosScenario::random(7, i);
            assert_eq!(a, b);
            assert!(a.spec().is_some(), "unknown workload {:?}", a.workload);
            a.sim_config()
                .validate()
                .unwrap_or_else(|e| panic!("scenario {i} invalid: {e}"));
            assert!(!a.plan.is_empty());
        }
        assert_ne!(ChaosScenario::random(7, 0), ChaosScenario::random(8, 0));
    }

    #[test]
    fn minimizer_strips_irrelevant_events() {
        // A partition outage on a 2-GPU all-to-all plus two no-op degrade
        // events: the minimizer must shrink the plan to the single outage.
        let scenario = ChaosScenario {
            workload: "stream-triad".into(),
            design: Design::NumaGpu,
            gpus: 2,
            topology: TopologySpec::AllToAll,
            sanitize: false,
            plan: FaultPlan::parse("degrade@100:e2*50,outage@600:e0,degrade@800:e3*90").unwrap(),
        };
        let expect = scenario.run(EngineMode::EventSkip);
        assert_eq!(expect, ChaosOutcome::Partitioned);
        let min = minimize(&scenario, &expect, EngineMode::EventSkip);
        assert_eq!(min.plan.encode(), "outage@600:e0");
        assert_eq!(min.run(EngineMode::EventSkip), ChaosOutcome::Partitioned);
    }
}
