//! The named system configurations of the paper's figures.

use carve::{CoherencePolicy, WritePolicy};
use carve_runtime::page_table::{PlacementPolicy, Replication};
use sim_core::{FaultPlan, ScaledConfig, SimError};

/// One of the system designs the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// A single GPU running the whole workload: the speedup baseline of
    /// Figure 13.
    SingleGpu,
    /// Baseline NUMA-GPU (Milic et al.): contiguous CTA batches,
    /// first-touch placement, remote data cached in the (software-coherent)
    /// LLC.
    NumaGpu,
    /// NUMA-GPU plus reactive page migration.
    NumaGpuMigrate,
    /// NUMA-GPU plus software replication of read-only shared pages.
    NumaGpuRepl,
    /// The upper bound: every shared page replicated locally at zero cost.
    Ideal,
    /// NUMA-GPU + CARVE with zero-overhead coherence (upper bound for RDC).
    CarveNc,
    /// NUMA-GPU + CARVE with software coherence: RDC epoch-flushed at every
    /// kernel boundary.
    CarveSwc,
    /// NUMA-GPU + CARVE with hardware coherence (GPU-VI + IMST).
    CarveHwc,
}

impl Design {
    /// All designs in presentation order.
    pub fn all() -> [Design; 8] {
        [
            Design::SingleGpu,
            Design::NumaGpu,
            Design::NumaGpuMigrate,
            Design::NumaGpuRepl,
            Design::Ideal,
            Design::CarveNc,
            Design::CarveSwc,
            Design::CarveHwc,
        ]
    }

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Design::SingleGpu => "1-GPU",
            Design::NumaGpu => "NUMA-GPU",
            Design::NumaGpuMigrate => "NUMA-GPU+Migrate",
            Design::NumaGpuRepl => "NUMA-GPU+RO-Repl",
            Design::Ideal => "Ideal",
            Design::CarveNc => "CARVE-NC",
            Design::CarveSwc => "CARVE-SWC",
            Design::CarveHwc => "CARVE-HWC",
        }
    }

    /// Whether the design carves an RDC out of GPU memory.
    pub fn uses_carve(self) -> bool {
        matches!(self, Design::CarveNc | Design::CarveSwc | Design::CarveHwc)
    }

    /// The RDC coherence policy, when CARVE is in use.
    pub fn coherence(self) -> Option<CoherencePolicy> {
        match self {
            Design::CarveNc => Some(CoherencePolicy::NoCoherence),
            Design::CarveSwc => Some(CoherencePolicy::Software),
            Design::CarveHwc => Some(CoherencePolicy::Hardware),
            _ => None,
        }
    }

    /// The software placement policy layered on first-touch.
    pub fn placement_policy(self) -> PlacementPolicy {
        match self {
            Design::NumaGpuMigrate => PlacementPolicy {
                migration: true,
                migration_threshold: 16,
                ..Default::default()
            },
            Design::NumaGpuRepl => PlacementPolicy {
                replication: Replication::ReadOnlyShared,
                ..Default::default()
            },
            Design::Ideal => PlacementPolicy {
                replication: Replication::AllShared,
                ..Default::default()
            },
            _ => PlacementPolicy::default(),
        }
    }

    /// Whether remotely-homed L2 lines are invalidated at kernel
    /// boundaries (software-coherent LLC). Hardware coherence and the
    /// no-coherence upper bound retain the LLC across kernels.
    pub fn flushes_llc_at_boundary(self) -> bool {
        !matches!(self, Design::CarveNc | Design::CarveHwc)
    }

    /// Number of GPUs this design runs on, given a base config.
    pub fn num_gpus(self, cfg: &ScaledConfig) -> usize {
        if self == Design::SingleGpu {
            1
        } else {
            cfg.num_gpus
        }
    }

    /// Inverse of [`Design::label`], used when re-reading campaign
    /// journals.
    pub fn from_label(label: &str) -> Option<Design> {
        Design::all().into_iter().find(|d| d.label() == label)
    }
}

/// A complete simulation request: design + machine + experiment knobs.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Scaled machine parameters.
    pub cfg: ScaledConfig,
    /// System design.
    pub design: Design,
    /// RDC carve-out override in bytes per GPU (defaults to
    /// `cfg.rdc_bytes_per_gpu`).
    pub rdc_bytes: Option<u64>,
    /// Fraction of the touched footprint spilled to system memory
    /// (Table V(b)'s UM experiment). Cold pages are chosen by profile.
    pub spill_fraction: f64,
    /// Enables the RDC hit predictor (probe bypass on predicted misses).
    pub hit_predictor: bool,
    /// RDC write policy (the paper adopts write-through; write-back with a
    /// dirty-map flush is the ablation variant).
    pub rdc_write_policy: WritePolicy,
    /// Disables the IMST filter so every write broadcasts (raw GPU-VI
    /// ablation). Only meaningful for [`Design::CarveHwc`].
    pub gpu_vi_broadcast_always: bool,
    /// Uses a per-home sharer directory instead of broadcast invalidation
    /// (the paper's Section V-E scalability alternative). Only meaningful
    /// for [`Design::CarveHwc`].
    pub directory_coherence: bool,
    /// Lets the RDC also cache system (CPU) memory, per the paper's
    /// footnote 2 — assumes CPU-GPU coherence support (Agarwal et al.,
    /// HPCA'16).
    pub rdc_caches_sysmem: bool,
    /// Hard cycle cap; runs exceeding it report `completed = false`.
    pub max_cycles: u64,
    /// Cycles charged per kernel launch.
    pub kernel_launch_cycles: u64,
    /// Watchdog no-progress budget override in cycles (`Some(0)` disables).
    /// `None` defers to `CARVE_WATCHDOG_CYCLES` / the built-in default.
    pub watchdog_cycles: Option<u64>,
    /// Telemetry sampling interval override in cycles (`Some(0)` disables).
    /// `None` defers to `CARVE_TELEMETRY_INTERVAL` (default: off). When
    /// enabled, the run's [`crate::SimResult`] carries a
    /// [`sim_core::telemetry::Timeline`] of per-GPU interval records.
    /// Sampling is read-only: aggregates are bit-identical either way.
    pub telemetry_interval: Option<u64>,
    /// Protocol sanitizer override (`Some(true)` enables, `Some(false)`
    /// disables). `None` defers to `CARVE_SANITIZE` (default: off). When
    /// enabled, a shadow checker validates coherence/lifecycle/timing
    /// invariants at every event and the run fails with
    /// [`sim_core::SimError::SanitizerViolation`] on the first breach.
    /// Like telemetry, the sanitizer is read-only: aggregates are
    /// bit-identical either way.
    pub sanitize: Option<bool>,
    /// Cycle-accounting profiler (default off). When enabled, every
    /// simulated SM cycle is charged to exactly one stall category and the
    /// run's [`crate::SimResult`] carries a
    /// [`sim_core::profile::ProfileReport`] with per-GPU stall totals plus
    /// DRAM-channel and link occupancy breakdowns. Like telemetry and the
    /// sanitizer, profiling is read-only: aggregates and journal lines are
    /// bit-identical either way.
    pub cycle_profile: bool,
    /// Deterministic fault-injection schedule (see [`sim_core::fault`]).
    /// Events are applied at their exact cycles under both engines, so a
    /// faulted run is still byte-identical across `EventSkip`/`Step`.
    /// Edge/GPU indices in the plan are *hints*, resolved modulo the
    /// machine's actual edge/GPU counts when the run is armed. `None`
    /// (or an empty plan) leaves the fault machinery entirely off.
    pub fault_plan: Option<FaultPlan>,
    /// Test hook: freeze every component (skip all ticks) once the clock
    /// reaches this cycle, simulating a livelocked engine so watchdog
    /// detection can be exercised deterministically. Subsumed by the
    /// fault plan's `freeze@<cycle>` event; kept as a convenience knob.
    #[doc(hidden)]
    pub stall_inject_at: Option<u64>,
}

impl SimConfig {
    /// A default-machine simulation of `design`.
    pub fn new(design: Design) -> SimConfig {
        SimConfig {
            cfg: ScaledConfig::default(),
            design,
            rdc_bytes: None,
            spill_fraction: 0.0,
            hit_predictor: false,
            rdc_write_policy: WritePolicy::WriteThrough,
            gpu_vi_broadcast_always: false,
            directory_coherence: false,
            rdc_caches_sysmem: false,
            max_cycles: 80_000_000,
            // Scaled with kernel runtime: paper kernels run 10^6..10^8
            // cycles against ~microsecond launch overheads; our scaled
            // kernels run 10^4..10^5 cycles.
            kernel_launch_cycles: 400,
            watchdog_cycles: None,
            telemetry_interval: None,
            sanitize: None,
            cycle_profile: false,
            fault_plan: None,
            stall_inject_at: None,
        }
    }

    /// Same, with an explicit machine configuration.
    pub fn with_cfg(design: Design, cfg: ScaledConfig) -> SimConfig {
        SimConfig {
            cfg,
            ..SimConfig::new(design)
        }
    }

    /// Effective RDC capacity per GPU for this run.
    pub fn rdc_capacity(&self) -> u64 {
        self.rdc_bytes.unwrap_or(self.cfg.rdc_bytes_per_gpu)
    }

    /// Rejects configurations that cannot describe a real machine, with a
    /// message naming the offending knob and its value. Called by
    /// `try_run` and at campaign start, so a bad design point fails in
    /// microseconds instead of panicking deep inside the simulation.
    pub fn validate(&self) -> Result<(), SimError> {
        let c = &self.cfg;
        let fail = |msg: String| Err(SimError::ConfigInvalid { message: msg });
        if c.num_gpus == 0 {
            return fail("num_gpus is 0; a system needs at least one GPU".into());
        }
        if c.sms_per_gpu == 0 {
            return fail("sms_per_gpu is 0; each GPU needs at least one SM".into());
        }
        if c.warps_per_sm == 0 {
            return fail("warps_per_sm is 0; each SM needs at least one warp slot".into());
        }
        if c.line_size == 0 || !c.line_size.is_power_of_two() {
            return fail(format!(
                "line_size is {}; it must be a non-zero power of two",
                c.line_size
            ));
        }
        if c.page_size < c.line_size {
            return fail(format!(
                "page_size {} is smaller than line_size {}",
                c.page_size, c.line_size
            ));
        }
        if c.l1_bytes_per_sm < c.line_size {
            return fail(format!(
                "l1_bytes_per_sm {} cannot hold one {}-byte line",
                c.l1_bytes_per_sm, c.line_size
            ));
        }
        if c.l2_bytes_per_gpu < c.line_size {
            return fail(format!(
                "l2_bytes_per_gpu {} cannot hold one {}-byte line",
                c.l2_bytes_per_gpu, c.line_size
            ));
        }
        if c.l1_ways == 0 || c.l2_ways == 0 {
            return fail(format!(
                "cache associativity is 0 (l1_ways={}, l2_ways={}); use at least 1 way",
                c.l1_ways, c.l2_ways
            ));
        }
        if c.l2_banks == 0 {
            return fail("l2_banks is 0; the L2 needs at least one bank".into());
        }
        if c.link_bytes_per_cycle <= 0.0 || c.cpu_link_bytes_per_cycle <= 0.0 {
            return fail(format!(
                "link bandwidth must be positive (link_bytes_per_cycle={}, \
                 cpu_link_bytes_per_cycle={})",
                c.link_bytes_per_cycle, c.cpu_link_bytes_per_cycle
            ));
        }
        // Dry-build the interconnect graph so an unroutable topology
        // (too many GPUs, pod size not tiling, zero-bandwidth edge) fails
        // here with the generator's actionable message instead of deep
        // inside `System::build`.
        carve_noc::Topology::build(
            c.topology,
            self.design.num_gpus(c),
            c.link_bytes_per_cycle,
            c.link_latency,
            c.cpu_link_bytes_per_cycle,
            c.cpu_link_latency,
        )?;
        if c.dram_channels == 0 || c.dram_banks_per_channel == 0 {
            return fail(format!(
                "DRAM geometry is degenerate (dram_channels={}, dram_banks_per_channel={}); \
                 both must be at least 1",
                c.dram_channels, c.dram_banks_per_channel
            ));
        }
        if c.dram_channel_bytes_per_cycle <= 0.0 {
            return fail(format!(
                "dram_channel_bytes_per_cycle is {}; DRAM bandwidth must be positive",
                c.dram_channel_bytes_per_cycle
            ));
        }
        if !(c.dram_write_drain_low < c.dram_write_drain_high
            && c.dram_write_drain_high <= c.dram_queue_depth)
        {
            return fail(format!(
                "DRAM write-drain watermarks out of order: need drain_low < drain_high <= \
                 queue_depth, got {} / {} / {}",
                c.dram_write_drain_low, c.dram_write_drain_high, c.dram_queue_depth
            ));
        }
        if c.mem_bytes_per_gpu == 0 {
            return fail("mem_bytes_per_gpu is 0; each GPU needs memory capacity".into());
        }
        if !(0.0..=1.0).contains(&self.spill_fraction) {
            return fail(format!(
                "spill_fraction is {}; it is a fraction of the footprint and must be in [0, 1]",
                self.spill_fraction
            ));
        }
        if self.design.uses_carve() {
            let rdc = self.rdc_capacity();
            if rdc == 0 {
                return fail(format!(
                    "{} carves an RDC out of GPU memory but the effective RDC capacity is 0; \
                     set rdc_bytes (or cfg.rdc_bytes_per_gpu) to at least one line",
                    self.design.label()
                ));
            }
            if rdc >= c.mem_bytes_per_gpu {
                return fail(format!(
                    "RDC capacity {} would consume the entire {}-byte GPU memory; \
                     the carve-out must leave room for local pages",
                    rdc, c.mem_bytes_per_gpu
                ));
            }
        }
        if self.max_cycles == 0 {
            return fail("max_cycles is 0; no simulation can finish in zero cycles".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = Design::all().iter().map(|d| d.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn carve_designs_have_coherence() {
        for d in Design::all() {
            assert_eq!(d.uses_carve(), d.coherence().is_some());
        }
    }

    #[test]
    fn ideal_replicates_all() {
        let p = Design::Ideal.placement_policy();
        assert_eq!(p.replication, Replication::AllShared);
        assert!(!p.migration);
    }

    #[test]
    fn hwc_retains_llc() {
        assert!(!Design::CarveHwc.flushes_llc_at_boundary());
        assert!(!Design::CarveNc.flushes_llc_at_boundary());
        assert!(Design::NumaGpu.flushes_llc_at_boundary());
        assert!(Design::CarveSwc.flushes_llc_at_boundary());
    }

    #[test]
    fn single_gpu_uses_one_gpu() {
        let cfg = ScaledConfig::default();
        assert_eq!(Design::SingleGpu.num_gpus(&cfg), 1);
        assert_eq!(Design::NumaGpu.num_gpus(&cfg), 4);
    }

    #[test]
    fn rdc_capacity_override() {
        let mut sc = SimConfig::new(Design::CarveHwc);
        assert_eq!(sc.rdc_capacity(), sc.cfg.rdc_bytes_per_gpu);
        sc.rdc_bytes = Some(1 << 20);
        assert_eq!(sc.rdc_capacity(), 1 << 20);
    }

    #[test]
    fn from_label_round_trips() {
        for d in Design::all() {
            assert_eq!(Design::from_label(d.label()), Some(d));
        }
        assert_eq!(Design::from_label("bogus"), None);
    }

    #[test]
    fn default_configs_validate() {
        for d in Design::all() {
            SimConfig::new(d)
                .validate()
                .expect("defaults must be valid");
        }
    }

    #[test]
    fn validate_rejects_degenerate_knobs_with_actionable_messages() {
        let check = |mutate: fn(&mut SimConfig), needle: &str| {
            let mut sc = SimConfig::new(Design::NumaGpu);
            mutate(&mut sc);
            let err = sc.validate().expect_err("must reject");
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        };
        check(|s| s.cfg.sms_per_gpu = 0, "sms_per_gpu");
        check(|s| s.cfg.num_gpus = 0, "num_gpus");
        check(|s| s.cfg.l2_bytes_per_gpu = 0, "l2_bytes_per_gpu");
        check(|s| s.cfg.l1_bytes_per_sm = 0, "l1_bytes_per_sm");
        check(|s| s.cfg.link_bytes_per_cycle = 0.0, "link bandwidth");
        check(|s| s.cfg.num_gpus = 65, "at most 64");
        check(
            |s| {
                s.cfg.num_gpus = 8;
                s.cfg.topology = sim_core::TopologySpec::Hierarchical { pod_size: 3 };
            },
            "pod_size",
        );
        check(|s| s.cfg.dram_channels = 0, "dram_channels");
        check(|s| s.spill_fraction = 1.5, "spill_fraction");
        check(|s| s.spill_fraction = -0.1, "spill_fraction");
        check(|s| s.max_cycles = 0, "max_cycles");
        check(
            |s| s.cfg.dram_write_drain_low = s.cfg.dram_write_drain_high,
            "watermarks",
        );
    }

    #[test]
    fn routed_topologies_validate_across_gpu_counts() {
        use sim_core::TopologySpec;
        for (gpus, topo) in [
            (8, TopologySpec::Switch),
            (16, TopologySpec::Ring),
            (16, TopologySpec::Hierarchical { pod_size: 4 }),
            (64, TopologySpec::Hierarchical { pod_size: 8 }),
        ] {
            let mut sc = SimConfig::new(Design::CarveHwc);
            sc.cfg.num_gpus = gpus;
            sc.cfg.topology = topo;
            sc.validate()
                .unwrap_or_else(|e| panic!("{topo:?} at {gpus} GPUs must validate: {e}"));
        }
    }

    #[test]
    fn validate_rejects_zero_rdc_only_for_carve_designs() {
        let mut sc = SimConfig::new(Design::CarveHwc);
        sc.rdc_bytes = Some(0);
        let msg = sc.validate().expect_err("carve needs an RDC").to_string();
        assert!(msg.contains("RDC"), "{msg:?}");
        let mut sc = SimConfig::new(Design::NumaGpu);
        sc.rdc_bytes = Some(0);
        sc.validate().expect("non-carve designs ignore the RDC");
    }
}
