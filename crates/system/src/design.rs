//! The named system configurations of the paper's figures.

use carve::{CoherencePolicy, WritePolicy};
use carve_runtime::page_table::{PlacementPolicy, Replication};
use sim_core::ScaledConfig;

/// One of the system designs the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// A single GPU running the whole workload: the speedup baseline of
    /// Figure 13.
    SingleGpu,
    /// Baseline NUMA-GPU (Milic et al.): contiguous CTA batches,
    /// first-touch placement, remote data cached in the (software-coherent)
    /// LLC.
    NumaGpu,
    /// NUMA-GPU plus reactive page migration.
    NumaGpuMigrate,
    /// NUMA-GPU plus software replication of read-only shared pages.
    NumaGpuRepl,
    /// The upper bound: every shared page replicated locally at zero cost.
    Ideal,
    /// NUMA-GPU + CARVE with zero-overhead coherence (upper bound for RDC).
    CarveNc,
    /// NUMA-GPU + CARVE with software coherence: RDC epoch-flushed at every
    /// kernel boundary.
    CarveSwc,
    /// NUMA-GPU + CARVE with hardware coherence (GPU-VI + IMST).
    CarveHwc,
}

impl Design {
    /// All designs in presentation order.
    pub fn all() -> [Design; 8] {
        [
            Design::SingleGpu,
            Design::NumaGpu,
            Design::NumaGpuMigrate,
            Design::NumaGpuRepl,
            Design::Ideal,
            Design::CarveNc,
            Design::CarveSwc,
            Design::CarveHwc,
        ]
    }

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Design::SingleGpu => "1-GPU",
            Design::NumaGpu => "NUMA-GPU",
            Design::NumaGpuMigrate => "NUMA-GPU+Migrate",
            Design::NumaGpuRepl => "NUMA-GPU+RO-Repl",
            Design::Ideal => "Ideal",
            Design::CarveNc => "CARVE-NC",
            Design::CarveSwc => "CARVE-SWC",
            Design::CarveHwc => "CARVE-HWC",
        }
    }

    /// Whether the design carves an RDC out of GPU memory.
    pub fn uses_carve(self) -> bool {
        matches!(self, Design::CarveNc | Design::CarveSwc | Design::CarveHwc)
    }

    /// The RDC coherence policy, when CARVE is in use.
    pub fn coherence(self) -> Option<CoherencePolicy> {
        match self {
            Design::CarveNc => Some(CoherencePolicy::NoCoherence),
            Design::CarveSwc => Some(CoherencePolicy::Software),
            Design::CarveHwc => Some(CoherencePolicy::Hardware),
            _ => None,
        }
    }

    /// The software placement policy layered on first-touch.
    pub fn placement_policy(self) -> PlacementPolicy {
        match self {
            Design::NumaGpuMigrate => PlacementPolicy {
                migration: true,
                migration_threshold: 16,
                ..Default::default()
            },
            Design::NumaGpuRepl => PlacementPolicy {
                replication: Replication::ReadOnlyShared,
                ..Default::default()
            },
            Design::Ideal => PlacementPolicy {
                replication: Replication::AllShared,
                ..Default::default()
            },
            _ => PlacementPolicy::default(),
        }
    }

    /// Whether remotely-homed L2 lines are invalidated at kernel
    /// boundaries (software-coherent LLC). Hardware coherence and the
    /// no-coherence upper bound retain the LLC across kernels.
    pub fn flushes_llc_at_boundary(self) -> bool {
        !matches!(self, Design::CarveNc | Design::CarveHwc)
    }

    /// Number of GPUs this design runs on, given a base config.
    pub fn num_gpus(self, cfg: &ScaledConfig) -> usize {
        if self == Design::SingleGpu {
            1
        } else {
            cfg.num_gpus
        }
    }
}

/// A complete simulation request: design + machine + experiment knobs.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Scaled machine parameters.
    pub cfg: ScaledConfig,
    /// System design.
    pub design: Design,
    /// RDC carve-out override in bytes per GPU (defaults to
    /// `cfg.rdc_bytes_per_gpu`).
    pub rdc_bytes: Option<u64>,
    /// Fraction of the touched footprint spilled to system memory
    /// (Table V(b)'s UM experiment). Cold pages are chosen by profile.
    pub spill_fraction: f64,
    /// Enables the RDC hit predictor (probe bypass on predicted misses).
    pub hit_predictor: bool,
    /// RDC write policy (the paper adopts write-through; write-back with a
    /// dirty-map flush is the ablation variant).
    pub rdc_write_policy: WritePolicy,
    /// Disables the IMST filter so every write broadcasts (raw GPU-VI
    /// ablation). Only meaningful for [`Design::CarveHwc`].
    pub gpu_vi_broadcast_always: bool,
    /// Uses a per-home sharer directory instead of broadcast invalidation
    /// (the paper's Section V-E scalability alternative). Only meaningful
    /// for [`Design::CarveHwc`].
    pub directory_coherence: bool,
    /// Lets the RDC also cache system (CPU) memory, per the paper's
    /// footnote 2 — assumes CPU-GPU coherence support (Agarwal et al.,
    /// HPCA'16).
    pub rdc_caches_sysmem: bool,
    /// Hard cycle cap; runs exceeding it report `completed = false`.
    pub max_cycles: u64,
    /// Cycles charged per kernel launch.
    pub kernel_launch_cycles: u64,
}

impl SimConfig {
    /// A default-machine simulation of `design`.
    pub fn new(design: Design) -> SimConfig {
        SimConfig {
            cfg: ScaledConfig::default(),
            design,
            rdc_bytes: None,
            spill_fraction: 0.0,
            hit_predictor: false,
            rdc_write_policy: WritePolicy::WriteThrough,
            gpu_vi_broadcast_always: false,
            directory_coherence: false,
            rdc_caches_sysmem: false,
            max_cycles: 80_000_000,
            // Scaled with kernel runtime: paper kernels run 10^6..10^8
            // cycles against ~microsecond launch overheads; our scaled
            // kernels run 10^4..10^5 cycles.
            kernel_launch_cycles: 400,
        }
    }

    /// Same, with an explicit machine configuration.
    pub fn with_cfg(design: Design, cfg: ScaledConfig) -> SimConfig {
        SimConfig {
            cfg,
            ..SimConfig::new(design)
        }
    }

    /// Effective RDC capacity per GPU for this run.
    pub fn rdc_capacity(&self) -> u64 {
        self.rdc_bytes.unwrap_or(self.cfg.rdc_bytes_per_gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = Design::all().iter().map(|d| d.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn carve_designs_have_coherence() {
        for d in Design::all() {
            assert_eq!(d.uses_carve(), d.coherence().is_some());
        }
    }

    #[test]
    fn ideal_replicates_all() {
        let p = Design::Ideal.placement_policy();
        assert_eq!(p.replication, Replication::AllShared);
        assert!(!p.migration);
    }

    #[test]
    fn hwc_retains_llc() {
        assert!(!Design::CarveHwc.flushes_llc_at_boundary());
        assert!(!Design::CarveNc.flushes_llc_at_boundary());
        assert!(Design::NumaGpu.flushes_llc_at_boundary());
        assert!(Design::CarveSwc.flushes_llc_at_boundary());
    }

    #[test]
    fn single_gpu_uses_one_gpu() {
        let cfg = ScaledConfig::default();
        assert_eq!(Design::SingleGpu.num_gpus(&cfg), 1);
        assert_eq!(Design::NumaGpu.num_gpus(&cfg), 4);
    }

    #[test]
    fn rdc_capacity_override() {
        let mut sc = SimConfig::new(Design::CarveHwc);
        assert_eq!(sc.rdc_capacity(), sc.cfg.rdc_bytes_per_gpu);
        sc.rdc_bytes = Some(1 << 20);
        assert_eq!(sc.rdc_capacity(), 1 << 20);
    }
}
