//! `carve-sim` — command-line front end to the multi-GPU NUMA simulator.
//!
//! ```text
//! carve-sim list                          # the 20 workload models
//! carve-sim run <workload> [options]      # simulate one configuration
//! carve-sim trace <workload> [options]    # run with telemetry + event trace
//! carve-sim compare <workload>            # all designs side by side
//! carve-sim profile <workload> [options]  # sharing profile + cycle accounting
//! carve-sim audit [lint|effects] [args]   # carve-audit front end (lint wall,
//!                                         # state-access matrix); bare args = lint
//! carve-sim fuzz [options]                # randomized fault-injection fuzzer
//!
//! options for `run` and `trace`:
//!   --design <1-gpu|numa|numa-migrate|numa-repl|ideal|carve-nc|carve-swc|carve-hwc>
//!   --rdc <bytes-per-gpu>        RDC carve-out override (scaled bytes)
//!   --spill <fraction>           UM cold-page spill fraction (0..1)
//!   --link-gbs <gbs>             inter-GPU link bandwidth, paper-equivalent GB/s
//!   --gpus <n>                   GPU count (default 4, max 64)
//!   --topology <t>               interconnect: all-to-all (default), switch,
//!                                ring, or hier<pod> (e.g. hier4 = DGX-style
//!                                pods of 4 joined by slower inter-pod links)
//!   --predictor                  enable the RDC hit predictor
//!   --directory                  directory coherence instead of broadcast
//!   --sanitize                   enable the protocol sanitizer shadow checker
//!   --profile                    enable the cycle-accounting profiler; the
//!                                stderr summary gains a top-3 stall breakdown
//!   --faults <plan>              inject a fault schedule, e.g.
//!                                "degrade@1000:e3*25,outage@2000:e7,freeze@4000+500"
//!   --fault-seed <n>             inject a random graceful fault plan drawn
//!                                deterministically from seed n
//!
//! options for `fuzz`:
//!   --seed <n>                   base seed (default 1)
//!   --runs <k>                   scenarios to generate (default 16)
//!   --out <dir>                  dump minimized oracle-fired scenarios as
//!                                replayable .chaos fixture files
//!
//! options for `trace` only:
//!   --out <dir>                  output directory (default results/trace/<workload>)
//!   --interval <cycles>          sampling interval (default 5000)
//!
//! `trace` writes <dir>/timeline.csv (per-GPU interval records) and
//! <dir>/trace.json (Chrome chrome://tracing / Perfetto format; open with
//! https://ui.perfetto.dev or chrome://tracing).
//!
//! `profile` accepts the `run` options plus `--out`/`--interval`: it prints
//! the Figure-4 sharing profile and a top-down cycle-accounting table, and
//! writes <dir>/profile.folded (flamegraph folded stacks) plus
//! <dir>/stalls.csv (per-interval stacked stall rows; default dir
//! results/profile/<workload>).
//!
//! exit codes: 0 success, 1 simulation failure (including sanitizer
//! violations) or audit findings, 2 usage error, 3 watchdog stall.
//! ```

use std::process::ExitCode;
// audit:allow(wall-clock) CLI wall-time reporting only; never enters a journal line
use std::time::Instant;

use carve_system::{
    chaos, profile_workload, try_run, try_run_observed, workloads, ChaosFixture, ChaosOutcome,
    ChaosScenario, Design, EngineMode, FaultPlan, JsonTraceSink, SimConfig, SimError, SimResult,
    TopologySpec,
};
use sim_core::rng::Stream;

/// Default `trace` sampling interval: fine enough to resolve kernel-scale
/// dynamics on scaled workloads (10^4..10^5-cycle kernels) without
/// ballooning the CSV.
const DEFAULT_TRACE_INTERVAL: u64 = 5_000;

/// Horizon for `--fault-seed` generated plans: inside the runtime of every
/// scaled workload, so the drawn events land while the run is still going.
const FAULT_SEED_HORIZON: u64 = 20_000;

fn parse_design(s: &str) -> Option<Design> {
    Some(match s {
        "1-gpu" | "single" => Design::SingleGpu,
        "numa" => Design::NumaGpu,
        "numa-migrate" => Design::NumaGpuMigrate,
        "numa-repl" => Design::NumaGpuRepl,
        "ideal" => Design::Ideal,
        "carve-nc" => Design::CarveNc,
        "carve-swc" => Design::CarveSwc,
        "carve-hwc" | "carve" => Design::CarveHwc,
        _ => return None,
    })
}

/// Parsed `run`/`trace` options (exposed for unit testing).
#[derive(Debug, Clone, PartialEq)]
struct RunArgs {
    workload: String,
    design: Design,
    rdc: Option<u64>,
    spill: f64,
    link_gbs: Option<f64>,
    gpus: Option<usize>,
    topology: Option<TopologySpec>,
    predictor: bool,
    directory: bool,
    /// Enables the protocol sanitizer (see `SimConfig::sanitize`).
    sanitize: bool,
    /// Enables the cycle-accounting profiler (see
    /// `SimConfig::cycle_profile`).
    profile: bool,
    /// Hidden test hook: freeze the system at this cycle so the watchdog
    /// path (exit code 3) can be exercised deterministically.
    stall_inject_at: Option<u64>,
    /// Fault-injection schedule (parsed at flag time so a bad plan is a
    /// usage error, not a simulation failure).
    faults: Option<FaultPlan>,
    /// `trace` only: output directory for timeline.csv + trace.json.
    out: Option<String>,
    /// `trace` only: telemetry sampling interval in cycles.
    interval: Option<u64>,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut it = args.iter();
    let workload = it
        .next()
        .ok_or_else(|| "run: missing <workload>".to_string())?
        .clone();
    let mut out = RunArgs {
        workload,
        design: Design::CarveHwc,
        rdc: None,
        spill: 0.0,
        link_gbs: None,
        gpus: None,
        topology: None,
        predictor: false,
        directory: false,
        sanitize: false,
        profile: false,
        stall_inject_at: None,
        faults: None,
        out: None,
        interval: None,
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--design" => {
                let v = it.next().ok_or("--design needs a value")?;
                out.design = parse_design(v).ok_or_else(|| format!("unknown design '{v}'"))?;
            }
            "--rdc" => {
                let v = it.next().ok_or("--rdc needs a value")?;
                out.rdc = Some(v.parse().map_err(|_| format!("bad --rdc '{v}'"))?);
            }
            "--spill" => {
                let v = it.next().ok_or("--spill needs a value")?;
                out.spill = v.parse().map_err(|_| format!("bad --spill '{v}'"))?;
                if !(0.0..=1.0).contains(&out.spill) {
                    return Err(format!("--spill must be in 0..=1, got {}", out.spill));
                }
            }
            "--link-gbs" => {
                let v = it.next().ok_or("--link-gbs needs a value")?;
                out.link_gbs = Some(v.parse().map_err(|_| format!("bad --link-gbs '{v}'"))?);
            }
            "--gpus" => {
                let v = it.next().ok_or("--gpus needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --gpus '{v}'"))?;
                if !(1..=64).contains(&n) {
                    return Err(format!("--gpus must be 1..=64, got {n}"));
                }
                out.gpus = Some(n);
            }
            "--topology" => {
                let v = it.next().ok_or("--topology needs a value")?;
                out.topology = Some(TopologySpec::from_label(v).ok_or_else(|| {
                    format!("unknown topology '{v}' (try all-to-all, switch, ring, hier<pod>)")
                })?);
            }
            "--predictor" => out.predictor = true,
            "--directory" => out.directory = true,
            "--sanitize" => out.sanitize = true,
            "--profile" => out.profile = true,
            // Undocumented on purpose: only exists so the exit-code
            // integration test can trigger a real WatchdogStall.
            "--stall-inject-at" => {
                let v = it.next().ok_or("--stall-inject-at needs a value")?;
                out.stall_inject_at = Some(
                    v.parse()
                        .map_err(|_| format!("bad --stall-inject-at '{v}'"))?,
                );
            }
            "--faults" => {
                let v = it.next().ok_or("--faults needs a value")?;
                if out.faults.is_some() {
                    return Err("--faults and --fault-seed are mutually exclusive".to_string());
                }
                out.faults = Some(FaultPlan::parse(v)?);
            }
            "--fault-seed" => {
                let v = it.next().ok_or("--fault-seed needs a value")?;
                let seed: u64 = v.parse().map_err(|_| format!("bad --fault-seed '{v}'"))?;
                if out.faults.is_some() {
                    return Err("--faults and --fault-seed are mutually exclusive".to_string());
                }
                // Graceful plans only: a seeded run must always be able to
                // complete or partition cleanly, never lose packets.
                let mut rng = Stream::from_parts(&[seed]);
                out.faults = Some(FaultPlan::random(&mut rng, FAULT_SEED_HORIZON, 0.5, false));
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                out.out = Some(v.clone());
            }
            "--interval" => {
                let v = it.next().ok_or("--interval needs a value")?;
                let n: u64 = v.parse().map_err(|_| format!("bad --interval '{v}'"))?;
                if n == 0 {
                    return Err("--interval must be > 0".to_string());
                }
                out.interval = Some(n);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(out)
}

fn sim_config_from(args: &RunArgs) -> SimConfig {
    let mut sim = SimConfig::new(args.design);
    sim.rdc_bytes = args.rdc;
    sim.spill_fraction = args.spill;
    sim.hit_predictor = args.predictor;
    sim.directory_coherence = args.directory;
    if args.sanitize {
        sim.sanitize = Some(true);
    }
    sim.cycle_profile = args.profile;
    sim.stall_inject_at = args.stall_inject_at;
    sim.fault_plan = args.faults.clone();
    if let Some(gbs) = args.link_gbs {
        // Paper-equivalent GB/s, divided by the width scale like the
        // default 64 GB/s is.
        sim.cfg.link_bytes_per_cycle = gbs / sim.cfg.width_scale as f64;
    }
    if let Some(gpus) = args.gpus {
        sim.cfg.num_gpus = gpus;
    }
    if let Some(topo) = args.topology {
        sim.cfg.topology = topo;
    }
    sim
}

fn print_result(r: &carve_system::SimResult) {
    println!("workload:           {}", r.workload);
    println!("design:             {}", r.design.label());
    println!("cycles:             {}", r.cycles);
    println!("instructions:       {}", r.instructions);
    println!("ipc:                {:.2}", r.ipc());
    println!("remote accesses:    {:.1}%", 100.0 * r.remote_fraction());
    println!("rdc hit rate:       {:.1}%", 100.0 * r.rdc.hit_rate());
    println!("link bytes:         {}", r.link_bytes);
    println!("cpu link bytes:     {}", r.cpu_link_bytes);
    println!("migrations:         {}", r.migrations);
    println!("coherence bcasts:   {}", r.broadcasts);
    println!(
        "read latency:       mean {:.0} cyc, p50 {}, p99 {}",
        r.read_latency.mean(),
        r.read_latency.percentile(50.0).unwrap_or(0),
        r.read_latency.percentile(99.0).unwrap_or(0)
    );
    if let Some(rec) = &r.recovery {
        println!("recovery:           {}", rec.summary());
    }
    println!("completed:          {}", r.completed);
}

/// One-line end-of-run summary for stderr: the numbers someone watching a
/// terminal actually wants, without scraping the full report.
fn summary_line(r: &SimResult, wall: std::time::Duration) -> String {
    let secs = wall.as_secs_f64();
    let cyc_per_sec = if secs > 0.0 {
        r.cycles as f64 / secs
    } else {
        0.0
    };
    let mut line = format!(
        "summary: {} on {}: ipc={:.2} remote={:.1}% rdc_hit={:.1}% wall={:.2}s sim={:.2}Mcyc/s",
        r.workload,
        r.design.label(),
        r.ipc(),
        100.0 * r.remote_fraction(),
        100.0 * r.rdc.hit_rate(),
        secs,
        cyc_per_sec / 1e6
    );
    // With `--profile` the one-liner gains the top stall categories, e.g.
    // `stalls: remote-link 41% | local-dram 22% | coherence-invalidate 9%`.
    if let Some(p) = &r.profile {
        line.push(' ');
        line.push_str(&p.stall_summary(3));
    }
    line
}

/// Parsed `fuzz` options (exposed for unit testing).
#[derive(Debug, Clone, PartialEq)]
struct FuzzArgs {
    /// Base seed; scenario `i` is `ChaosScenario::random(seed, i)`.
    seed: u64,
    /// Number of scenarios to generate and run.
    runs: u64,
    /// Directory for minimized oracle-fired fixture dumps.
    out: Option<String>,
}

fn parse_fuzz_args(args: &[String]) -> Result<FuzzArgs, String> {
    let mut out = FuzzArgs {
        seed: 1,
        runs: 16,
        out: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                out.seed = v.parse().map_err(|_| format!("bad --seed '{v}'"))?;
            }
            "--runs" => {
                let v = it.next().ok_or("--runs needs a value")?;
                out.runs = v.parse().map_err(|_| format!("bad --runs '{v}'"))?;
                if out.runs == 0 {
                    return Err("--runs must be > 0".to_string());
                }
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                out.out = Some(v.clone());
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(out)
}

/// The fuzz loop. Each scenario runs under both engines; the contract:
///
/// - engine divergence is always a failure;
/// - a *graceful* plan (no packet loss) must complete or partition
///   cleanly — a watchdog stall or sanitizer violation under one is a
///   simulator bug;
/// - a *lossy* plan is oracle bait: when the watchdog or sanitizer
///   catches the injected misbehaviour, the scenario is minimized and
///   (with `--out`) dumped as a replayable `.chaos` fixture.
fn run_fuzz(args: &FuzzArgs) -> ExitCode {
    let mut completed = 0u64;
    let mut partitioned = 0u64;
    let mut oracle_fired = 0u64;
    let mut failures = 0u64;
    for i in 0..args.runs {
        let scenario = ChaosScenario::random(args.seed, i);
        let outcome = match scenario.run_both_engines() {
            Ok(o) => o,
            Err(divergence) => {
                eprintln!("FAIL run {i}: {divergence}");
                failures += 1;
                continue;
            }
        };
        println!(
            "run {i}: {} -> {}",
            scenario.encode_compact(),
            outcome.encode()
        );
        let graceful = scenario.plan.is_graceful();
        match &outcome {
            ChaosOutcome::Completed => completed += 1,
            ChaosOutcome::Partitioned => partitioned += 1,
            ChaosOutcome::Watchdog | ChaosOutcome::Sanitizer(_) if !graceful => {
                // An oracle caught the injected loss: the finding we fuzz
                // for. Shrink it and keep it as a regression fixture.
                oracle_fired += 1;
                let min = chaos::minimize(&scenario, &outcome, EngineMode::from_env());
                match min.run_both_engines() {
                    Ok(o) if o == outcome => {
                        println!("  minimized: faults={}", min.plan.encode());
                        if let Some(dir) = &args.out {
                            let fixture = ChaosFixture {
                                scenario: min,
                                expect: outcome.clone(),
                            };
                            let path = format!("{dir}/seed{}-run{i}.chaos", args.seed);
                            if let Err(e) = std::fs::create_dir_all(dir)
                                .and_then(|()| std::fs::write(&path, fixture.encode()))
                            {
                                eprintln!("FAIL run {i}: cannot write '{path}': {e}");
                                failures += 1;
                            } else {
                                println!("  dumped: {path}");
                            }
                        }
                    }
                    Ok(o) => {
                        eprintln!(
                            "FAIL run {i}: minimized scenario changed outcome to {}",
                            o.encode()
                        );
                        failures += 1;
                    }
                    Err(divergence) => {
                        eprintln!("FAIL run {i}: {divergence}");
                        failures += 1;
                    }
                }
            }
            _ => {
                // Graceful plan tripping an oracle, or any plan exhausting
                // the cycle cap / failing some other way: simulator bug.
                eprintln!(
                    "FAIL run {i}: {} plan ended '{}' on {}",
                    if graceful { "graceful" } else { "lossy" },
                    outcome.encode(),
                    scenario.encode_compact()
                );
                failures += 1;
            }
        }
    }
    eprintln!(
        "fuzz: {} runs: {completed} completed, {partitioned} partitioned, \
         {oracle_fired} oracle-fired, {failures} failures",
        args.runs
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Exit code for usage errors (bad flags, unknown subcommand/workload).
const EXIT_USAGE: u8 = 2;
/// Exit code distinguishing an engine watchdog stall from other failures,
/// so campaign scripts can retry stalls without masking real errors.
const EXIT_STALL: u8 = 3;

/// Maps a simulation failure to its process exit code: watchdog stalls
/// get a distinct code, everything else (config errors, resource
/// exhaustion, sanitizer violations) is a generic failure.
fn run_error_code(e: &SimError) -> u8 {
    match e {
        SimError::WatchdogStall { .. } => EXIT_STALL,
        _ => 1,
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: carve-sim <list|run|trace|compare|profile|audit|fuzz> [args]  (see --help in source header)"
    );
    ExitCode::from(EXIT_USAGE)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!(
                "{:<14} {:>6} {:>9} {:>8}  suite",
                "workload", "kernels", "footprint", "instrs"
            );
            for w in workloads::all() {
                println!(
                    "{:<14} {:>6} {:>8}M {:>7}k  {}",
                    w.name,
                    w.shape.kernels,
                    w.paper_footprint >> 20,
                    w.shape.total_instrs() / 1000,
                    w.suite.label()
                );
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let parsed = match parse_run_args(&args[1..]) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
            };
            let Some(spec) = workloads::by_name(&parsed.workload) else {
                eprintln!(
                    "error: unknown workload '{}' (try `carve-sim list`)",
                    parsed.workload
                );
                return ExitCode::from(EXIT_USAGE);
            };
            let sim = sim_config_from(&parsed);
            // audit:allow(wall-clock) run-duration banner for humans, not simulated time
            let started = Instant::now();
            match try_run(&spec, &sim) {
                Ok(r) => {
                    let wall = started.elapsed();
                    print_result(&r);
                    eprintln!("{}", summary_line(&r, wall));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(run_error_code(&e))
                }
            }
        }
        Some("trace") => {
            let parsed = match parse_run_args(&args[1..]) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
            };
            let Some(spec) = workloads::by_name(&parsed.workload) else {
                eprintln!(
                    "error: unknown workload '{}' (try `carve-sim list`)",
                    parsed.workload
                );
                return ExitCode::from(EXIT_USAGE);
            };
            let mut sim = sim_config_from(&parsed);
            sim.telemetry_interval = Some(parsed.interval.unwrap_or(DEFAULT_TRACE_INTERVAL));
            let out_dir = parsed
                .out
                .clone()
                .unwrap_or_else(|| format!("results/trace/{}", parsed.workload));
            if let Err(e) = std::fs::create_dir_all(&out_dir) {
                eprintln!("error: cannot create '{out_dir}': {e}");
                return ExitCode::FAILURE;
            }
            let mut sink = JsonTraceSink::new();
            // audit:allow(wall-clock) run-duration banner for humans, not simulated time
            let started = Instant::now();
            match try_run_observed(&spec, &sim, None, EngineMode::from_env(), &mut sink) {
                Ok(r) => {
                    let wall = started.elapsed();
                    let csv_path = format!("{out_dir}/timeline.csv");
                    let json_path = format!("{out_dir}/trace.json");
                    let timeline = r
                        .timeline
                        .as_ref()
                        .expect("trace always enables telemetry sampling");
                    if let Err(e) = std::fs::write(&csv_path, timeline.to_csv_string()) {
                        eprintln!("error: cannot write '{csv_path}': {e}");
                        return ExitCode::FAILURE;
                    }
                    if let Err(e) = std::fs::write(&json_path, sink.to_json_string()) {
                        eprintln!("error: cannot write '{json_path}': {e}");
                        return ExitCode::FAILURE;
                    }
                    print_result(&r);
                    println!(
                        "timeline:           {csv_path} ({} intervals)",
                        timeline.num_intervals()
                    );
                    println!(
                        "trace:              {json_path} ({} events; open in ui.perfetto.dev)",
                        sink.events().len()
                    );
                    eprintln!("{}", summary_line(&r, wall));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(run_error_code(&e))
                }
            }
        }
        Some("compare") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(spec) = workloads::by_name(name) else {
                eprintln!("error: unknown workload '{name}'");
                return ExitCode::from(EXIT_USAGE);
            };
            println!(
                "{:<18} {:>10} {:>7} {:>8} {:>9}",
                "design", "cycles", "ipc", "remote", "rdc-hit"
            );
            for design in Design::all() {
                match try_run(&spec, &SimConfig::new(design)) {
                    Ok(r) => println!(
                        "{:<18} {:>10} {:>7.2} {:>7.1}% {:>8.1}%",
                        design.label(),
                        r.cycles,
                        r.ipc(),
                        100.0 * r.remote_fraction(),
                        100.0 * r.rdc.hit_rate()
                    ),
                    Err(e) => println!("{:<18} failed: {e}", design.label()),
                }
            }
            ExitCode::SUCCESS
        }
        Some("profile") => {
            let parsed = match parse_run_args(&args[1..]) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
            };
            let Some(spec) = workloads::by_name(&parsed.workload) else {
                eprintln!(
                    "error: unknown workload '{}' (try `carve-sim list`)",
                    parsed.workload
                );
                return ExitCode::from(EXIT_USAGE);
            };
            let mut sim = sim_config_from(&parsed);
            sim.cycle_profile = true;
            // Interval sampling drives the stacked-stall rows in stalls.csv.
            sim.telemetry_interval = Some(parsed.interval.unwrap_or(DEFAULT_TRACE_INTERVAL));
            let p = profile_workload(&spec, &sim.cfg, sim.cfg.num_gpus);
            let (pp, pro, prw) = p.page_breakdown().fractions();
            let (lp, lro, lrw) = p.line_breakdown().fractions();
            println!(
                "sharing profile of {} on {} GPUs:",
                parsed.workload, sim.cfg.num_gpus
            );
            println!(
                "  pages: {:5.1}% private {:5.1}% RO-shared {:5.1}% RW-shared",
                100.0 * pp,
                100.0 * pro,
                100.0 * prw
            );
            println!(
                "  lines: {:5.1}% private {:5.1}% RO-shared {:5.1}% RW-shared",
                100.0 * lp,
                100.0 * lro,
                100.0 * lrw
            );
            println!(
                "  shared footprint: {} (x{} paper-equivalent)",
                p.shared_footprint_bytes(),
                sim.cfg.capacity_scale
            );
            println!(
                "  replication multiplier: {:.2}x",
                p.replication_footprint_multiplier()
            );
            let out_dir = parsed
                .out
                .clone()
                .unwrap_or_else(|| format!("results/profile/{}", parsed.workload));
            if let Err(e) = std::fs::create_dir_all(&out_dir) {
                eprintln!("error: cannot create '{out_dir}': {e}");
                return ExitCode::FAILURE;
            }
            // audit:allow(wall-clock) run-duration banner for humans, not simulated time
            let started = Instant::now();
            match try_run(&spec, &sim) {
                Ok(r) => {
                    let wall = started.elapsed();
                    let report = r
                        .profile
                        .as_ref()
                        .expect("profile subcommand enables the profiler");
                    println!();
                    print!("{}", report.table_string());
                    let folded_path = format!("{out_dir}/profile.folded");
                    let root = format!("{}:{}", r.workload, r.design.label());
                    if let Err(e) = std::fs::write(&folded_path, report.folded_string(&root)) {
                        eprintln!("error: cannot write '{folded_path}': {e}");
                        return ExitCode::FAILURE;
                    }
                    let stalls_path = format!("{out_dir}/stalls.csv");
                    let mut csv = String::from(carve_system::StallIntervalRecord::CSV_HEADER);
                    csv.push('\n');
                    for row in &report.intervals {
                        csv.push_str(&row.csv_line());
                        csv.push('\n');
                    }
                    if let Err(e) = std::fs::write(&stalls_path, csv) {
                        eprintln!("error: cannot write '{stalls_path}': {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("folded stacks:      {folded_path} (flamegraph.pl-compatible)");
                    println!(
                        "stall intervals:    {stalls_path} ({} rows)",
                        report.intervals.len()
                    );
                    eprintln!("{}", summary_line(&r, wall));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(run_error_code(&e))
                }
            }
        }
        Some("fuzz") => {
            let parsed = match parse_fuzz_args(&args[1..]) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
            };
            run_fuzz(&parsed)
        }
        Some("audit") => {
            // Same entry point as the standalone `carve-audit` binary;
            // bare `carve-sim audit [ROOT]` still means `lint`.
            ExitCode::from(carve_audit::cli::run_embedded(&args[1..]))
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_minimal_run() {
        let a = parse_run_args(&strs(&["Lulesh"])).unwrap();
        assert_eq!(a.workload, "Lulesh");
        assert_eq!(a.design, Design::CarveHwc);
        assert_eq!(a.spill, 0.0);
    }

    #[test]
    fn parses_all_options() {
        let a = parse_run_args(&strs(&[
            "XSBench",
            "--design",
            "carve-swc",
            "--rdc",
            "1048576",
            "--spill",
            "0.0625",
            "--link-gbs",
            "128",
            "--gpus",
            "8",
            "--topology",
            "hier4",
            "--predictor",
            "--directory",
        ]))
        .unwrap();
        assert_eq!(a.design, Design::CarveSwc);
        assert_eq!(a.rdc, Some(1048576));
        assert!((a.spill - 0.0625).abs() < 1e-12);
        assert_eq!(a.link_gbs, Some(128.0));
        assert_eq!(a.gpus, Some(8));
        assert_eq!(a.topology, Some(TopologySpec::Hierarchical { pod_size: 4 }));
        assert!(a.predictor && a.directory);
        let sim = sim_config_from(&a);
        assert_eq!(sim.cfg.num_gpus, 8);
        assert_eq!(sim.cfg.topology, TopologySpec::Hierarchical { pod_size: 4 });
    }

    #[test]
    fn parses_topology_labels_and_gpu_range() {
        for (label, topo) in [
            ("all-to-all", TopologySpec::AllToAll),
            ("switch", TopologySpec::Switch),
            ("ring", TopologySpec::Ring),
            ("hier8", TopologySpec::Hierarchical { pod_size: 8 }),
        ] {
            let a = parse_run_args(&strs(&["w", "--topology", label])).unwrap();
            assert_eq!(a.topology, Some(topo), "{label}");
        }
        assert!(parse_run_args(&strs(&["w", "--topology", "torus"])).is_err());
        assert!(parse_run_args(&strs(&["w", "--topology", "hier0"])).is_err());
        let a = parse_run_args(&strs(&["w", "--gpus", "64"])).unwrap();
        assert_eq!(a.gpus, Some(64));
        assert!(parse_run_args(&strs(&["w", "--gpus", "65"])).is_err());
        // Default stays the paper's all-to-all mesh.
        let b = parse_run_args(&strs(&["w"])).unwrap();
        assert_eq!(b.topology, None);
        assert_eq!(sim_config_from(&b).cfg.topology, TopologySpec::AllToAll);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_run_args(&[]).is_err());
        assert!(parse_run_args(&strs(&["w", "--design", "nope"])).is_err());
        assert!(parse_run_args(&strs(&["w", "--spill", "1.5"])).is_err());
        assert!(parse_run_args(&strs(&["w", "--gpus", "0"])).is_err());
        assert!(parse_run_args(&strs(&["w", "--bogus"])).is_err());
    }

    #[test]
    fn parses_trace_options() {
        let a = parse_run_args(&strs(&[
            "Lulesh",
            "--out",
            "results/trace/lulesh",
            "--interval",
            "2500",
        ]))
        .unwrap();
        assert_eq!(a.out.as_deref(), Some("results/trace/lulesh"));
        assert_eq!(a.interval, Some(2500));
        // Both default to None for plain `run`.
        let b = parse_run_args(&strs(&["Lulesh"])).unwrap();
        assert_eq!(b.out, None);
        assert_eq!(b.interval, None);
    }

    #[test]
    fn rejects_zero_interval() {
        assert!(parse_run_args(&strs(&["w", "--interval", "0"])).is_err());
        assert!(parse_run_args(&strs(&["w", "--interval", "abc"])).is_err());
        assert!(parse_run_args(&strs(&["w", "--out"])).is_err());
    }

    #[test]
    fn design_aliases() {
        assert_eq!(parse_design("carve"), Some(Design::CarveHwc));
        assert_eq!(parse_design("single"), Some(Design::SingleGpu));
        assert_eq!(parse_design("x"), None);
    }

    #[test]
    fn parses_sanitize_and_stall_inject() {
        let a = parse_run_args(&strs(&[
            "Lulesh",
            "--sanitize",
            "--stall-inject-at",
            "5000",
        ]))
        .unwrap();
        assert!(a.sanitize);
        assert_eq!(a.stall_inject_at, Some(5000));
        let sim = sim_config_from(&a);
        assert_eq!(sim.sanitize, Some(true));
        assert_eq!(sim.stall_inject_at, Some(5000));
        // Off by default: `None` defers to CARVE_SANITIZE, it does not force-disable.
        let b = parse_run_args(&strs(&["Lulesh"])).unwrap();
        assert!(!b.sanitize);
        assert_eq!(sim_config_from(&b).sanitize, None);
        assert!(parse_run_args(&strs(&["w", "--stall-inject-at"])).is_err());
        assert!(parse_run_args(&strs(&["w", "--stall-inject-at", "x"])).is_err());
    }

    #[test]
    fn parses_fault_flags() {
        let a = parse_run_args(&strs(&[
            "Lulesh",
            "--faults",
            "degrade@1000:e3*25,freeze@4000+500",
        ]))
        .unwrap();
        let plan = a.faults.as_ref().expect("plan parsed");
        assert_eq!(plan.len(), 2);
        assert_eq!(
            sim_config_from(&a).fault_plan.as_ref().map(FaultPlan::len),
            Some(2)
        );
        assert!(parse_run_args(&strs(&["w", "--faults", "explode@9"])).is_err());
        assert!(parse_run_args(&strs(&["w", "--faults"])).is_err());

        let b = parse_run_args(&strs(&["Lulesh", "--fault-seed", "7"])).unwrap();
        let seeded = b.faults.as_ref().expect("seeded plan");
        assert!(!seeded.is_empty());
        assert!(seeded.is_graceful(), "seeded plans must never lose packets");
        // Same seed, same plan.
        let b2 = parse_run_args(&strs(&["Lulesh", "--fault-seed", "7"])).unwrap();
        assert_eq!(b.faults, b2.faults);
        assert!(
            parse_run_args(&strs(&["w", "--faults", "freeze@10", "--fault-seed", "1"])).is_err()
        );
    }

    #[test]
    fn parses_fuzz_args() {
        let d = parse_fuzz_args(&[]).unwrap();
        assert_eq!(d.seed, 1);
        assert_eq!(d.runs, 16);
        assert_eq!(d.out, None);
        let a = parse_fuzz_args(&strs(&[
            "--seed",
            "42",
            "--runs",
            "3",
            "--out",
            "results/chaos",
        ]))
        .unwrap();
        assert_eq!(a.seed, 42);
        assert_eq!(a.runs, 3);
        assert_eq!(a.out.as_deref(), Some("results/chaos"));
        assert!(parse_fuzz_args(&strs(&["--runs", "0"])).is_err());
        assert!(parse_fuzz_args(&strs(&["--bogus"])).is_err());
    }

    #[test]
    fn watchdog_stall_gets_its_own_exit_code() {
        let stall = SimError::WatchdogStall {
            cycle: 10,
            stalled_since: 1,
            budget: 5,
            diagnostic: String::new(),
        };
        assert_eq!(run_error_code(&stall), EXIT_STALL);
        let other = SimError::ConfigInvalid {
            message: "x".into(),
        };
        assert_eq!(run_error_code(&other), 1);
        let san = SimError::SanitizerViolation {
            invariant: "token-lifecycle".into(),
            cycle: 3,
            detail: String::new(),
        };
        assert_eq!(run_error_code(&san), 1);
    }

    #[test]
    fn link_gbs_scales_with_width() {
        let mut a = parse_run_args(&strs(&["w", "--link-gbs", "64"])).unwrap();
        a.workload = "w".into();
        let sim = sim_config_from(&a);
        let default = SimConfig::new(Design::CarveHwc);
        assert!((sim.cfg.link_bytes_per_cycle - default.cfg.link_bytes_per_cycle).abs() < 1e-9);
    }
}
