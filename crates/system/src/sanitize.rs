//! Shadow protocol sanitizer — a "TSan for GPU-VI/SWC".
//!
//! When enabled ([`crate::design::SimConfig::sanitize`] or
//! `CARVE_SANITIZE=1`), the engine mirrors every coherence-relevant event
//! into the [`Sanitizer`], which maintains an independent shadow of what
//! the protocol *promised* (granted remote copies, directory membership,
//! RDC residency supersets, epoch counters, token lifecycle, message
//! conservation) and cross-checks the models against it. The first breach
//! is latched and surfaced as
//! [`SimError::SanitizerViolation`](sim_core::SimError::SanitizerViolation).
//!
//! The sanitizer is strictly read-only over model state — like interval
//! telemetry, a sanitized run's aggregates are bit-identical to an
//! unsanitized run's, and the cost when off is one `Option` check per
//! event.
//!
//! Invariants checked (names appear in diagnostics):
//!
//! * `gpu-vi-single-writer` — a hardware-coherence write's invalidate
//!   targets must cover every granted remote copy (minus the writer).
//! * `imst-agreement` — a remote-read grant must leave the home IMST in a
//!   shared state (`ReadShared`/`ReadWriteShared`).
//! * `directory-agreement` — under directory mode the home directory must
//!   record each grantee, and write targets must equal the granted set
//!   exactly (evictions are never reported, so neither side shrinks).
//! * `swc-epoch-monotonic` / `swc-invalidate-complete` — RDC epochs bump
//!   by exactly one (or roll over to zero from `EPOCH_MAX`) only at
//!   software-coherence kernel boundaries, after which no previously
//!   inserted line may remain resident.
//! * `rdc-inclusion` / `rdc-exclusion` / `rdc-invalidate-incomplete` —
//!   an RDC probe hit implies the line was inserted (silent evictions
//!   only shrink the cache, so the shadow insert set is a superset of
//!   residency); only remote (or, in footnote-2 mode, system-memory)
//!   lines may be inserted; an invalidate probe must leave the line
//!   non-resident.
//! * `token-lifecycle` — slab tokens are minted strictly increasing and
//!   never resurrected; a completion or delivery for a token with no
//!   live slab entry must carry the untracked sentinel slot.
//! * `noc-conservation` — deliveries never exceed sends, counts are
//!   monotonic, and a finished run has delivered every sent message.
//! * `noc-hop-conservation` — per transit node (switches, and GPUs on a
//!   ring), forwarded messages never exceed those received, the counters
//!   are monotonic, and a finished run has forwarded every transit
//!   arrival (nothing dropped inside the fabric).
//! * `dram-timing` — forwarded from [`carve_dram::TimingAudit`] (bus
//!   overlap, bank recovery, row-hit legality, CAS floor).

use std::collections::{HashMap, HashSet};

use carve::{Carve, CoherencePolicy, SharingState, EPOCH_MAX};
use sim_core::fast::{Slab, SLOT_MASK, UNTRACKED_SLOT};

/// A latched invariant breach (first one wins; later events are ignored
/// so the diagnostic names the root cause, not knock-on effects).
#[derive(Debug)]
pub(crate) struct Violation {
    pub invariant: &'static str,
    pub cycle: u64,
    pub detail: String,
}

/// The shadow checker. One instance per run, fed by hooks in
/// `crate::sim`; owns no model state and never mutates any.
pub(crate) struct Sanitizer {
    num_gpus: usize,
    policy: Option<CoherencePolicy>,
    directory_mode: bool,
    rdc_caches_sysmem: bool,
    /// Per home node: line -> bitmask of GPUs granted a remote copy
    /// (64 bits, matching [`carve_noc::MAX_GPUS`]). An overapproximation
    /// of true copies (in-flight invalidates may already have killed
    /// one), which is the safe direction for the write-target coverage
    /// check.
    granted: Vec<HashMap<u64, u64>>,
    /// Per GPU: every line inserted into the RDC since its last epoch
    /// clear — a superset of residency, since conflict evictions are
    /// silent and only shrink the cache.
    rdc_inserted: Vec<HashSet<u64>>,
    /// Per GPU: shadow of the RDC epoch counter.
    epochs: Vec<u32>,
    /// Live slab tokens observed at the previous poll.
    prev_live: HashSet<u64>,
    /// Highest token ever observed live.
    max_token: u64,
    prev_sent: u64,
    prev_delivered: u64,
    /// Per transit node: `(received, forwarded)` as of the previous poll.
    prev_hops: Vec<(u64, u64)>,
    violation: Option<Violation>,
}

impl Sanitizer {
    pub(crate) fn new(
        num_gpus: usize,
        policy: Option<CoherencePolicy>,
        directory_mode: bool,
        rdc_caches_sysmem: bool,
    ) -> Sanitizer {
        Sanitizer {
            num_gpus,
            policy,
            directory_mode,
            rdc_caches_sysmem,
            granted: (0..num_gpus).map(|_| HashMap::new()).collect(),
            rdc_inserted: (0..num_gpus).map(|_| HashSet::new()).collect(),
            epochs: vec![0; num_gpus],
            prev_live: HashSet::new(),
            max_token: 0,
            prev_sent: 0,
            prev_delivered: 0,
            prev_hops: Vec::new(),
            violation: None,
        }
    }

    fn fail(&mut self, invariant: &'static str, cycle: u64, detail: String) {
        if self.violation.is_none() {
            self.violation = Some(Violation {
                invariant,
                cycle,
                detail,
            });
        }
    }

    /// Takes the latched violation, if any.
    pub(crate) fn take_violation(&mut self) -> Option<Violation> {
        self.violation.take()
    }

    fn hardware(&self) -> bool {
        self.policy == Some(CoherencePolicy::Hardware)
    }

    // -----------------------------------------------------------------
    // GPU-VI / IMST / directory shadow

    /// A remote read reached its home node and was granted a copy
    /// (`carve::Carve::on_home_read` just ran). `state` is the home
    /// IMST's post-grant state; `dir_has` is whether the home directory
    /// now records the requester (None outside directory mode).
    pub(crate) fn on_grant(
        &mut self,
        home: usize,
        line: u64,
        requester: usize,
        state: SharingState,
        dir_has: Option<bool>,
        cycle: u64,
    ) {
        if self.violation.is_some() || !self.hardware() || requester == home {
            return;
        }
        if !matches!(
            state,
            SharingState::ReadShared | SharingState::ReadWriteShared
        ) {
            self.fail(
                "imst-agreement",
                cycle,
                format!(
                    "home {home} granted line {line:#x} to gpu {requester} but its IMST \
                     reports {state:?} (expected ReadShared or ReadWriteShared)"
                ),
            );
            return;
        }
        if self.directory_mode && dir_has != Some(true) {
            self.fail(
                "directory-agreement",
                cycle,
                format!(
                    "home {home} granted line {line:#x} to gpu {requester} but its \
                     directory does not record the sharer"
                ),
            );
            return;
        }
        *self.granted[home].entry(line).or_insert(0) |= 1 << requester;
    }

    /// An invalidate for `line` was sent (or locally applied) from `home`
    /// toward `target`: the granted copy, if any, is revoked.
    pub(crate) fn on_invalidate_send(&mut self, home: usize, line: u64, target: usize) {
        if self.violation.is_some() || !self.hardware() {
            return;
        }
        if let Some(mask) = self.granted[home].get_mut(&line) {
            *mask &= !(1 << target);
            if *mask == 0 {
                self.granted[home].remove(&line);
            }
        }
    }

    /// A write reached `home` and coherence decided on `targets`. Under
    /// broadcast GPU-VI the targets must *cover* every granted remote
    /// copy; under directory mode they must *equal* it.
    pub(crate) fn on_write(
        &mut self,
        home: usize,
        line: u64,
        writer: usize,
        targets: &[usize],
        cycle: u64,
    ) {
        if self.violation.is_some() || !self.hardware() {
            return;
        }
        let granted = self.granted[home].get(&line).copied().unwrap_or(0);
        let expected = granted & !(1u64 << writer);
        let mut tmask = 0u64;
        for &t in targets {
            tmask |= 1 << t;
        }
        if self.directory_mode {
            if tmask != expected {
                self.fail(
                    "directory-agreement",
                    cycle,
                    format!(
                        "write by gpu {writer} to line {line:#x} at home {home}: directory \
                         targeted mask {tmask:#06b} but granted copies are {expected:#06b}"
                    ),
                );
            }
        } else if tmask & expected != expected {
            self.fail(
                "gpu-vi-single-writer",
                cycle,
                format!(
                    "write by gpu {writer} to line {line:#x} at home {home}: invalidate \
                     targets mask {tmask:#06b} misses granted copies {expected:#06b}"
                ),
            );
        }
    }

    // -----------------------------------------------------------------
    // RDC shadow

    /// An RDC probe completed with outcome `hit`.
    pub(crate) fn on_rdc_probe(&mut self, gpu: usize, line: u64, hit: bool, cycle: u64) {
        if self.violation.is_some() {
            return;
        }
        if hit && !self.rdc_inserted[gpu].contains(&line) {
            self.fail(
                "rdc-inclusion",
                cycle,
                format!(
                    "gpu {gpu} RDC probe hit line {line:#x} that was never inserted \
                     this epoch"
                ),
            );
        }
    }

    /// A line was inserted into `gpu`'s RDC; `home` is its home node
    /// (`usize::MAX` for system memory).
    pub(crate) fn on_rdc_insert(&mut self, gpu: usize, line: u64, home: usize, cycle: u64) {
        if self.violation.is_some() {
            return;
        }
        if home == gpu {
            self.fail(
                "rdc-exclusion",
                cycle,
                format!("gpu {gpu} inserted locally-homed line {line:#x} into its RDC"),
            );
            return;
        }
        if home == usize::MAX && !self.rdc_caches_sysmem {
            self.fail(
                "rdc-exclusion",
                cycle,
                format!(
                    "gpu {gpu} inserted system-memory line {line:#x} into its RDC \
                     without rdc_caches_sysmem"
                ),
            );
            return;
        }
        self.rdc_inserted[gpu].insert(line);
    }

    /// An invalidate probe was applied to `gpu`'s RDC;
    /// `resident_after` is whether the line is still resident.
    pub(crate) fn on_rdc_invalidate(
        &mut self,
        gpu: usize,
        line: u64,
        resident_after: bool,
        cycle: u64,
    ) {
        if self.violation.is_some() {
            return;
        }
        if resident_after {
            self.fail(
                "rdc-invalidate-incomplete",
                cycle,
                format!("gpu {gpu} RDC still holds line {line:#x} after an invalidate probe"),
            );
            return;
        }
        self.rdc_inserted[gpu].remove(&line);
    }

    /// A kernel boundary just ran (`Carve::on_kernel_boundary` included):
    /// check epoch transitions and, under software coherence, that the
    /// instant invalidation actually emptied every RDC.
    pub(crate) fn on_kernel_boundary(&mut self, carve: &Carve, cycle: u64) {
        if self.violation.is_some() {
            return;
        }
        let software = self.policy == Some(CoherencePolicy::Software);
        for g in 0..self.num_gpus {
            let old = self.epochs[g];
            let new = carve.rdc(g).epoch();
            if software {
                let expected = if old == EPOCH_MAX { 0 } else { old + 1 };
                if new != expected {
                    self.fail(
                        "swc-epoch-monotonic",
                        cycle,
                        format!(
                            "gpu {g} RDC epoch went {old} -> {new} across a boundary \
                             (expected {expected})"
                        ),
                    );
                    return;
                }
                for &line in &self.rdc_inserted[g] {
                    if carve.rdc(g).contains(line) {
                        self.fail(
                            "swc-invalidate-complete",
                            cycle,
                            format!(
                                "gpu {g} RDC line {line:#x} survived the software-coherence \
                                 boundary (epoch {new})"
                            ),
                        );
                        return;
                    }
                }
                self.rdc_inserted[g].clear();
            } else if new != old {
                self.fail(
                    "swc-epoch-monotonic",
                    cycle,
                    format!(
                        "gpu {g} RDC epoch changed {old} -> {new} under {:?} (epochs \
                         only move at software-coherence boundaries)",
                        self.policy
                    ),
                );
                return;
            }
            self.epochs[g] = new;
        }
    }

    // -----------------------------------------------------------------
    // Token lifecycle

    /// Census of live slab tokens, called once per engine tick. New
    /// tokens must exceed every token ever seen (the slab's strictly
    /// increasing mint order); an old token reappearing means a slot was
    /// resurrected.
    pub(crate) fn poll_tokens<T>(&mut self, pending: &Slab<T>, cycle: u64) {
        if self.violation.is_some() {
            return;
        }
        let mut cur = HashSet::with_capacity(pending.len());
        pending.for_each(|t, _| {
            cur.insert(t);
        });
        let floor = self.max_token;
        let mut fresh_max = floor;
        for &t in &cur {
            if !self.prev_live.contains(&t) {
                if t <= floor {
                    self.fail(
                        "token-lifecycle",
                        cycle,
                        format!(
                            "token {t:#x} appeared out of mint order (max ever seen \
                             {floor:#x}): slot resurrection or duplicate insert"
                        ),
                    );
                    return;
                }
                fresh_max = fresh_max.max(t);
            }
        }
        self.max_token = fresh_max;
        self.prev_live = cur;
    }

    /// A completion or delivery carried a token with no live slab entry.
    /// That is legal only for fire-and-forget traffic minted with the
    /// untracked sentinel slot; a *tracked* token here was consumed
    /// twice or outlived its generation.
    pub(crate) fn on_unknown_token(&mut self, kind: &'static str, token: u64, cycle: u64) {
        if self.violation.is_some() {
            return;
        }
        if token & SLOT_MASK != UNTRACKED_SLOT {
            self.fail(
                "token-lifecycle",
                cycle,
                format!(
                    "{kind} for tracked token {token:#x} with no live slab entry \
                     (double consume or stale generation)"
                ),
            );
        }
    }

    /// A delivery reached a *live* token whose state machine had already
    /// consumed the message it was waiting for. Only injected packet
    /// duplication can produce this (the endpoint discards the stale
    /// copy); it is still a token-lifecycle breach the oracle must flag.
    pub(crate) fn on_stale_delivery(&mut self, kind: &'static str, token: u64, cycle: u64) {
        if self.violation.is_some() {
            return;
        }
        self.fail(
            "token-lifecycle",
            cycle,
            format!(
                "{kind} for live token {token:#x} whose state machine already \
                 consumed its message (duplicated packet)"
            ),
        );
    }

    // -----------------------------------------------------------------
    // NoC conservation and DRAM timing

    /// Per-tick message conservation: counts are monotonic and no
    /// message is delivered before (or without) being sent.
    pub(crate) fn on_noc_counts(&mut self, sent: u64, delivered: u64, cycle: u64) {
        if self.violation.is_some() {
            return;
        }
        if delivered > sent {
            self.fail(
                "noc-conservation",
                cycle,
                format!("{delivered} messages delivered but only {sent} sent"),
            );
            return;
        }
        if sent < self.prev_sent || delivered < self.prev_delivered {
            self.fail(
                "noc-conservation",
                cycle,
                format!(
                    "message counters regressed: sent {} -> {sent}, delivered {} -> \
                     {delivered}",
                    self.prev_sent, self.prev_delivered
                ),
            );
            return;
        }
        self.prev_sent = sent;
        self.prev_delivered = delivered;
    }

    /// End-of-run conservation: a quiescent network has delivered every
    /// message it accepted.
    pub(crate) fn on_run_end(&mut self, sent: u64, delivered: u64, cycle: u64) {
        if self.violation.is_some() {
            return;
        }
        if sent != delivered {
            self.fail(
                "noc-conservation",
                cycle,
                format!("run ended with {sent} messages sent but {delivered} delivered"),
            );
        }
    }

    /// Per-tick, per-hop conservation over the network's transit
    /// counters (`hops[node] = (received, forwarded)`): a conservative
    /// fabric never forwards a message it has not received, and both
    /// columns only grow.
    pub(crate) fn on_hop_counts(&mut self, hops: &[(u64, u64)], cycle: u64) {
        if self.violation.is_some() {
            return;
        }
        if self.prev_hops.len() != hops.len() {
            self.prev_hops = vec![(0, 0); hops.len()];
        }
        for (node, &(recv, fwd)) in hops.iter().enumerate() {
            let prev = self.prev_hops[node];
            if fwd > recv {
                self.fail(
                    "noc-hop-conservation",
                    cycle,
                    format!(
                        "node {node} forwarded {fwd} transit messages but received only \
                         {recv} (duplicated forward)"
                    ),
                );
                return;
            }
            if recv < prev.0 || fwd < prev.1 {
                self.fail(
                    "noc-hop-conservation",
                    cycle,
                    format!(
                        "node {node} transit counters regressed: received {} -> {recv}, \
                         forwarded {} -> {fwd}",
                        prev.0, prev.1
                    ),
                );
                return;
            }
            self.prev_hops[node] = (recv, fwd);
        }
    }

    /// End-of-run per-hop conservation: a drained fabric has forwarded
    /// every transit message it received — anything less is a packet
    /// dropped inside a switch.
    pub(crate) fn on_hop_run_end(&mut self, hops: &[(u64, u64)], cycle: u64) {
        if self.violation.is_some() {
            return;
        }
        for (node, &(recv, fwd)) in hops.iter().enumerate() {
            if recv != fwd {
                self.fail(
                    "noc-hop-conservation",
                    cycle,
                    format!(
                        "run ended with node {node} holding {} transit messages it never \
                         forwarded ({recv} received, {fwd} forwarded): packet dropped at \
                         a switch",
                        recv - fwd
                    ),
                );
                return;
            }
        }
    }

    /// Forwards a latched DRAM timing-audit breach.
    pub(crate) fn on_dram_violation(&mut self, gpu: usize, msg: &str, cycle: u64) {
        if self.violation.is_some() {
            return;
        }
        self.fail("dram-timing", cycle, format!("gpu {gpu} DRAM: {msg}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carve::RdcConfig;

    fn hwc_sanitizer(directory: bool) -> Sanitizer {
        Sanitizer::new(4, Some(CoherencePolicy::Hardware), directory, false)
    }

    fn invariant(san: &mut Sanitizer) -> &'static str {
        san.take_violation().expect("violation latched").invariant
    }

    #[test]
    fn clean_grant_write_invalidate_cycle_passes() {
        let mut san = hwc_sanitizer(false);
        san.on_grant(0, 0x80, 2, SharingState::ReadShared, None, 10);
        // Broadcast covers the granted copy: clean.
        san.on_write(0, 0x80, 0, &[1, 2, 3], 20);
        for t in [1, 2, 3] {
            san.on_invalidate_send(0, 0x80, t);
        }
        // After revocation a silent write is also clean.
        san.on_write(0, 0x80, 0, &[], 30);
        assert!(san.take_violation().is_none());
    }

    #[test]
    fn uncovered_granted_copy_breaks_single_writer() {
        let mut san = hwc_sanitizer(false);
        san.on_grant(0, 0x80, 2, SharingState::ReadWriteShared, None, 10);
        san.on_write(0, 0x80, 0, &[], 420);
        let v = san.take_violation().expect("violation latched");
        assert_eq!(v.invariant, "gpu-vi-single-writer");
        assert_eq!(v.cycle, 420);
        assert!(
            v.detail.contains("0x80"),
            "detail names the line: {}",
            v.detail
        );
    }

    #[test]
    fn grant_with_private_imst_state_breaks_agreement() {
        let mut san = hwc_sanitizer(false);
        san.on_grant(1, 0x100, 3, SharingState::Private, None, 5);
        assert_eq!(invariant(&mut san), "imst-agreement");
    }

    #[test]
    fn directory_must_record_the_grantee() {
        let mut san = hwc_sanitizer(true);
        san.on_grant(0, 0x80, 2, SharingState::ReadShared, Some(false), 5);
        assert_eq!(invariant(&mut san), "directory-agreement");
    }

    #[test]
    fn directory_write_targets_must_match_exactly() {
        let mut san = hwc_sanitizer(true);
        san.on_grant(0, 0x80, 2, SharingState::ReadShared, Some(true), 5);
        // Directory over-invalidates gpu 3 which never held a copy.
        san.on_write(0, 0x80, 1, &[2, 3], 6);
        assert_eq!(invariant(&mut san), "directory-agreement");
    }

    #[test]
    fn non_hardware_policies_skip_coherence_checks() {
        let mut san = Sanitizer::new(4, Some(CoherencePolicy::Software), false, false);
        san.on_grant(0, 0x80, 2, SharingState::Uncached, None, 1);
        san.on_write(0, 0x80, 0, &[], 2);
        assert!(san.take_violation().is_none());
    }

    #[test]
    fn rdc_hit_without_insert_breaks_inclusion() {
        let mut san = hwc_sanitizer(false);
        san.on_rdc_probe(1, 0x80, true, 9);
        assert_eq!(invariant(&mut san), "rdc-inclusion");
    }

    #[test]
    fn rdc_insert_then_hit_is_clean_and_misses_never_fire() {
        let mut san = hwc_sanitizer(false);
        san.on_rdc_probe(1, 0x80, false, 8);
        san.on_rdc_insert(1, 0x80, 0, 9);
        san.on_rdc_probe(1, 0x80, true, 10);
        assert!(san.take_violation().is_none());
    }

    #[test]
    fn local_line_in_rdc_breaks_exclusion() {
        let mut san = hwc_sanitizer(false);
        san.on_rdc_insert(2, 0x80, 2, 9);
        assert_eq!(invariant(&mut san), "rdc-exclusion");
    }

    #[test]
    fn sysmem_line_needs_footnote2_mode() {
        let mut san = hwc_sanitizer(false);
        san.on_rdc_insert(2, 0x80, usize::MAX, 9);
        assert_eq!(invariant(&mut san), "rdc-exclusion");
        let mut san = Sanitizer::new(4, Some(CoherencePolicy::Hardware), false, true);
        san.on_rdc_insert(2, 0x80, usize::MAX, 9);
        assert!(san.take_violation().is_none());
    }

    #[test]
    fn surviving_invalidate_is_reported() {
        let mut san = hwc_sanitizer(false);
        san.on_rdc_invalidate(0, 0x80, true, 11);
        assert_eq!(invariant(&mut san), "rdc-invalidate-incomplete");
    }

    #[test]
    fn swc_boundary_epoch_and_emptiness_checked() {
        let mut san = Sanitizer::new(2, Some(CoherencePolicy::Software), false, false);
        let mut carve = Carve::new(2, CoherencePolicy::Software, RdcConfig::new(64 * 128, 128));
        san.on_rdc_insert(0, 0x80, 1, 1);
        carve.rdc_mut(0).insert(0x80);
        carve.on_kernel_boundary();
        san.on_kernel_boundary(&carve, 2);
        assert!(san.take_violation().is_none(), "clean boundary passes");
        // A second sanitizer that missed the bump sees a non-monotonic
        // epoch (0 -> 1 expected, but shadow thinks it is still at 0 and
        // the model reports 1 after *two* boundaries => mismatch).
        let mut stale = Sanitizer::new(2, Some(CoherencePolicy::Software), false, false);
        carve.on_kernel_boundary();
        stale.on_kernel_boundary(&carve, 3); // model epoch 2, shadow expected 1
        assert_eq!(invariant(&mut stale), "swc-epoch-monotonic");
    }

    #[test]
    fn swc_boundary_detects_surviving_line() {
        let mut san = Sanitizer::new(2, Some(CoherencePolicy::Software), false, false);
        let mut carve = Carve::new(2, CoherencePolicy::Software, RdcConfig::new(64 * 128, 128));
        san.on_rdc_insert(0, 0x80, 1, 1);
        carve.on_kernel_boundary();
        // Re-insert behind the boundary: the line is resident under the
        // new epoch while the shadow still attributes it to the old one.
        carve.rdc_mut(0).insert(0x80);
        san.on_kernel_boundary(&carve, 2);
        assert_eq!(invariant(&mut san), "swc-invalidate-complete");
    }

    #[test]
    fn hwc_epoch_must_not_move() {
        let mut san = hwc_sanitizer(false);
        let mut carve = Carve::new(4, CoherencePolicy::Software, RdcConfig::new(64 * 128, 128));
        carve.on_kernel_boundary(); // bumps epochs to 1
        san.on_kernel_boundary(&carve, 7);
        assert_eq!(invariant(&mut san), "swc-epoch-monotonic");
    }

    #[test]
    fn swc_epoch_rollover_to_zero_is_legal() {
        let mut san = Sanitizer::new(1, Some(CoherencePolicy::Software), false, false);
        san.epochs[0] = EPOCH_MAX;
        let mut carve = Carve::new(1, CoherencePolicy::Software, RdcConfig::new(64 * 128, 128));
        // Drive the model's epoch to the same edge, then across it.
        for _ in 0..=EPOCH_MAX {
            carve.on_kernel_boundary();
        }
        assert_eq!(carve.rdc(0).epoch(), 0, "model rolled over");
        san.on_kernel_boundary(&carve, 5);
        assert!(san.take_violation().is_none(), "rollover to 0 is legal");
    }

    #[test]
    fn token_census_accepts_monotonic_mints() {
        let mut san = hwc_sanitizer(false);
        let mut slab: Slab<u8> = Slab::new();
        let a = slab.insert(1);
        san.poll_tokens(&slab, 1);
        slab.insert(2);
        slab.remove(a);
        san.poll_tokens(&slab, 2);
        assert!(san.take_violation().is_none());
    }

    #[test]
    fn token_resurrection_is_reported() {
        let mut san = hwc_sanitizer(false);
        let mut slab: Slab<u8> = Slab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        san.poll_tokens(&slab, 1);
        slab.remove(a);
        slab.remove(b);
        san.poll_tokens(&slab, 2);
        // A fresh slab re-minting lower token values models a slot
        // resurrection (same token bits observed live again).
        let mut reborn: Slab<u8> = Slab::new();
        reborn.insert(9);
        san.poll_tokens(&reborn, 3);
        assert_eq!(invariant(&mut san), "token-lifecycle");
    }

    #[test]
    fn tracked_token_without_entry_is_a_double_consume() {
        let mut san = hwc_sanitizer(false);
        let mut slab: Slab<u8> = Slab::new();
        let t = slab.insert(1);
        slab.remove(t);
        san.on_unknown_token("delivery", t, 4);
        assert_eq!(invariant(&mut san), "token-lifecycle");
    }

    #[test]
    fn untracked_tokens_are_fire_and_forget() {
        let mut san = hwc_sanitizer(false);
        let mut slab: Slab<u8> = Slab::new();
        let u = slab.untracked_token();
        san.on_unknown_token("delivery", u, 4);
        assert!(san.take_violation().is_none());
    }

    #[test]
    fn delivering_more_than_sent_breaks_conservation() {
        let mut san = hwc_sanitizer(false);
        san.on_noc_counts(5, 3, 1);
        san.on_noc_counts(5, 6, 2);
        assert_eq!(invariant(&mut san), "noc-conservation");
    }

    #[test]
    fn regressed_counters_break_conservation() {
        let mut san = hwc_sanitizer(false);
        san.on_noc_counts(5, 3, 1);
        san.on_noc_counts(4, 3, 2);
        assert_eq!(invariant(&mut san), "noc-conservation");
    }

    #[test]
    fn undelivered_messages_at_run_end_are_reported() {
        let mut san = hwc_sanitizer(false);
        san.on_run_end(10, 9, 99);
        assert_eq!(invariant(&mut san), "noc-conservation");
    }

    #[test]
    fn duplicated_forward_breaks_hop_conservation() {
        let mut san = hwc_sanitizer(false);
        // Node 5 (a switch) forwards two messages having received one:
        // a duplicated forward inside the fabric.
        san.on_hop_counts(&[(0, 0), (1, 1), (0, 0), (0, 0), (0, 0), (1, 2)], 7);
        let v = san.take_violation().expect("violation latched");
        assert_eq!(v.invariant, "noc-hop-conservation");
        assert!(v.detail.contains("node 5"), "{}", v.detail);
        assert!(v.detail.contains("duplicated forward"), "{}", v.detail);
    }

    #[test]
    fn regressed_hop_counters_break_hop_conservation() {
        let mut san = hwc_sanitizer(false);
        san.on_hop_counts(&[(3, 3)], 1);
        san.on_hop_counts(&[(2, 2)], 2);
        assert_eq!(invariant(&mut san), "noc-hop-conservation");
    }

    #[test]
    fn dropped_packet_at_switch_is_reported_at_run_end() {
        let mut san = hwc_sanitizer(false);
        // In-flight imbalance is fine mid-run (forwarded <= received)...
        san.on_hop_counts(&[(0, 0), (4, 3)], 50);
        assert!(san.violation.is_none());
        // ...but a drained run must have forwarded everything.
        san.on_hop_run_end(&[(0, 0), (4, 3)], 99);
        let v = san.take_violation().expect("violation latched");
        assert_eq!(v.invariant, "noc-hop-conservation");
        assert!(v.detail.contains("node 1"), "{}", v.detail);
        assert!(v.detail.contains("dropped"), "{}", v.detail);
    }

    #[test]
    fn balanced_hop_counters_pass_clean() {
        let mut san = hwc_sanitizer(false);
        san.on_hop_counts(&[(1, 1), (2, 1)], 10);
        san.on_hop_counts(&[(2, 2), (2, 2)], 20);
        san.on_hop_run_end(&[(2, 2), (2, 2)], 30);
        assert!(san.take_violation().is_none());
    }

    #[test]
    fn sharer_masks_cover_64_gpus() {
        // Granted-copy tracking must hold a bit for gpu 63.
        let mut san = Sanitizer::new(64, Some(CoherencePolicy::Hardware), false, false);
        san.on_grant(0, 0x80, 63, SharingState::ReadShared, None, 1);
        san.on_write(0, 0x80, 0, &[], 2);
        assert_eq!(invariant(&mut san), "gpu-vi-single-writer");
    }

    #[test]
    fn dram_violation_is_forwarded() {
        let mut san = hwc_sanitizer(false);
        san.on_dram_violation(2, "bus overlap on channel 0", 12);
        let v = san.take_violation().expect("violation latched");
        assert_eq!(v.invariant, "dram-timing");
        assert!(v.detail.contains("gpu 2"));
    }

    #[test]
    fn first_violation_wins() {
        let mut san = hwc_sanitizer(false);
        san.on_rdc_probe(1, 0x80, true, 9);
        san.on_noc_counts(0, 5, 10);
        let v = san.take_violation().expect("violation latched");
        assert_eq!(v.invariant, "rdc-inclusion");
        assert_eq!(v.cycle, 9);
    }
}
