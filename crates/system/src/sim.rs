//! The multi-GPU system simulation loop.
//!
//! [`run`] builds the machine described by a [`SimConfig`], executes every
//! kernel of the workload, and reports a [`SimResult`]. Time advances with
//! an event-horizon engine: every component implements
//! [`sim_core::NextEvent`], and the loop jumps `now` to the earliest
//! reported event instead of polling every cycle — bit-identical to the
//! step-by-1 engine ([`EngineMode::Step`], forced by setting the
//! `CARVE_STEP` environment variable), just without the no-op ticks. The
//! system crate owns everything *between* the GPU cores: DRAM, the RDC carve-outs and
//! their coherence, the link fabric, CPU memory, and the runtime page
//! table. All routing happens here, so the per-design differences are
//! concentrated in one file:
//!
//! * remote reads either cross the links directly (NUMA-GPU) or first
//!   probe the local RDC (CARVE),
//! * remote writes are write-through to the home node, where hardware
//!   coherence may broadcast invalidates,
//! * replication/migration/UM-spill act through the page table's
//!   effective-home resolution.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use carve::{Carve, CoherencePolicy, HitPredictor, ProbeKind, RdcConfig, RdcStats};
use carve_dram::{Completion, DramConfig, DramModel, DramStats, FlatMemory};
use carve_gpu::{
    CoreReqKind, CoreRequest, CoreStats, Fabric, GpuCore, TranslationOutcome, Translator,
};
use carve_noc::{msg, Delivery, LinkNetwork, NodeId, Topology};
use carve_runtime::page_table::{PageMigration, PageTable};
use carve_runtime::sched::cta_range_of_gpu;
use carve_runtime::sharing::{profile_workload, SharingProfile};
use carve_trace::WorkloadSpec;
use sim_core::event::{earliest, NextEvent};
use sim_core::fast::{FastSet, Slab, TagTable};
use sim_core::profile::{ProfileReport, StallCat, StallLedger};
use sim_core::telemetry::{self, IntervalRecord, NullTraceSink, Timeline, TraceEvent, TraceSink};
use sim_core::{Cycle, FaultEvent, FaultKind, RecoverySnapshot, ScaledConfig, SimError, Watchdog};

use crate::design::{Design, SimConfig};
use crate::metrics::SimResult;
use crate::sanitize::{Sanitizer, Violation};

/// Base address of the RDC carve-out in each GPU's physical space; far
/// above any workload VA so probe/fill traffic shares DRAM channels with
/// regular accesses without colliding.
const RDC_BASE: u64 = 1 << 45;

/// Link backlog (cycles of serialization) beyond which senders stall.
const CONGESTION_HORIZON: u64 = 1500;

/// Extra stall charged to a migrating page beyond the transfer itself
/// (TLB shootdown, driver bookkeeping).
const MIGRATION_STALL: u64 = 800;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RemotePhase {
    Go,
    AtHome,
    Return,
}

/// Why a remote read crossed the fabric — carried on the pending entry
/// purely so the cycle-accounting profiler can attribute the resulting
/// warp stall (remote-link vs rdc-miss vs epoch-flush vs
/// coherence-invalidate). Never consulted by protocol logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RemoteCause {
    /// Plain remote-home read (no RDC in the design, or predictor bypass
    /// without an attributable miss kind).
    Plain,
    /// Launched after an RDC capacity/conflict miss (or a mispredicted
    /// probe bypass).
    RdcMiss,
    /// Launched after the RDC copy went stale at a software-coherence
    /// epoch flush.
    Epoch,
    /// Re-fetch of a line dropped by a hardware-coherence invalidation.
    Inval,
}

#[derive(Debug, Clone, Copy)]
enum Pending {
    /// Local DRAM read feeding a core miss.
    LocalRead { gpu: usize, tag: u64 },
    /// Local DRAM read probing the RDC for a remote line.
    RdcProbe {
        gpu: usize,
        tag: u64,
        line: u64,
        home: usize,
    },
    /// Remote read flow: requester → home → (L2/DRAM) → requester.
    RemoteRead {
        requester: usize,
        tag: u64,
        line: u64,
        home: usize,
        phase: RemotePhase,
        cause: RemoteCause,
    },
    /// System-memory read flow over the CPU links.
    CpuRead {
        gpu: usize,
        tag: u64,
        phase: RemotePhase,
    },
    /// Remote write-through arriving at its home node.
    WriteArrive {
        home: usize,
        line: u64,
        writer: usize,
    },
    /// Hardware-coherence invalidate probe in flight.
    Invalidate { target: usize, line: u64 },
}

struct SystemXl<'a> {
    pt: &'a mut PageTable,
    migrations: &'a mut Vec<PageMigration>,
}

impl Translator for SystemXl<'_> {
    fn translate(&mut self, gpu: usize, va: u64, is_write: bool, now: Cycle) -> TranslationOutcome {
        let out = self.pt.access(gpu, va, is_write, now);
        if let Some(m) = out.migration {
            self.migrations.push(m);
        }
        TranslationOutcome {
            home: out.home,
            blocked_until: out.blocked_until,
        }
    }
}

struct NetFabric<'a> {
    net: &'a LinkNetwork,
}

impl Fabric for NetFabric<'_> {
    fn can_send(&self, src: NodeId, dst: NodeId, now: Cycle) -> bool {
        !self.net.congested(src, dst, now, CONGESTION_HORIZON)
    }
}

/// The armed fault schedule and its progress through a run. Hints from
/// the plan are resolved against the real machine at arm time, so every
/// event here names an existing edge/GPU.
struct FaultState {
    /// Resolved schedule, sorted by cycle.
    events: Vec<FaultEvent>,
    /// Index of the next unapplied event; everything before it has fired.
    cursor: usize,
    /// Absolute cycle until which ticks are skipped (`u64::MAX` =
    /// frozen forever, the `--stall-inject-at` behaviour).
    frozen_until: u64,
    /// Cycle at which the impaired-link count last went 0 → >0; open
    /// degradation window closed by the next healthy transition or at
    /// run end.
    impaired_since: Option<u64>,
    /// Accumulated recovery counters (live counters from the NoC/DRAM
    /// models are merged in by [`System::recovery_snapshot`]).
    recovery: RecoverySnapshot,
}

#[derive(Debug, Default)]
struct Traffic {
    local: u64,
    remote: u64,
    cpu: u64,
    rdc_hits: u64,
    migrations: u64,
}

struct System {
    cfg: ScaledConfig,             // state: shared (read-only after build)
    design: Design,                // state: shared (read-only after build)
    num_gpus: usize,               // state: shared (read-only after build)
    cores: Vec<GpuCore>,           // state: gpu-local
    drams: Vec<DramModel>,         // state: gpu-local
    net: LinkNetwork,              // state: shared (single serialized fabric)
    cpu_mem: FlatMemory,           // state: shared (one CPU memory for all GPUs)
    pt: PageTable,                 // state: shared (one page table for all GPUs)
    carve: Option<Carve>,          // state: shared (directory + per-GPU RDCs behind one facade)
    predictors: Vec<HitPredictor>, // state: gpu-local
    /// In-flight system transactions. The slab token *is* the wire token
    /// carried by DRAM/NoC/CPU-memory models, so lookups on completion are
    /// a direct slot index (no hashing). Tokens are unique and strictly
    /// increasing in allocation order — the `delayed` heap's tiebreak
    /// relies on that — and fire-and-forget payloads draw ordered tokens
    /// from the same sequence via `untracked_token`.
    pending: Slab<Pending>, // state: shared (one token space for all flows)
    /// Home responses keyed by due cycle: a min-heap so each tick pops
    /// only the entries that are due instead of scanning everything.
    delayed: BinaryHeap<Reverse<(u64, u64)>>, // (due cycle, token); state: shared
    ext_retry: Vec<VecDeque<(u64, u64)>>, // per home: (token, line); state: gpu-local
    dram_retry: Vec<VecDeque<u64>>, // per gpu: write addresses; state: gpu-local
    traffic: Traffic,              // state: shared (global counters)
    migrations_buf: Vec<PageMigration>, // state: shared (global migration queue)
    /// Per requester GPU, keyed by the core's miss tag: issue cycle of the
    /// warp-visible read (latency histogram bookkeeping).
    issue_time: Vec<TagTable<u64>>, // state: gpu-local
    read_latency: sim_core::Histogram, // state: shared (one global histogram)
    rdc_caches_sysmem: bool,       // state: shared (read-only after build)
    /// Per requester GPU, keyed by miss tag: line to fill into the RDC
    /// when a footnote-2 CPU read returns.
    cpu_fill_lines: Vec<TagTable<u64>>, // state: gpu-local
    /// Scratch for draining cores' completed external reads each tick
    /// without allocating.
    ext_done_scratch: Vec<(u64, Cycle)>, // state: scratch
    /// Scratch for DRAM / CPU-memory completions drained each tick.
    comp_scratch: Vec<Completion>, // state: scratch
    /// Scratch for link deliveries drained each tick.
    deliv_scratch: Vec<Delivery>, // state: scratch
    /// Shadow protocol sanitizer (`None` unless armed): every hook below
    /// is a single `Option` check when off, so sanitized and unsanitized
    /// runs retire identical work.
    san: Option<Box<Sanitizer>>, // state: shared (observer; never feeds protocol)
    /// Armed fault schedule (`None` for fault-free runs: one `Option`
    /// check per tick keeps the fault-free hot path untouched).
    faults: Option<Box<FaultState>>, // state: shared (global schedule)
    /// Per-GPU lines dropped by coherence invalidations, tracked only when
    /// the cycle profiler is on (`None` otherwise — one `Option` check on
    /// the invalidate and remote-read paths). Consumed by
    /// [`System::send_remote_read`] to attribute re-fetches; never read by
    /// protocol logic, so profiled runs retire identical work.
    prof_invalidated: Option<Vec<FastSet>>, // state: gpu-local
}

impl System {
    fn build(spec: &WorkloadSpec, sim: &SimConfig, profile: Option<&SharingProfile>) -> System {
        let mut cfg = sim.cfg.clone();
        cfg.num_gpus = sim.design.num_gpus(&sim.cfg);
        let num_gpus = cfg.num_gpus;
        let mut pt = PageTable::new(num_gpus, cfg.page_size, sim.design.placement_policy());
        if let Some(p) = profile {
            if sim.spill_fraction > 0.0 {
                pt.set_spill_pages(p.coldest_pages(sim.spill_fraction));
            }
            match sim.design {
                Design::NumaGpuRepl => pt.set_replicated_pages(p.read_only_shared_pages()),
                Design::Ideal => pt.set_replicated_pages(p.shared_pages()),
                _ => {}
            }
        }
        let mut cores: Vec<GpuCore> = (0..num_gpus).map(|g| GpuCore::new(&cfg, spec, g)).collect();
        let carve = sim.design.coherence().map(|policy| {
            let mut rdc_cfg = RdcConfig::new(sim.rdc_capacity(), cfg.line_size);
            rdc_cfg.write_policy = sim.rdc_write_policy;
            let mut carve = Carve::new(num_gpus, policy, rdc_cfg);
            carve.set_broadcast_always(sim.gpu_vi_broadcast_always);
            carve.set_directory_mode(sim.directory_coherence);
            carve
        });
        if sim.design == Design::CarveHwc {
            if let Some(p) = profile {
                let watch: Arc<FastSet> = Arc::new(p.rw_shared_line_addrs().into_iter().collect());
                for core in &mut cores {
                    core.set_store_watch(Arc::clone(&watch));
                }
            }
        }
        let drams = (0..num_gpus)
            .map(|_| DramModel::new(DramConfig::from_scaled(&cfg)))
            .collect();
        let topo = Topology::build(
            cfg.topology,
            num_gpus,
            cfg.link_bytes_per_cycle,
            cfg.link_latency,
            cfg.cpu_link_bytes_per_cycle,
            cfg.cpu_link_latency,
        );
        // audit:allow(tick-path-panics) build-time, not tick: SimConfig::validate dry-built this exact topology
        let topo = topo.expect("topology vetted by SimConfig::validate");
        // audit:allow(tick-path-panics) build-time, not tick: a validated topology has only positive-bandwidth edges
        let net = LinkNetwork::from_topology(topo).expect("validated topology");
        let cpu_mem = FlatMemory::new(
            150,
            cfg.cpu_link_bytes_per_cycle * num_gpus as f64,
            cfg.line_size,
        );
        let predictors = if sim.hit_predictor {
            (0..num_gpus).map(|_| HitPredictor::new(4096)).collect()
        } else {
            Vec::new()
        };
        // Arm the fault schedule: plan hints resolve modulo the real
        // machine here, and the legacy `stall_inject_at` hook becomes a
        // forever-freeze event on the same schedule.
        let faults = if sim.fault_plan.is_some() || sim.stall_inject_at.is_some() {
            let mut plan = sim.fault_plan.clone().unwrap_or_default();
            if let Some(at) = sim.stall_inject_at {
                plan.push(at, FaultKind::Freeze { cycles: u64::MAX });
            }
            let num_edges = net.num_edges().max(1) as u64;
            let events = plan
                .events()
                .iter()
                .map(|e| FaultEvent {
                    at: e.at,
                    kind: match e.kind {
                        FaultKind::LinkDegrade { edge, percent } => FaultKind::LinkDegrade {
                            edge: edge % num_edges,
                            percent,
                        },
                        FaultKind::LinkRestore { edge } => FaultKind::LinkRestore {
                            edge: edge % num_edges,
                        },
                        FaultKind::LinkOutage { edge } => FaultKind::LinkOutage {
                            edge: edge % num_edges,
                        },
                        FaultKind::DramTransient { gpu, count } => FaultKind::DramTransient {
                            gpu: gpu % num_gpus as u64,
                            count,
                        },
                        other => other,
                    },
                })
                .collect();
            Some(Box::new(FaultState {
                events,
                cursor: 0,
                frozen_until: 0,
                impaired_since: None,
                recovery: RecoverySnapshot::default(),
            }))
        } else {
            None
        };
        System {
            design: sim.design,
            num_gpus,
            cores,
            drams,
            net,
            cpu_mem,
            pt,
            carve,
            predictors,
            pending: Slab::new(),
            delayed: BinaryHeap::new(),
            ext_retry: (0..num_gpus).map(|_| VecDeque::new()).collect(),
            dram_retry: (0..num_gpus).map(|_| VecDeque::new()).collect(),
            traffic: Traffic::default(),
            migrations_buf: Vec::new(),
            issue_time: (0..num_gpus).map(|_| TagTable::new()).collect(),
            read_latency: sim_core::Histogram::new(),
            rdc_caches_sysmem: sim.rdc_caches_sysmem,
            cpu_fill_lines: (0..num_gpus).map(|_| TagTable::new()).collect(),
            ext_done_scratch: Vec::new(),
            comp_scratch: Vec::new(),
            deliv_scratch: Vec::new(),
            san: None,
            faults,
            cfg,
            prof_invalidated: None,
        }
    }

    /// Arms the profiler's invalidated-line tracking (cause attribution
    /// for coherence-invalidate stalls). Read-only with respect to every
    /// journaled statistic.
    fn enable_profiler_tracking(&mut self) {
        self.prof_invalidated = Some((0..self.num_gpus).map(|_| FastSet::new()).collect());
    }

    /// Arms the shadow protocol sanitizer and the DRAM timing audit.
    fn enable_sanitizer(&mut self) {
        for d in &mut self.drams {
            d.set_timing_audit(true);
        }
        self.san = Some(Box::new(Sanitizer::new(
            self.num_gpus,
            self.carve.as_ref().map(Carve::policy),
            self.carve.as_ref().is_some_and(Carve::directory_mode),
            self.rdc_caches_sysmem,
        )));
    }

    /// One sanitizer step per engine tick: transfers any latched DRAM
    /// timing-audit breach, checks message conservation and the token
    /// census, and converts the first violation into a [`SimError`].
    fn sanitizer_poll(&mut self, now: Cycle) -> Option<SimError> {
        let san = self.san.as_deref_mut()?;
        for (g, d) in self.drams.iter().enumerate() {
            if let Some(msg) = d.timing_violation() {
                san.on_dram_violation(g, msg, now.0);
            }
        }
        let (sent, delivered) = self.net.message_counts();
        san.on_noc_counts(sent, delivered, now.0);
        san.on_hop_counts(self.net.transit_counts(), now.0);
        san.poll_tokens(&self.pending, now.0);
        let v = san.take_violation()?;
        Some(self.sanitizer_error(v, now))
    }

    /// End-of-run sanitizer checks: a quiescent network must have
    /// delivered every message it accepted and forwarded every transit
    /// arrival.
    fn sanitizer_finish(&mut self, now: Cycle) -> Option<SimError> {
        let san = self.san.as_deref_mut()?;
        let (sent, delivered) = self.net.message_counts();
        san.on_run_end(sent, delivered, now.0);
        san.on_hop_run_end(self.net.transit_counts(), now.0);
        san.poll_tokens(&self.pending, now.0);
        let v = san.take_violation()?;
        Some(self.sanitizer_error(v, now))
    }

    fn sanitizer_error(&self, v: Violation, now: Cycle) -> SimError {
        SimError::SanitizerViolation {
            invariant: v.invariant.to_string(),
            cycle: v.cycle,
            detail: format!(
                "{}\ncomponent snapshot at detection (cycle {}):\n{}",
                v.detail,
                now.0,
                self.stall_diagnostic(now)
            ),
        }
    }

    /// Applies every scheduled fault stamped at or before `now`. Called
    /// at the top of the engine loop, before the tick of `now`, so both
    /// engines apply each event at the exact same cycle
    /// ([`System::next_activity`] folds the schedule into the event-skip
    /// horizon). One `Option` check when no plan is armed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FabricPartitioned`] when a link outage leaves
    /// the topology unroutable — the one fault the system cannot degrade
    /// gracefully around.
    fn apply_faults(&mut self, now: Cycle) -> Result<(), SimError> {
        let Some(mut f) = self.faults.take() else {
            return Ok(());
        };
        let result = self.apply_faults_inner(&mut f, now);
        self.faults = Some(f);
        result
    }

    fn apply_faults_inner(&mut self, f: &mut FaultState, now: Cycle) -> Result<(), SimError> {
        while let Some(&FaultEvent { at, kind }) = f.events.get(f.cursor) {
            if at > now.0 {
                break;
            }
            f.cursor += 1;
            f.recovery.faults_applied += 1;
            match kind {
                FaultKind::LinkDegrade { edge, percent } => {
                    self.net.set_link_bandwidth_factor(edge as usize, percent);
                }
                FaultKind::LinkRestore { edge } => {
                    self.net.set_link_bandwidth_factor(edge as usize, 100);
                }
                FaultKind::LinkOutage { edge } => {
                    f.recovery.reroutes += self.net.fail_link(edge as usize, now)?;
                    f.recovery.outages += 1;
                }
                FaultKind::DramTransient { gpu, count } => {
                    self.drams[gpu as usize].inject_transient_faults(count);
                }
                FaultKind::PacketDrop { count } => self.net.inject_packet_drops(count),
                FaultKind::ForwardDrop { count } => self.net.inject_forward_drops(count),
                FaultKind::PacketDup { count } => self.net.inject_packet_dups(count),
                FaultKind::Freeze { cycles } => {
                    let end = if cycles == u64::MAX {
                        u64::MAX
                    } else {
                        now.0.saturating_add(cycles)
                    };
                    if end > f.frozen_until {
                        // Overlapping windows: only the extension counts,
                        // so frozen-cycle accounting stays exact.
                        if end != u64::MAX {
                            f.recovery.frozen_cycles += end - now.0.max(f.frozen_until);
                        }
                        f.frozen_until = end;
                    }
                }
            }
            // Degradation-window accounting: transitions only ever happen
            // here, at exact fault cycles, identically under both engines.
            match (f.impaired_since, self.net.impaired_link_count() > 0) {
                (None, true) => f.impaired_since = Some(now.0),
                (Some(t0), false) => {
                    f.recovery.degraded_cycles += now.0 - t0;
                    f.impaired_since = None;
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Whether injected freezes currently suppress ticking.
    fn is_frozen(&self, now: Cycle) -> bool {
        self.faults.as_ref().is_some_and(|f| now.0 < f.frozen_until)
    }

    /// Point-in-time recovery accounting: the accumulated fault-loop
    /// counters merged with the live NoC/DRAM injection counters and any
    /// still-open degradation window. `None` when no plan is armed.
    fn recovery_snapshot(&self, now: Cycle) -> Option<RecoverySnapshot> {
        let f = self.faults.as_deref()?;
        let mut r = f.recovery;
        r.dram_retries = self.drams.iter().map(DramModel::transient_retries).sum();
        r.dropped_packets = self.net.dropped_packet_count();
        r.duplicated_packets = self.net.duplicated_packet_count();
        if let Some(t0) = f.impaired_since {
            r.degraded_cycles += now.0.saturating_sub(t0);
        }
        Some(r)
    }

    /// Completes a warp-visible read miss and records its latency.
    ///
    /// The `issue_time` entry is removed *before* `complete_miss` frees the
    /// core's tag slot, so a recycled slot can never observe a stale entry.
    fn finish_read(&mut self, gpu: usize, tag: u64, now: Cycle) {
        if let Some(t0) = self.issue_time[gpu].remove(tag) {
            self.read_latency.record(now.0.saturating_sub(t0));
        }
        self.cores[gpu].complete_miss(tag, now);
    }

    fn rdc_probe_addr(&self, gpu: usize, line: u64) -> u64 {
        // audit:allow(tick-path-panics) rdc_probe_addr is only called from CARVE-design paths
        let carve = self.carve.as_ref().expect("CARVE not configured");
        RDC_BASE + carve.rdc(gpu).backing_offset(line)
    }

    /// Posts a DRAM write, falling back to the retry queue when full.
    fn dram_write_best_effort(&mut self, gpu: usize, addr: u64, now: Cycle) {
        let token = self.pending.untracked_token();
        if self.drams[gpu].try_enqueue_write(token, addr, now).is_err() {
            self.dram_retry[gpu].push_back(addr);
        }
    }

    /// Sends hardware-coherence invalidates from `home` to `targets`.
    fn send_invalidates(&mut self, home: usize, line: u64, targets: Vec<usize>, now: Cycle) {
        for target in targets {
            if let Some(san) = self.san.as_deref_mut() {
                san.on_invalidate_send(home, line, target);
            }
            if target == home {
                // The home's own caches are probed without crossing a link.
                self.apply_invalidate(target, line, now);
                continue;
            }
            let token = self.pending.insert(Pending::Invalidate { target, line });
            self.net.send(
                NodeId::Gpu(home),
                NodeId::Gpu(target),
                token,
                msg::INVALIDATE_BYTES,
                now,
            );
        }
    }

    // tick-context: target
    fn apply_invalidate(&mut self, target: usize, line: u64, now: Cycle) {
        if let Some(sets) = self.prof_invalidated.as_mut() {
            sets[target].insert(line);
        }
        if let Some(carve) = self.carve.as_mut() {
            carve.rdc_mut(target).invalidate(line);
        }
        if let Some(san) = self.san.as_deref_mut() {
            if let Some(carve) = self.carve.as_ref() {
                san.on_rdc_invalidate(target, line, carve.rdc(target).contains(line), now.0);
            }
        }
        self.cores[target].invalidate_line(line);
    }

    /// A remote write has (logically) reached its home node.
    // tick-context: home
    fn write_at_home(&mut self, home: usize, line: u64, writer: usize, now: Cycle) {
        self.cores[home].external_write(line);
        self.dram_write_best_effort(home, line, now);
        let Some(carve) = self.carve.as_mut() else {
            return;
        };
        let targets = carve.on_home_write(home, line, writer);
        if let Some(san) = self.san.as_deref_mut() {
            san.on_write(home, line, writer, &targets, now.0);
        }
        self.send_invalidates(home, line, targets, now);
    }

    /// Routes one core request; `false` means "retry next cycle" and the
    /// request must stay at the head of the outbox.
    fn try_route(&mut self, g: usize, req: CoreRequest, now: Cycle) -> bool {
        let me = NodeId::Gpu(g);
        if req.kind == CoreReqKind::ReadMiss {
            // HOL back-pressure may route the same request several times;
            // only the first attempt stamps the issue cycle.
            self.issue_time[g].insert_if_absent(req.tag, now.0);
        }
        match req.kind {
            CoreReqKind::ReadMiss => match req.home {
                NodeId::Gpu(h) if h == g => {
                    if !self.drams[g].can_accept_read(req.line_addr) {
                        return false;
                    }
                    let token = self.pending.insert(Pending::LocalRead {
                        gpu: g,
                        tag: req.tag,
                    });
                    self.drams[g]
                        .try_enqueue_read(token, req.line_addr, now)
                        // audit:allow(tick-path-panics) guarded by can_accept_read in the same branch
                        .expect("capacity checked");
                    if !req.external {
                        self.traffic.local += 1;
                    }
                    true
                }
                NodeId::Gpu(h) => {
                    if self.carve.is_some() {
                        // Optional predictor: predicted misses skip the
                        // serial probe and go remote immediately.
                        if !self.predictors.is_empty() && !self.predictors[g].predict(req.line_addr)
                        {
                            let kind = self
                                .carve
                                .as_mut()
                                // audit:allow(tick-path-panics) inside the carve.is_some() branch
                                .expect("carve checked")
                                .rdc_mut(g)
                                .probe_kind(req.line_addr);
                            let actual = kind.is_hit();
                            if let Some(san) = self.san.as_deref_mut() {
                                san.on_rdc_probe(g, req.line_addr, actual, now.0);
                            }
                            self.predictors[g].update(req.line_addr, actual);
                            // Even on a mispredicted hit we already launched
                            // remotely; count as remote.
                            let cause = match kind {
                                ProbeKind::StaleEpoch => RemoteCause::Epoch,
                                _ => RemoteCause::RdcMiss,
                            };
                            self.send_remote_read(g, h, req.tag, req.line_addr, now, cause);
                            return true;
                        }
                        let probe_addr = self.rdc_probe_addr(g, req.line_addr);
                        if !self.drams[g].can_accept_read(probe_addr) {
                            return false;
                        }
                        let token = self.pending.insert(Pending::RdcProbe {
                            gpu: g,
                            tag: req.tag,
                            line: req.line_addr,
                            home: h,
                        });
                        self.drams[g]
                            .try_enqueue_read(token, probe_addr, now)
                            // audit:allow(tick-path-panics) guarded by can_accept_read in the same branch
                            .expect("capacity checked");
                        true
                    } else {
                        self.send_remote_read(
                            g,
                            h,
                            req.tag,
                            req.line_addr,
                            now,
                            RemoteCause::Plain,
                        );
                        true
                    }
                }
                NodeId::Cpu => {
                    if self.rdc_caches_sysmem && self.carve.is_some() {
                        // Footnote-2 extension: system-memory lines are
                        // eligible for the RDC too.
                        let probe_addr = self.rdc_probe_addr(g, req.line_addr);
                        if !self.drams[g].can_accept_read(probe_addr) {
                            return false;
                        }
                        let token = self.pending.insert(Pending::RdcProbe {
                            gpu: g,
                            tag: req.tag,
                            line: req.line_addr,
                            home: usize::MAX, // sentinel: CPU home
                        });
                        self.drams[g]
                            .try_enqueue_read(token, probe_addr, now)
                            // audit:allow(tick-path-panics) guarded by can_accept_read in the same branch
                            .expect("capacity checked");
                        return true;
                    }
                    let token = self.pending.insert(Pending::CpuRead {
                        gpu: g,
                        tag: req.tag,
                        phase: RemotePhase::Go,
                    });
                    self.net.send(me, NodeId::Cpu, token, msg::REQ_BYTES, now);
                    self.traffic.remote += 1;
                    self.traffic.cpu += 1;
                    true
                }
            },
            CoreReqKind::WriteThrough => match req.home {
                NodeId::Gpu(h) => {
                    debug_assert_ne!(h, g, "write-through is for non-local homes");
                    if let Some(carve) = self.carve.as_mut() {
                        if carve.rdc_mut(g).store(req.line_addr) {
                            let addr = self.rdc_probe_addr(g, req.line_addr);
                            self.dram_write_best_effort(g, addr, now);
                        }
                    }
                    let token = self.pending.insert(Pending::WriteArrive {
                        home: h,
                        line: req.line_addr,
                        writer: g,
                    });
                    self.net
                        .send(me, NodeId::Gpu(h), token, msg::WRITE_DATA_BYTES, now);
                    self.traffic.remote += 1;
                    true
                }
                NodeId::Cpu => {
                    let token = self.pending.untracked_token();
                    self.net
                        .send(me, NodeId::Cpu, token, msg::WRITE_DATA_BYTES, now);
                    self.cpu_mem.enqueue(token, true, now);
                    self.traffic.remote += 1;
                    self.traffic.cpu += 1;
                    true
                }
            },
            CoreReqKind::WriteBack => {
                if !self.drams[g].can_accept_write(req.line_addr) {
                    return false;
                }
                let token = self.pending.untracked_token();
                self.drams[g]
                    .try_enqueue_write(token, req.line_addr, now)
                    // audit:allow(tick-path-panics) guarded by can_accept_write in the same branch
                    .expect("capacity checked");
                self.traffic.local += 1;
                true
            }
            CoreReqKind::SharedStoreNotice => {
                if let Some(carve) = self.carve.as_mut() {
                    let targets = carve.on_home_write(g, req.line_addr, g);
                    if let Some(san) = self.san.as_deref_mut() {
                        san.on_write(g, req.line_addr, g, &targets, now.0);
                    }
                    self.send_invalidates(g, req.line_addr, targets, now);
                }
                true
            }
        }
    }

    fn send_remote_read(
        &mut self,
        g: usize,
        home: usize,
        tag: u64,
        line: u64,
        now: Cycle,
        cause: RemoteCause,
    ) {
        // Profiler attribution only: a re-fetch of a line the coherence
        // protocol invalidated out of this GPU is charged to the
        // invalidation, whatever path launched it.
        let cause = match self.prof_invalidated.as_mut() {
            Some(sets) => {
                if sets[g].remove(line) {
                    RemoteCause::Inval
                } else {
                    cause
                }
            }
            None => cause,
        };
        let token = self.pending.insert(Pending::RemoteRead {
            requester: g,
            tag,
            line,
            home,
            phase: RemotePhase::Go,
            cause,
        });
        self.net.send(
            NodeId::Gpu(g),
            NodeId::Gpu(home),
            token,
            msg::REQ_BYTES,
            now,
        );
        self.traffic.remote += 1;
    }

    fn handle_dram_completions(&mut self, now: Cycle) {
        let mut comps = std::mem::take(&mut self.comp_scratch);
        for g in 0..self.num_gpus {
            comps.clear();
            self.drams[g].tick_into(now, &mut comps);
            for &comp in &comps {
                if comp.is_write {
                    continue;
                }
                // exchange: GPU g's DRAM retires RDC probes issued on
                // behalf of remote requesters, so completion routing is
                // token-directed and crosses GPU contexts by design.
                match self.pending.remove(comp.token) {
                    Some(Pending::LocalRead { gpu, tag }) => {
                        self.finish_read(gpu, tag, now);
                    }
                    Some(Pending::RdcProbe {
                        gpu,
                        tag,
                        line,
                        home,
                    }) => {
                        let kind = self
                            .carve
                            .as_mut()
                            // audit:allow(tick-path-panics) RdcProbe tokens are only minted under CARVE designs
                            .expect("RDC probe without CARVE")
                            .rdc_mut(gpu)
                            .probe_kind(line);
                        let hit = kind.is_hit();
                        if let Some(san) = self.san.as_deref_mut() {
                            san.on_rdc_probe(gpu, line, hit, now.0);
                        }
                        if !self.predictors.is_empty() {
                            self.predictors[gpu].update(line, hit);
                        }
                        if hit {
                            self.traffic.local += 1;
                            self.traffic.rdc_hits += 1;
                            self.finish_read(gpu, tag, now);
                        } else if home == usize::MAX {
                            // CPU-homed line (footnote-2 mode): fetch over
                            // the CPU link and fill the RDC on return.
                            let token = self.pending.insert(Pending::CpuRead {
                                gpu,
                                tag,
                                phase: RemotePhase::Go,
                            });
                            self.net.send(
                                NodeId::Gpu(gpu),
                                NodeId::Cpu,
                                token,
                                msg::REQ_BYTES,
                                now,
                            );
                            self.traffic.remote += 1;
                            self.traffic.cpu += 1;
                            self.cpu_fill_lines[gpu].insert_if_absent(tag, line);
                        } else {
                            let cause = match kind {
                                ProbeKind::StaleEpoch => RemoteCause::Epoch,
                                _ => RemoteCause::RdcMiss,
                            };
                            self.send_remote_read(gpu, home, tag, line, now, cause);
                        }
                    }
                    Some(_) => {
                        self.on_stale_delivery(
                            "DRAM read completion in a non-memory phase",
                            comp.token,
                            now,
                        );
                    }
                    None => {
                        // Untracked tokens belong to posted writes; a read
                        // completion landing here is a lifecycle breach.
                        if let Some(san) = self.san.as_deref_mut() {
                            san.on_unknown_token("DRAM read completion", comp.token, now.0);
                        }
                    }
                }
            }
        }
        self.comp_scratch = comps;
    }

    fn handle_cpu_mem(&mut self, now: Cycle) {
        let mut comps = std::mem::take(&mut self.comp_scratch);
        comps.clear();
        self.cpu_mem.tick_into(now, &mut comps);
        for &comp in &comps {
            if comp.is_write {
                continue;
            }
            if let Some(Pending::CpuRead { gpu, tag, phase }) =
                self.pending.get(comp.token).copied()
            {
                debug_assert_eq!(phase, RemotePhase::AtHome);
                // audit:allow(tick-path-panics) token fetched from self.pending two lines up
                *self.pending.get_mut(comp.token).expect("live CpuRead") = Pending::CpuRead {
                    gpu,
                    tag,
                    phase: RemotePhase::Return,
                };
                self.net.send(
                    NodeId::Cpu,
                    NodeId::Gpu(gpu),
                    comp.token,
                    msg::RESP_DATA_BYTES,
                    now,
                );
            }
        }
        self.comp_scratch = comps;
    }

    /// A message arrived for a live token whose state machine cannot
    /// accept it. Fault-free, the protocol never re-delivers a consumed
    /// request, so this is a hard bug; under injected packet duplication
    /// it is the duplicate arriving after the original advanced the state
    /// machine. The endpoint discards the stale copy and reports it to
    /// the sanitizer, which flags it as a token-lifecycle breach.
    fn on_stale_delivery(&mut self, kind: &'static str, token: u64, now: Cycle) {
        assert!(
            self.faults.is_some(),
            "protocol bug: {kind} for token {token:#x} at cycle {} with no fault injection armed",
            now.0
        );
        if let Some(san) = self.san.as_deref_mut() {
            san.on_stale_delivery(kind, token, now.0);
        }
    }

    fn handle_deliveries(&mut self, now: Cycle) {
        let mut ds = std::mem::take(&mut self.deliv_scratch);
        ds.clear();
        self.net.tick_into(now, &mut ds);
        for &d in &ds {
            let Some(p) = self.pending.get(d.token).copied() else {
                // Untracked payloads (migrations, CPU writes) are legal;
                // a tracked token with no entry is a lifecycle breach.
                if let Some(san) = self.san.as_deref_mut() {
                    san.on_unknown_token("link delivery", d.token, now.0);
                }
                continue;
            };
            // exchange: a link delivery executes at its destination node
            // (d.dst), not at any iterating GPU — dispatch is
            // token-directed and crosses GPU contexts by design.
            match p {
                Pending::RemoteRead {
                    requester,
                    tag,
                    line,
                    home,
                    phase: RemotePhase::Go,
                    cause,
                } => {
                    debug_assert_eq!(d.dst, NodeId::Gpu(home));
                    if let Some(carve) = self.carve.as_mut() {
                        carve.on_home_read(home, line, requester);
                    }
                    if let Some(san) = self.san.as_deref_mut() {
                        if let Some(carve) = self.carve.as_ref() {
                            let state = carve.imst(home).state(line);
                            let dir = carve.directory(home).map(|d| d.has_sharer(line, requester));
                            san.on_grant(home, line, requester, state, dir, now.0);
                        }
                    }
                    // audit:allow(tick-path-panics) token fetched from self.pending in the same match
                    *self.pending.get_mut(d.token).expect("live RemoteRead") =
                        Pending::RemoteRead {
                            requester,
                            tag,
                            line,
                            home,
                            phase: RemotePhase::AtHome,
                            cause,
                        };
                    if self.cores[home].external_read(d.token, line).is_err() {
                        self.ext_retry[home].push_back((d.token, line));
                    }
                }
                Pending::RemoteRead {
                    requester,
                    tag,
                    line,
                    home,
                    phase: RemotePhase::Return,
                    ..
                } => {
                    debug_assert_eq!(d.dst, NodeId::Gpu(requester));
                    self.pending.remove(d.token);
                    if self.carve.is_some() {
                        if let Some(san) = self.san.as_deref_mut() {
                            san.on_rdc_insert(requester, line, home, now.0);
                        }
                    }
                    if let Some(carve) = self.carve.as_mut() {
                        if let Some(victim) = carve.rdc_mut(requester).insert(line) {
                            // Write-back RDC ablation: flush the dirty
                            // victim toward its own home.
                            let vpage = victim / self.cfg.page_size;
                            if let Some(NodeId::Gpu(vh)) = self.pt.home_of(vpage) {
                                if vh != requester {
                                    let token = self.pending.insert(Pending::WriteArrive {
                                        home: vh,
                                        line: victim,
                                        writer: requester,
                                    });
                                    self.net.send(
                                        NodeId::Gpu(requester),
                                        NodeId::Gpu(vh),
                                        token,
                                        msg::WRITE_DATA_BYTES,
                                        now,
                                    );
                                }
                            }
                        }
                        let addr = self.rdc_probe_addr(requester, line);
                        self.dram_write_best_effort(requester, addr, now);
                    }
                    self.finish_read(requester, tag, now);
                }
                Pending::RemoteRead { .. } => {
                    self.on_stale_delivery("link delivery in AtHome phase", d.token, now);
                }
                Pending::CpuRead {
                    gpu,
                    tag,
                    phase: RemotePhase::Go,
                } => {
                    debug_assert_eq!(d.dst, NodeId::Cpu);
                    // audit:allow(tick-path-panics) token fetched from self.pending in the same match
                    *self.pending.get_mut(d.token).expect("live CpuRead") = Pending::CpuRead {
                        gpu,
                        tag,
                        phase: RemotePhase::AtHome,
                    };
                    self.cpu_mem.enqueue(d.token, false, now);
                }
                Pending::CpuRead {
                    gpu,
                    tag,
                    phase: RemotePhase::Return,
                } => {
                    debug_assert_eq!(d.dst, NodeId::Gpu(gpu));
                    self.pending.remove(d.token);
                    if let Some(line) = self.cpu_fill_lines[gpu].remove(tag) {
                        if self.carve.is_some() {
                            if let Some(san) = self.san.as_deref_mut() {
                                san.on_rdc_insert(gpu, line, usize::MAX, now.0);
                            }
                        }
                        if let Some(carve) = self.carve.as_mut() {
                            carve.rdc_mut(gpu).insert(line);
                        }
                        let addr = self.rdc_probe_addr(gpu, line);
                        self.dram_write_best_effort(gpu, addr, now);
                    }
                    self.finish_read(gpu, tag, now);
                }
                Pending::CpuRead { .. } => {
                    self.on_stale_delivery("link delivery mid-CPU-memory", d.token, now);
                }
                Pending::WriteArrive { home, line, writer } => {
                    self.pending.remove(d.token);
                    self.write_at_home(home, line, writer, now);
                }
                Pending::Invalidate { target, line } => {
                    self.pending.remove(d.token);
                    self.apply_invalidate(target, line, now);
                }
                Pending::LocalRead { .. } | Pending::RdcProbe { .. } => {
                    self.on_stale_delivery("link delivery for a DRAM-only flow", d.token, now);
                }
            }
        }
        self.deliv_scratch = ds;
    }

    fn handle_delayed(&mut self, now: Cycle) {
        while let Some(&Reverse((due, token))) = self.delayed.peek() {
            if due > now.0 {
                break;
            }
            self.delayed.pop();
            if let Some(Pending::RemoteRead {
                requester,
                tag,
                line,
                home,
                phase: RemotePhase::AtHome,
                cause,
            }) = self.pending.get(token).copied()
            {
                // audit:allow(tick-path-panics) token fetched from self.pending two lines up
                *self.pending.get_mut(token).expect("live RemoteRead") = Pending::RemoteRead {
                    requester,
                    tag,
                    line,
                    home,
                    phase: RemotePhase::Return,
                    cause,
                };
                self.net.send(
                    NodeId::Gpu(home),
                    NodeId::Gpu(requester),
                    token,
                    msg::RESP_DATA_BYTES,
                    now,
                );
            }
        }
    }

    fn handle_retries(&mut self, now: Cycle) {
        for g in 0..self.num_gpus {
            while let Some(&(token, line)) = self.ext_retry[g].front() {
                if self.cores[g].external_read(token, line).is_ok() {
                    self.ext_retry[g].pop_front();
                } else {
                    break;
                }
            }
            while let Some(&addr) = self.dram_retry[g].front() {
                if self.drams[g].can_accept_write(addr) {
                    let token = self.pending.untracked_token();
                    self.drams[g]
                        .try_enqueue_write(token, addr, now)
                        // audit:allow(tick-path-panics) guarded by can_accept_write in the same branch
                        .expect("capacity checked");
                    self.dram_retry[g].pop_front();
                } else {
                    break;
                }
            }
        }
    }

    fn process_migrations(&mut self, now: Cycle) {
        // Take/restore so the buffer's capacity survives across ticks
        // (translation refills it while the cores tick).
        let mut migrations = std::mem::take(&mut self.migrations_buf);
        for m in migrations.drain(..) {
            let transfer = (self.cfg.page_size as f64 / self.cfg.link_bytes_per_cycle) as u64
                + self.cfg.link_latency;
            self.pt
                .block_page_until(m.page, Cycle(now.0 + transfer + MIGRATION_STALL));
            let token = self.pending.untracked_token(); // untracked payload
            self.net
                .send(m.from, NodeId::Gpu(m.to), token, self.cfg.page_size, now);
            // exchange: page migration shoots down every GPU's TLB — a
            // deliberate broadcast over all cores, serialized here.
            for core in &mut self.cores {
                core.shootdown(m.page);
            }
            self.traffic.migrations += 1;
        }
        self.migrations_buf = migrations;
    }

    fn tick(&mut self, now: Cycle) {
        self.handle_dram_completions(now);
        self.handle_cpu_mem(now);
        self.handle_deliveries(now);
        self.handle_delayed(now);
        self.handle_retries(now);
        // GPU cores issue and service.
        {
            for g in 0..self.num_gpus {
                let mut xl = SystemXl {
                    pt: &mut self.pt,
                    migrations: &mut self.migrations_buf,
                };
                let fabric = NetFabric { net: &self.net };
                self.cores[g].tick(now, &mut xl, &fabric);
            }
        }
        self.process_migrations(now);
        // Home-side external reads that completed in the cores, drained
        // through a reused scratch buffer (the heap is order-insensitive).
        for g in 0..self.num_gpus {
            self.cores[g].drain_external_done_into(&mut self.ext_done_scratch);
        }
        for &(token, at) in &self.ext_done_scratch {
            self.delayed.push(Reverse((at.0, token)));
        }
        self.ext_done_scratch.clear();
        // Drain outboxes with head-of-line back-pressure.
        for g in 0..self.num_gpus {
            while let Some(&req) = self.cores[g].outbox_front() {
                if self.try_route(g, req, now) {
                    self.cores[g].outbox_pop();
                } else {
                    break;
                }
            }
        }
    }

    fn quiescent(&self) -> bool {
        self.pending.is_empty()
            && self.delayed.is_empty()
            && self.cores.iter().all(GpuCore::is_idle)
            && self.drams.iter().all(DramModel::is_idle)
            && self.net.is_idle()
            && self.cpu_mem.is_idle()
            && self.ext_retry.iter().all(VecDeque::is_empty)
            && self.dram_retry.iter().all(VecDeque::is_empty)
    }

    // EQUIVALENCE: `next_activity` aggregates per-component `NextEvent`
    // horizons, each of which under-approximates its next interesting
    // cycle (retry queues pin the horizon to `now + 1`, preserving the
    // stepping engine's every-cycle retry cadence). Jumping `now` to the
    // aggregate minimum therefore skips only ticks where `tick()` would
    // have been a no-op for every component, so the event-skip engine
    // retires the same work at the same cycles as stepping —
    // `skip_engine_matches_step_engine_on_a_quick_run` and the golden
    // fixtures (both engines) pin this bit-for-bit.
    /// The event-skipping engine's horizon: the earliest future cycle at
    /// which any component can act (see [`NextEvent`]). Returns `None`
    /// only when the system will never act again without a kernel launch.
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        let floor = now.0 + 1;
        // Retry queues are re-attempted every cycle in the stepping
        // engine; keep that cadence so retries land on the same cycle.
        if self.ext_retry.iter().any(|q| !q.is_empty())
            || self.dram_retry.iter().any(|q| !q.is_empty())
        {
            return Some(Cycle(floor));
        }
        // The floor is the lowest horizon any component can report, so the
        // fold short-circuits the moment it is reached — during busy phases
        // (some SM always ready) this keeps the skip engine's per-cycle
        // overhead to roughly one core scan.
        let mut horizon: Option<Cycle> = None;
        for core in &self.cores {
            horizon = earliest(horizon, core.next_event(now));
            if horizon == Some(Cycle(floor)) {
                return horizon;
            }
        }
        for dram in &self.drams {
            horizon = earliest(horizon, dram.next_event(now));
            if horizon == Some(Cycle(floor)) {
                return horizon;
            }
        }
        horizon = earliest(horizon, self.net.next_event(now));
        horizon = earliest(horizon, self.cpu_mem.next_event(now));
        if let Some(&Reverse((due, _))) = self.delayed.peek() {
            horizon = earliest(horizon, Some(Cycle(due.max(floor))));
        }
        // Fault schedule: the next unapplied event and the end of any
        // freeze window must be hit at their exact cycles, or the two
        // engines would apply/unfreeze at different times.
        if let Some(f) = self.faults.as_deref() {
            if let Some(&FaultEvent { at, .. }) = f.events.get(f.cursor) {
                horizon = earliest(horizon, Some(Cycle(at.max(floor))));
            }
            if f.frozen_until != u64::MAX && f.frozen_until > now.0 {
                horizon = earliest(horizon, Some(Cycle(f.frozen_until)));
            }
        }
        horizon
    }

    /// Monotonic count of progress events: retired warp instructions,
    /// serviced DRAM accesses, link messages sent and delivered, and CPU
    /// memory accesses. The watchdog compares this across a budget window;
    /// a window with an unchanged signature had zero progress events.
    /// Queue rejections are deliberately excluded — a retry loop bouncing
    /// off a full queue forever must still read as a stall.
    fn progress_signature(&self) -> u64 {
        let mut sig = 0u64;
        for core in &self.cores {
            sig = sig.wrapping_add(core.stats().instructions);
        }
        for d in &self.drams {
            let s = d.stats();
            sig = sig.wrapping_add(s.reads).wrapping_add(s.writes);
        }
        let (sent, delivered) = self.net.message_counts();
        // Transit hops count as progress too: a long multi-hop flight
        // crossing switches must not read as a stalled window.
        let (transit_recv, transit_fwd) = self.net.transit_totals();
        let cpu = self.cpu_mem.stats();
        sig.wrapping_add(sent)
            .wrapping_add(delivered)
            .wrapping_add(transit_recv)
            .wrapping_add(transit_fwd)
            .wrapping_add(cpu.reads)
            .wrapping_add(cpu.writes)
    }

    /// Names every occupied component for a watchdog report: per-SM warp
    /// occupancy, per-DRAM-channel queue depths, per-link backlogs, retry
    /// queues, and the age of the oldest in-flight read.
    fn stall_diagnostic(&self, now: Cycle) -> String {
        let mut lines = Vec::new();
        if let Some(&t0) = self.issue_time.iter().flat_map(TagTable::values).min() {
            lines.push(format!(
                "oldest in-flight read: issued at cycle {t0}, {} cycles ago",
                now.0.saturating_sub(t0)
            ));
        }
        lines.push(format!(
            "pending tokens: {}, delayed home responses: {}",
            self.pending.len(),
            self.delayed.len()
        ));
        for (g, q) in self.ext_retry.iter().enumerate() {
            if !q.is_empty() {
                lines.push(format!("gpu{g} external-read retry backlog: {}", q.len()));
            }
        }
        for (g, q) in self.dram_retry.iter().enumerate() {
            if !q.is_empty() {
                lines.push(format!("gpu{g} dram-write retry backlog: {}", q.len()));
            }
        }
        // One source of truth for occupancy: the same read-only component
        // snapshots the telemetry sampler consumes.
        for (g, core) in self.cores.iter().enumerate() {
            for l in core.snapshot().occupancy_report() {
                lines.push(format!("gpu{g} {l}"));
            }
        }
        for (g, d) in self.drams.iter().enumerate() {
            for l in d.snapshot().occupancy_report() {
                lines.push(format!("gpu{g} dram {l}"));
            }
        }
        lines.extend(self.net.snapshot().occupancy_report());
        if self.cpu_mem.in_flight() > 0 {
            lines.push(format!(
                "cpu memory: {} accesses in service",
                self.cpu_mem.in_flight()
            ));
        }
        if let Some(f) = self.faults.as_deref() {
            lines.push(format!(
                "fault state: {} of {} events applied; {}",
                f.cursor,
                f.events.len(),
                // audit:allow(tick-path-panics) guarded: recovery_snapshot is Some whenever faults is Some
                self.recovery_snapshot(now).expect("faults armed").summary()
            ));
            if f.frozen_until == u64::MAX {
                lines.push("frozen: forever (injected freeze)".into());
            } else if f.frozen_until > now.0 {
                lines.push(format!("frozen until cycle {}", f.frozen_until));
            }
            lines.extend(self.net.fault_report());
        }
        if lines.is_empty() {
            lines.push("no component reports occupancy (engine spinning while idle)".into());
        }
        lines.join("\n")
    }

    fn kernel_boundary(&mut self, now: Cycle) {
        for g in 0..self.num_gpus {
            if self.design.flushes_llc_at_boundary() {
                // Dirty victims appear only when pages migrated here after
                // their lines were cached as remote; flush them to DRAM.
                for line in self.cores[g].software_flush() {
                    self.dram_write_best_effort(g, line, now);
                }
            } else {
                self.cores[g].invalidate_l1s();
            }
        }
        if let Some(carve) = self.carve.as_mut() {
            let dirty_per_gpu = carve.on_kernel_boundary();
            for (g, lines) in dirty_per_gpu.into_iter().enumerate() {
                // Write-back RDC ablation: flush dirty lines to their homes
                // over the links before the next kernel may observe them.
                for line in lines {
                    let page = line / self.cfg.page_size;
                    if let Some(NodeId::Gpu(h)) = self.pt.home_of(page) {
                        if h != g {
                            let token = self.pending.insert(Pending::WriteArrive {
                                home: h,
                                line,
                                writer: g,
                            });
                            self.net.send(
                                NodeId::Gpu(g),
                                NodeId::Gpu(h),
                                token,
                                msg::WRITE_DATA_BYTES,
                                now,
                            );
                        }
                    }
                }
            }
        }
        if let Some(san) = self.san.as_deref_mut() {
            if let Some(carve) = self.carve.as_ref() {
                san.on_kernel_boundary(carve, now.0);
            }
        }
    }
}

/// How the simulation loop advances time.
///
/// Both modes produce bit-identical results (the event-skipping engine
/// only omits cycles where provably nothing happens); `Step` exists for
/// verification and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Jump `now` to the minimum [`NextEvent`] horizon across components.
    EventSkip,
    /// Advance `now` one cycle at a time (the original engine).
    Step,
}

impl EngineMode {
    /// The default mode: event skipping, unless the `CARVE_STEP`
    /// environment variable forces the stepping engine.
    pub fn from_env() -> EngineMode {
        if std::env::var_os("CARVE_STEP").is_some() {
            EngineMode::Step
        } else {
            EngineMode::EventSkip
        }
    }
}

/// Per-GPU cumulative counters captured at the previous sample boundary;
/// interval records are the difference between two of these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct GpuCum {
    core: CoreStats,
    dram: DramStats,
    link_bytes: u64,
    rdc_hits: u64,
    rdc_misses: u64,
    rdc_insertions: u64,
    rdc_invalidations: u64,
}

/// The interval telemetry sampler. Read-only over the [`System`]: it
/// differences cumulative component counters at interval boundaries and
/// snapshots point-in-time occupancy, never mutating model state — so a
/// sampled run's aggregates are bit-identical to an unsampled run's.
///
/// Correct under event skipping: [`Sampler::advance_to`] runs before the
/// tick at `now`, and every cycle between the previous tick and `now` was
/// provably quiescent, so cumulative counters at each crossed boundary
/// equal the counters observed now.
struct Sampler {
    interval: u64,
    next_at: u64,
    last_boundary: u64,
    prev: Vec<GpuCum>,
    timeline: Timeline,
}

impl Sampler {
    fn new(interval: u64, num_gpus: usize) -> Sampler {
        Sampler {
            interval,
            next_at: interval,
            last_boundary: 0,
            prev: vec![GpuCum::default(); num_gpus],
            timeline: Timeline::new(interval),
        }
    }

    fn cum_of(sys: &System, g: usize) -> GpuCum {
        let (rdc_hits, rdc_misses, rdc_insertions, rdc_invalidations) = match &sys.carve {
            Some(c) => {
                let s = c.rdc(g).stats();
                (
                    s.hits,
                    s.misses + s.stale_misses,
                    s.insertions,
                    s.invalidations,
                )
            }
            None => (0, 0, 0, 0),
        };
        GpuCum {
            core: sys.cores[g].stats(),
            dram: sys.drams[g].stats(),
            link_bytes: sys.net.gpu_outbound_bytes(g),
            rdc_hits,
            rdc_misses,
            rdc_insertions,
            rdc_invalidations,
        }
    }

    /// Emits one record per GPU for the interval `[start, end)` and rolls
    /// the cumulative baseline forward.
    fn emit(&mut self, sys: &System, start: u64, end: u64) {
        for g in 0..sys.num_gpus {
            let cum = Self::cum_of(sys, g);
            let prev = self.prev[g];
            let snap = sys.cores[g].snapshot();
            self.timeline.records.push(IntervalRecord {
                start,
                end,
                gpu: g as u32,
                instructions: cum.core.instructions - prev.core.instructions,
                active_warps: snap.active_warps() as u64,
                waiting_mem_warps: snap.waiting_mem_warps() as u64,
                l1_hits: cum.core.l1_hits - prev.core.l1_hits,
                l1_misses: cum.core.l1_misses - prev.core.l1_misses,
                l2_hits: cum.core.l2_hits - prev.core.l2_hits,
                l2_misses: cum.core.l2_misses - prev.core.l2_misses,
                mshr_outstanding: snap.mshr_outstanding as u64,
                outbox_backlog: snap.outbox_backlog as u64,
                dram_reads: cum.dram.reads - prev.dram.reads,
                dram_writes: cum.dram.writes - prev.dram.writes,
                dram_row_hits: cum.dram.row_hits - prev.dram.row_hits,
                dram_row_misses: cum.dram.row_misses - prev.dram.row_misses,
                dram_bytes: cum.dram.bytes_transferred - prev.dram.bytes_transferred,
                link_bytes_out: cum.link_bytes - prev.link_bytes,
                link_in_flight: sys.net.gpu_outbound_in_flight(g) as u64,
                rdc_hits: cum.rdc_hits - prev.rdc_hits,
                rdc_misses: cum.rdc_misses - prev.rdc_misses,
                rdc_insertions: cum.rdc_insertions - prev.rdc_insertions,
                rdc_invalidations: cum.rdc_invalidations - prev.rdc_invalidations,
            });
            self.prev[g] = cum;
        }
        self.last_boundary = end;
    }

    /// Samples every interval boundary at or before `now`. Must be called
    /// before the tick at `now` executes.
    fn advance_to(&mut self, now: u64, sys: &System) {
        while self.next_at <= now {
            let (start, end) = (self.last_boundary, self.next_at);
            self.emit(sys, start, end);
            self.next_at += self.interval;
        }
    }

    /// Closes the final (possibly partial) interval at the run's last
    /// cycle, so per-interval instruction counts sum to the run total
    /// exactly.
    fn finish(mut self, sys: &System, end_cycle: u64) -> Timeline {
        let residual = (0..sys.num_gpus).any(|g| Self::cum_of(sys, g) != self.prev[g]);
        if end_cycle > self.last_boundary || residual {
            let start = self.last_boundary;
            self.emit(sys, start, end_cycle);
        }
        self.timeline
    }
}

/// Per-GPU summary of what in-flight protocol traffic is waiting on,
/// rebuilt by one pending-slab scan per profiled tick.
#[derive(Debug, Clone, Copy, Default)]
struct GpuWaitFlags {
    epoch: bool,
    inval: bool,
    rdc: bool,
    remote: bool,
    local: bool,
}

/// The cycle-accounting profiler (DESIGN.md §14). Read-only over the
/// [`System`], gated exactly like the [`Sampler`]: one `Option` check per
/// tick when off, and a profiled run's journal is bit-identical to an
/// unprofiled run's.
///
/// Every simulated SM cycle is charged to exactly one [`StallCat`]:
/// [`Profiler::on_tick`] charges the cycle being ticked from post-tick
/// state, and [`Profiler::charge_to`] charges the cycles the event-skip
/// engine jumped over (or a fault froze) with the class captured after the
/// previous tick — sound because a skipped span is provably quiescent, so
/// the stall state cannot change inside it. The loop ticks through the
/// final cycle inclusive while `SimResult::cycles` counts it exclusive, so
/// [`Profiler::finish`] retracts the last tick's charge; per-GPU totals
/// then sum to `cycles × SMs` exactly (the tested invariant).
struct Profiler {
    num_gpus: usize,
    sms_per_gpu: usize,
    ledger: StallLedger,
    /// Next unaccounted cycle: everything below it has been charged.
    last: u64,
    /// Per-(gpu, sm) class for quiescent skipped/frozen cycles, flattened
    /// `gpu * sms_per_gpu + sm`; the post-tick stall state.
    span_class: Vec<StallCat>,
    /// Per-(gpu, sm) class charged at the most recent tick (retracted by
    /// [`Profiler::finish`]).
    tick_class: Vec<StallCat>,
    /// Per-(gpu, sm) cumulative instruction count at the previous tick;
    /// a delta marks the cycle as issuing.
    prev_instr: Vec<u64>,
    /// Stacked-stall interval emission, matching the telemetry interval
    /// (`None`: totals only).
    interval: Option<u64>,
    next_at: u64,
    last_boundary: u64,
    /// Scratch for the per-tick pending-slab census.
    flags: Vec<GpuWaitFlags>,
}

impl Profiler {
    fn new(num_gpus: usize, sms_per_gpu: usize, interval: Option<u64>) -> Profiler {
        let slots = num_gpus * sms_per_gpu;
        Profiler {
            num_gpus,
            sms_per_gpu,
            ledger: StallLedger::new(num_gpus),
            last: 0,
            span_class: vec![StallCat::Idle; slots],
            tick_class: vec![StallCat::Idle; slots],
            prev_instr: vec![0; slots],
            interval,
            next_at: interval.unwrap_or(u64::MAX),
            last_boundary: 0,
            flags: vec![GpuWaitFlags::default(); num_gpus],
        }
    }

    /// Charges every cycle in `[last, to)` with the span classes and
    /// closes any interval boundary crossed (or landed on exactly).
    fn charge_to(&mut self, to: u64) {
        loop {
            if let Some(iv) = self.interval {
                if self.next_at <= self.last {
                    self.ledger.flush_interval(self.last_boundary, self.next_at);
                    self.last_boundary = self.next_at;
                    self.next_at += iv;
                    continue;
                }
            }
            if self.last >= to {
                break;
            }
            let end = to.min(self.next_at);
            let n = end - self.last;
            for g in 0..self.num_gpus {
                for s in 0..self.sms_per_gpu {
                    self.ledger
                        .add(g, self.span_class[g * self.sms_per_gpu + s], n);
                }
            }
            self.last = end;
        }
    }

    /// Exclusive classification of a memory-stalled SM on GPU `g`: the
    /// farthest-downstream cause in flight wins, structural stalls first.
    fn classify_mem(core: &GpuCore, f: GpuWaitFlags) -> StallCat {
        if core.mshr_is_full() {
            StallCat::MshrFull
        } else if core.outbox_is_full() {
            StallCat::LinkQueue
        } else if f.epoch {
            StallCat::EpochFlush
        } else if f.inval {
            StallCat::CoherenceInvalidate
        } else if f.rdc {
            StallCat::RdcMiss
        } else if f.remote {
            StallCat::RemoteLink
        } else if f.local {
            StallCat::LocalDram
        } else if core.mshr_outstanding() > 0 {
            StallCat::L2Miss
        } else {
            // Warps waiting on memory with nothing past the L1/bank
            // pipeline in flight: the miss is still inside the L1.
            StallCat::L1Miss
        }
    }

    /// Charges the cycle that was just ticked at `now` from post-tick
    /// state, and refreshes the span classes for any skip that follows.
    fn on_tick(&mut self, now: u64, sys: &System) {
        self.charge_to(now);
        for f in &mut self.flags {
            *f = GpuWaitFlags::default();
        }
        let flags = &mut self.flags;
        sys.pending.for_each(|_, p| match *p {
            Pending::LocalRead { gpu, .. } => flags[gpu].local = true,
            Pending::RdcProbe { gpu, .. } => flags[gpu].rdc = true,
            Pending::RemoteRead {
                requester, cause, ..
            } => match cause {
                RemoteCause::Plain => flags[requester].remote = true,
                RemoteCause::RdcMiss => flags[requester].rdc = true,
                RemoteCause::Epoch => flags[requester].epoch = true,
                RemoteCause::Inval => flags[requester].inval = true,
            },
            Pending::CpuRead { gpu, .. } => flags[gpu].remote = true,
            Pending::WriteArrive { .. } | Pending::Invalidate { .. } => {}
        });
        for g in 0..self.num_gpus {
            let core = &sys.cores[g];
            let mem_class = Self::classify_mem(core, self.flags[g]);
            for (s, sm) in core.sms().iter().enumerate() {
                let i = g * self.sms_per_gpu + s;
                let instr = sm.stats().instructions;
                let stall = if sm.is_idle() {
                    StallCat::Idle
                } else if sm.warps_waiting_mem() > 0 {
                    mem_class
                } else {
                    // Warps resident but none waiting on memory: the
                    // pipeline is occupied by in-flight compute, which we
                    // count as issuing rather than inventing a category
                    // the taxonomy doesn't have.
                    StallCat::Issuing
                };
                let cls = if instr > self.prev_instr[i] {
                    StallCat::Issuing
                } else {
                    stall
                };
                self.prev_instr[i] = instr;
                self.ledger.add(g, cls, 1);
                self.tick_class[i] = cls;
                self.span_class[i] = stall;
            }
        }
        self.last = now + 1;
    }

    /// Retracts the final tick (charged inclusive while `cycles` counts
    /// exclusive), closes the residual interval, and assembles the report.
    fn finish(mut self, sys: &System, end_cycle: u64) -> ProfileReport {
        // A successful run always ends right after an `on_tick` at
        // `end_cycle`, so `last == end_cycle + 1` and every interval
        // boundary at or below `end_cycle` has already been flushed. The
        // final tick's charge is still in the open interval — retract it
        // *before* closing the residual so the subtraction cannot hit an
        // already-flushed accumulator.
        debug_assert_eq!(self.last, end_cycle + 1, "profiler missed cycles");
        if self.last > end_cycle {
            for g in 0..self.num_gpus {
                for s in 0..self.sms_per_gpu {
                    self.ledger
                        .retract(g, self.tick_class[g * self.sms_per_gpu + s], 1);
                }
            }
        }
        if self.interval.is_some() {
            self.ledger.flush_interval(self.last_boundary, end_cycle);
        }
        let (gpus, intervals) = self.ledger.into_parts();
        let mut dram = Vec::new();
        for (g, d) in sys.drams.iter().enumerate() {
            for mut p in d.channel_profiles() {
                p.gpu = g;
                dram.push(p);
            }
        }
        let report = ProfileReport {
            cycles: end_cycle,
            sms_per_gpu: self.sms_per_gpu,
            gpus,
            intervals,
            dram,
            links: sys.net.link_occupancies(),
        };
        debug_assert!(
            report
                .gpus
                .iter()
                .all(|g| g.iter().sum::<u64>() == end_cycle * self.sms_per_gpu as u64),
            "stall categories must sum to cycles × SMs per GPU"
        );
        report
    }
}

/// Simulates `spec` under `sim`, computing any needed sharing profile
/// internally. Prefer [`run_with_profile`] when sweeping many designs over
/// one workload, so the profile is computed once.
///
/// # Panics
///
/// Panics on any [`SimError`] — invalid configuration, watchdog stall, or
/// cycle-cap exhaustion. Use [`try_run`] for a recoverable error instead.
pub fn run(spec: &WorkloadSpec, sim: &SimConfig) -> SimResult {
    run_with_profile(spec, sim, None)
}

/// Fallible variant of [`run`].
pub fn try_run(spec: &WorkloadSpec, sim: &SimConfig) -> Result<SimResult, SimError> {
    try_run_with_profile(spec, sim, None)
}

/// Simulates `spec` under `sim`, reusing `profile` when provided.
///
/// The profile must have been collected with the same workload, scaled
/// config and GPU count (as [`profile_workload`] produces).
///
/// # Panics
///
/// Panics on any [`SimError`]; use [`try_run_with_profile`] to recover.
pub fn run_with_profile(
    spec: &WorkloadSpec,
    sim: &SimConfig,
    profile: Option<&SharingProfile>,
) -> SimResult {
    // audit:allow(tick-path-panics) infallible entry point wraps SimError into a panic by design
    try_run_with_profile(spec, sim, profile).unwrap_or_else(|e| panic!("simulation failed: {e}"))
}

/// Fallible variant of [`run_with_profile`].
pub fn try_run_with_profile(
    spec: &WorkloadSpec,
    sim: &SimConfig,
    profile: Option<&SharingProfile>,
) -> Result<SimResult, SimError> {
    try_run_with_profile_mode(spec, sim, profile, EngineMode::from_env())
}

/// [`run_with_profile`] with an explicit [`EngineMode`], primarily for
/// verifying that the two engines agree.
///
/// # Panics
///
/// Panics on any [`SimError`]; use [`try_run_with_profile_mode`] to
/// recover.
pub fn run_with_profile_mode(
    spec: &WorkloadSpec,
    sim: &SimConfig,
    profile: Option<&SharingProfile>,
    mode: EngineMode,
) -> SimResult {
    try_run_with_profile_mode(spec, sim, profile, mode)
        // audit:allow(tick-path-panics) infallible entry point wraps SimError into a panic by design
        .unwrap_or_else(|e| panic!("simulation failed: {e}"))
}

/// Runs one simulation to completion, or fails fast with a structured
/// [`SimError`]: the configuration is validated before the machine is
/// built, a [`Watchdog`] converts engine livelock into
/// [`SimError::WatchdogStall`] with a component-occupancy dump, and
/// exceeding `max_cycles` reports [`SimError::ResourceExhausted`] instead
/// of a partially-filled result.
pub fn try_run_with_profile_mode(
    spec: &WorkloadSpec,
    sim: &SimConfig,
    profile: Option<&SharingProfile>,
    mode: EngineMode,
) -> Result<SimResult, SimError> {
    try_run_observed(spec, sim, profile, mode, &mut NullTraceSink)
}

/// [`try_run_with_profile_mode`] plus structured event tracing: engine
/// events (kernel launch/drain spans per GPU, coherence broadcasts, epoch
/// invalidations, page migrations, watchdog trips) are delivered to
/// `sink`. With a disabled sink ([`NullTraceSink`]) no event is ever
/// constructed, so tracing is free when off. Interval telemetry is
/// controlled independently via `SimConfig::telemetry_interval` /
/// `CARVE_TELEMETRY_INTERVAL` and lands in `SimResult::timeline`.
pub fn try_run_observed(
    spec: &WorkloadSpec,
    sim: &SimConfig,
    profile: Option<&SharingProfile>,
    mode: EngineMode,
    sink: &mut dyn TraceSink,
) -> Result<SimResult, SimError> {
    sim.validate()?;
    let num_gpus = sim.design.num_gpus(&sim.cfg);
    let needs_profile = sim.spill_fraction > 0.0
        || matches!(
            sim.design,
            Design::NumaGpuRepl | Design::Ideal | Design::CarveHwc
        );
    let owned;
    let profile = match profile {
        Some(p) => Some(p),
        None if needs_profile => {
            let mut pcfg = sim.cfg.clone();
            pcfg.num_gpus = num_gpus;
            owned = profile_workload(spec, &pcfg, num_gpus);
            Some(&owned)
        }
        None => None,
    };
    let mut sys = System::build(spec, sim, profile);
    let mut now = 0u64;
    let mut watchdog = match sim.watchdog_cycles {
        Some(n) => Watchdog::with_budget((n != 0).then_some(n)),
        None => Watchdog::from_env(),
    };
    // Telemetry: `Some(0)` disables, explicit `Some(n)` samples every `n`
    // cycles, `None` defers to CARVE_TELEMETRY_INTERVAL (default off).
    let telemetry_interval = match sim.telemetry_interval {
        Some(0) => None,
        Some(n) => Some(n),
        None => telemetry::interval_from_env(),
    };
    let mut sampler = telemetry_interval.map(|i| Sampler::new(i, num_gpus));
    // Cycle profiler: same gating discipline as the sampler — one Option
    // check per tick when off, read-only over the system when on. Interval
    // rows piggyback on the telemetry interval when both are enabled.
    let mut profiler = sim
        .cycle_profile
        .then(|| Profiler::new(num_gpus, sys.cfg.sms_per_gpu, telemetry_interval));
    if profiler.is_some() {
        sys.enable_profiler_tracking();
    }
    // Sanitizer: `Some(true)` enables, `Some(false)` disables, `None`
    // defers to CARVE_SANITIZE (any value but empty or "0" enables).
    let sanitize = match sim.sanitize {
        Some(on) => on,
        None => std::env::var_os("CARVE_SANITIZE").is_some_and(|v| !v.is_empty() && v != "0"),
    };
    if sanitize {
        sys.enable_sanitizer();
    }
    // Event tracing is free when the sink is disabled: no TraceEvent is
    // ever constructed, and the per-tick diff checks are skipped.
    let tracing = sink.enabled();
    let mut traced_broadcasts = 0u64;
    let mut traced_dir_invals = 0u64;
    let mut traced_migrations = 0u64;
    // Hoisted out of the cycle loop: `env::var_os` walks the whole
    // environment on every call.
    let trace_tail = std::env::var_os("CARVE_TRACE_TAIL").is_some();
    let trace_progress = std::env::var_os("CARVE_TRACE_PROGRESS").is_some();
    for kernel in 0..spec.shape.kernels {
        if kernel > 0 {
            sys.kernel_boundary(Cycle(now));
            if tracing {
                sink.record(
                    TraceEvent::instant("kernel boundary", TraceEvent::SYSTEM_TRACK, now)
                        .arg("kernel", kernel as u64),
                );
                if sys
                    .carve
                    .as_ref()
                    .is_some_and(|c| c.policy() == CoherencePolicy::Software)
                {
                    sink.record(TraceEvent::instant(
                        "epoch invalidation",
                        TraceEvent::SYSTEM_TRACK,
                        now,
                    ));
                }
            }
        }
        for g in 0..num_gpus {
            let (start, end) = cta_range_of_gpu(g, spec.shape.ctas, num_gpus);
            sys.cores[g].launch_kernel(kernel, start..end);
        }
        now += sim.kernel_launch_cycles;
        // The launch jump crosses cycles no component could act in; reset
        // the no-progress baseline so it is not counted against the budget.
        watchdog.rebase(Cycle(now), sys.progress_signature());
        let kstart = now;
        let mut sms_done_at = 0u64;
        let mut gpu_drained = vec![false; if tracing { num_gpus } else { 0 }];
        if tracing {
            for g in 0..num_gpus {
                sink.record(TraceEvent::begin(format!("kernel {kernel}"), g as u32, now));
            }
        }
        loop {
            // Sample crossed interval boundaries *before* ticking at
            // `now`: counters cover exactly the cycles below each
            // boundary, and the skipped cycles in between were quiescent.
            if let Some(s) = sampler.as_mut() {
                s.advance_to(now, &sys);
            }
            // Same pre-tick discipline: skipped cycles were quiescent, so
            // they carry the class captured after the previous tick.
            if let Some(p) = profiler.as_mut() {
                p.charge_to(now);
            }
            // Fault schedule: every event stamped at or before `now`
            // fires here, before the tick — at the exact same cycle
            // under both engines (`next_activity` folds the schedule
            // into the horizon). An unroutable outage aborts cleanly.
            sys.apply_faults(Cycle(now))?;
            // Freeze windows suppress ticking (time still advances) —
            // indistinguishable from a livelocked engine, which is what
            // the forever-freeze watchdog test hook relies on.
            let frozen = sys.is_frozen(Cycle(now));
            if !frozen {
                sys.tick(Cycle(now));
                if let Some(err) = sys.sanitizer_poll(Cycle(now)) {
                    return Err(err);
                }
                if let Some(p) = profiler.as_mut() {
                    p.on_tick(now, &sys);
                }
                if sms_done_at == 0 && sys.cores.iter().all(|c| c.sms_done()) {
                    sms_done_at = now;
                }
                if tracing {
                    for (g, drained) in gpu_drained.iter_mut().enumerate() {
                        if !*drained && sys.cores[g].sms_done() {
                            *drained = true;
                            sink.record(TraceEvent::end(format!("kernel {kernel}"), g as u32, now));
                            sink.record(TraceEvent::begin(
                                format!("drain {kernel}"),
                                g as u32,
                                now,
                            ));
                        }
                    }
                    if let Some(c) = &sys.carve {
                        let b = c.total_broadcasts();
                        if b > traced_broadcasts {
                            sink.record(
                                TraceEvent::instant(
                                    "coherence broadcast",
                                    TraceEvent::SYSTEM_TRACK,
                                    now,
                                )
                                .arg("count", b - traced_broadcasts),
                            );
                            traced_broadcasts = b;
                        }
                        let d = c.total_directory_invalidates();
                        if d > traced_dir_invals {
                            sink.record(
                                TraceEvent::instant(
                                    "directory invalidate",
                                    TraceEvent::SYSTEM_TRACK,
                                    now,
                                )
                                .arg("count", d - traced_dir_invals),
                            );
                            traced_dir_invals = d;
                        }
                    }
                    if sys.traffic.migrations > traced_migrations {
                        sink.record(
                            TraceEvent::instant("page migration", TraceEvent::SYSTEM_TRACK, now)
                                .arg("count", sys.traffic.migrations - traced_migrations),
                        );
                        traced_migrations = sys.traffic.migrations;
                    }
                }
                if sys.quiescent() {
                    break;
                }
            }
            if let Err(stall) = watchdog.check(Cycle(now), || sys.progress_signature()) {
                if tracing {
                    sink.record(
                        TraceEvent::instant("watchdog trip", TraceEvent::SYSTEM_TRACK, now)
                            .arg("stalled_since", stall.stalled_since)
                            .arg("budget", stall.budget),
                    );
                }
                return Err(SimError::WatchdogStall {
                    cycle: stall.cycle,
                    stalled_since: stall.stalled_since,
                    budget: stall.budget,
                    diagnostic: sys.stall_diagnostic(Cycle(now)),
                });
            }
            if trace_tail && sms_done_at > 0 && (now - sms_done_at) % 2000 == 1999 {
                eprintln!(
                    "      tail+{}: pending={} delayed={} dram_idle={} net_idle={} cores_idle={} dram_retry={} ext_retry={}",
                    now - sms_done_at,
                    sys.pending.len(),
                    sys.delayed.len(),
                    sys.drams.iter().all(DramModel::is_idle),
                    sys.net.is_idle(),
                    sys.cores.iter().all(GpuCore::is_idle),
                    sys.dram_retry.iter().map(|q| q.len()).sum::<usize>(),
                    sys.ext_retry.iter().map(|q| q.len()).sum::<usize>(),
                );
            }
            let prev = now;
            now = match mode {
                EngineMode::Step => now + 1,
                EngineMode::EventSkip => sys
                    .next_activity(Cycle(now))
                    .map(|c| c.0)
                    .unwrap_or(now + 1),
            };
            debug_assert!(now > prev, "time must advance");
            if trace_progress && now / 1_000_000 != prev / 1_000_000 {
                let instrs: u64 = sys.cores.iter().map(|c| c.stats().instructions).sum();
                eprintln!(
                    "    @{now}: {instrs} instrs, pending={}, migrations={}, cores_sms_done={}",
                    sys.pending.len(),
                    sys.traffic.migrations,
                    sys.cores.iter().all(|c| c.sms_done()),
                );
            }
            if now >= sim.max_cycles {
                // Clamp so an event-skip hop past the cap reports the same
                // cycle count the stepping engine would.
                now = sim.max_cycles;
                if std::env::var_os("CARVE_TRACE_PROGRESS").is_some() {
                    eprintln!(
                        "    cycle cap hit at {now}; occupancy:\n{}",
                        sys.stall_diagnostic(Cycle(now))
                    );
                }
                return Err(SimError::ResourceExhausted {
                    what: format!(
                        "simulated cycles for {} on {} (kernel {} of {} still running)",
                        spec.name,
                        sim.design.label(),
                        kernel + 1,
                        spec.shape.kernels
                    ),
                    limit: sim.max_cycles,
                });
            }
        }
        if tracing {
            // Close this kernel's spans: `drain` for GPUs that finished
            // their SM work earlier, `kernel` for any that ran to the end.
            for (g, drained) in gpu_drained.iter().enumerate() {
                let name = if *drained {
                    format!("drain {kernel}")
                } else {
                    format!("kernel {kernel}")
                };
                sink.record(TraceEvent::end(name, g as u32, now));
            }
        }
        if std::env::var_os("CARVE_TRACE_KERNELS").is_some() {
            eprintln!(
                "    kernel {kernel}: {} cycles (drain tail {})",
                now - kstart,
                now.saturating_sub(sms_done_at)
            );
        }
    }
    if let Some(err) = sys.sanitizer_finish(Cycle(now)) {
        return Err(err);
    }
    let timeline = sampler.map(|s| s.finish(&sys, now));
    let cycle_profile = profiler.map(|p| p.finish(&sys, now));

    let mut rdc = RdcStats::default();
    let mut broadcasts = 0;
    let mut directory_invalidates = 0;
    if let Some(carve) = &sys.carve {
        broadcasts = carve.total_broadcasts();
        directory_invalidates = carve.total_directory_invalidates();
        for g in 0..num_gpus {
            let s = carve.rdc(g).stats();
            rdc.hits += s.hits;
            rdc.misses += s.misses;
            rdc.stale_misses += s.stale_misses;
            rdc.insertions += s.insertions;
            rdc.store_updates += s.store_updates;
            rdc.invalidations += s.invalidations;
            rdc.epoch_bumps += s.epoch_bumps;
            rdc.rollover_resets += s.rollover_resets;
        }
    }
    let mut instructions = 0;
    let mut l2_hits = 0;
    let mut l2_misses = 0;
    let mut l1_hits = 0;
    let mut l1_misses = 0;
    let mut replays = 0;
    let mut mshr_merges = 0;
    for core in &sys.cores {
        let s = core.stats();
        instructions += s.instructions;
        l2_hits += s.l2_hits;
        l2_misses += s.l2_misses;
        l1_hits += s.l1_hits;
        l1_misses += s.l1_misses;
        replays += s.replays;
        mshr_merges += s.mshr_merges;
    }
    let mut dram = carve_dram::DramStats::default();
    for d in &sys.drams {
        let s = d.stats();
        dram.reads += s.reads;
        dram.writes += s.writes;
        dram.row_hits += s.row_hits;
        dram.row_misses += s.row_misses;
        dram.bytes_transferred += s.bytes_transferred;
        dram.queue_rejections += s.queue_rejections;
    }
    let result = SimResult {
        workload: spec.name.to_string(),
        design: sim.design,
        cycles: now,
        instructions,
        kernels: spec.shape.kernels,
        local_serviced: sys.traffic.local,
        remote_serviced: sys.traffic.remote,
        cpu_serviced: sys.traffic.cpu,
        rdc_hits_serviced: sys.traffic.rdc_hits,
        rdc,
        link_bytes: sys.net.gpu_bytes_sent(),
        cpu_link_bytes: sys.net.cpu_bytes_sent(),
        migrations: sys.traffic.migrations,
        broadcasts,
        directory_invalidates,
        dram,
        l2_hits,
        l2_misses,
        l1_hits,
        l1_misses,
        replays,
        mshr_merges,
        read_latency: std::mem::take(&mut sys.read_latency),
        completed: true,
        timeline,
        profile: cycle_profile,
        recovery: sys.recovery_snapshot(Cycle(now)),
    };
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use carve_trace::workloads;

    fn quick_cfg() -> ScaledConfig {
        // A narrower machine so unit tests run fast.
        ScaledConfig {
            sms_per_gpu: 2,
            warps_per_sm: 8,
            ..ScaledConfig::default()
        }
    }

    fn quick_spec(name: &str) -> WorkloadSpec {
        let mut spec = workloads::by_name(name).unwrap();
        spec.shape.kernels = spec.shape.kernels.min(3);
        spec.shape.ctas = 16;
        spec.shape.instrs_per_warp = 60;
        spec
    }

    fn quick_run(name: &str, design: Design) -> SimResult {
        let spec = quick_spec(name);
        let sim = SimConfig::with_cfg(design, quick_cfg());
        run(&spec, &sim)
    }

    #[test]
    fn telemetry_sampling_is_invisible_to_aggregates() {
        let spec = quick_spec("Lulesh");
        let mut plain = SimConfig::with_cfg(Design::CarveHwc, quick_cfg());
        plain.telemetry_interval = Some(0); // force off regardless of env
        let base = try_run_with_profile_mode(&spec, &plain, None, EngineMode::EventSkip)
            .expect("baseline run");
        assert!(base.timeline.is_none());
        let mut sampled_cfg = plain;
        sampled_cfg.telemetry_interval = Some(500);
        let sampled = try_run_with_profile_mode(&spec, &sampled_cfg, None, EngineMode::EventSkip)
            .expect("sampled run");
        // Bit-identical aggregates: the sampler is read-only.
        assert_eq!(base.encode_journal_line(), sampled.encode_journal_line());
        let tl = sampled.timeline.expect("sampling was enabled");
        assert_eq!(tl.interval, 500);
        assert!(!tl.records.is_empty());
        // The acceptance contract: per-interval instruction counts sum to
        // the run total exactly (final partial interval included).
        assert_eq!(tl.total_instructions(), sampled.instructions);
        // Records are well-formed: ordered boundaries, all GPUs present.
        let num_gpus = sampled_cfg.design.num_gpus(&sampled_cfg.cfg);
        assert_eq!(tl.records.len() % num_gpus, 0);
        for r in &tl.records {
            assert!(r.start <= r.end);
            assert!((r.gpu as usize) < num_gpus);
        }
    }

    #[test]
    fn hierarchical_16_gpu_run_passes_per_hop_conservation() {
        // Satellite acceptance: a routed multi-hop topology at scale runs
        // clean under the sanitizer's per-hop conservation invariant, and
        // both engines agree bit-for-bit on the routed fabric.
        let spec = quick_spec("Lulesh");
        let mut cfg = quick_cfg();
        cfg.num_gpus = 16;
        cfg.topology = sim_core::TopologySpec::Hierarchical { pod_size: 4 };
        let mut sim = SimConfig::with_cfg(Design::CarveHwc, cfg);
        sim.sanitize = Some(true);
        sim.telemetry_interval = Some(0);
        let skip = try_run_with_profile_mode(&spec, &sim, None, EngineMode::EventSkip)
            .expect("sanitized hierarchical 16-GPU run must pass per-hop conservation");
        assert!(skip.completed);
        let step = try_run_with_profile_mode(&spec, &sim, None, EngineMode::Step)
            .expect("step engine agrees");
        assert_eq!(skip.encode_journal_line(), step.encode_journal_line());
    }

    #[test]
    fn routed_topologies_change_timing_but_not_work() {
        // Switching the fabric reshapes latency/bandwidth, never the
        // amount of work: instructions and remote services must match the
        // all-to-all run; cycles may differ.
        let spec = quick_spec("CoMD");
        let mut base_cfg = quick_cfg();
        base_cfg.num_gpus = 8;
        let base = run(
            &spec,
            &SimConfig::with_cfg(Design::CarveHwc, base_cfg.clone()),
        );
        for topo in [
            sim_core::TopologySpec::Switch,
            sim_core::TopologySpec::Ring,
            sim_core::TopologySpec::Hierarchical { pod_size: 4 },
        ] {
            let mut cfg = base_cfg.clone();
            cfg.topology = topo;
            let r = run(&spec, &SimConfig::with_cfg(Design::CarveHwc, cfg));
            assert_eq!(r.instructions, base.instructions, "{topo:?}");
            assert!(r.completed, "{topo:?}");
        }
    }

    #[test]
    fn sanitizer_is_invisible_and_clean_on_all_workloads() {
        // Tentpole acceptance: every workload runs clean under the shadow
        // sanitizer, and a sanitized run's aggregates are bit-identical
        // to a sanitizer-off run's (the checker is read-only).
        for mut spec in workloads::all() {
            spec.shape.kernels = spec.shape.kernels.min(2);
            spec.shape.ctas = 16;
            spec.shape.instrs_per_warp = 40;
            let mut off = SimConfig::with_cfg(Design::CarveHwc, quick_cfg());
            off.telemetry_interval = Some(0);
            off.sanitize = Some(false);
            let mut on = off.clone();
            on.sanitize = Some(true);
            let base = try_run_with_profile_mode(&spec, &off, None, EngineMode::EventSkip)
                .unwrap_or_else(|e| panic!("{}: baseline failed: {e}", spec.name));
            let checked = try_run_with_profile_mode(&spec, &on, None, EngineMode::EventSkip)
                .unwrap_or_else(|e| panic!("{}: sanitizer flagged: {e}", spec.name));
            assert_eq!(
                base.encode_journal_line(),
                checked.encode_journal_line(),
                "{}: sanitizer perturbed the aggregates",
                spec.name
            );
        }
    }

    #[test]
    fn sanitizer_is_clean_across_designs_and_engines() {
        let spec = quick_spec("Lulesh");
        for design in Design::all() {
            let mut sim = SimConfig::with_cfg(design, quick_cfg());
            sim.telemetry_interval = Some(0);
            sim.sanitize = Some(true);
            for mode in [EngineMode::EventSkip, EngineMode::Step] {
                try_run_with_profile_mode(&spec, &sim, None, mode)
                    .unwrap_or_else(|e| panic!("{} under {mode:?}: {e}", design.label()));
            }
        }
    }

    #[test]
    fn sanitizer_is_clean_on_hwc_ablation_variants() {
        // The checker understands every coherence configuration, not just
        // the paper's defaults: directory mode, raw broadcast, write-back
        // RDC, the hit predictor and footnote-2 system-memory caching.
        let spec = quick_spec("XSBench");
        type Variant = (&'static str, fn(&mut SimConfig));
        let variants: [Variant; 5] = [
            ("directory", |s| s.directory_coherence = true),
            ("broadcast-always", |s| s.gpu_vi_broadcast_always = true),
            ("write-back", |s| {
                s.rdc_write_policy = carve::WritePolicy::WriteBack
            }),
            ("predictor", |s| s.hit_predictor = true),
            ("sysmem-rdc", |s| {
                s.rdc_caches_sysmem = true;
                s.spill_fraction = 0.2;
            }),
        ];
        for (name, tweak) in variants {
            let mut sim = SimConfig::with_cfg(Design::CarveHwc, quick_cfg());
            sim.telemetry_interval = Some(0);
            sim.sanitize = Some(true);
            tweak(&mut sim);
            try_run_with_profile_mode(&spec, &sim, None, EngineMode::EventSkip)
                .unwrap_or_else(|e| panic!("variant {name}: {e}"));
        }
    }

    #[test]
    fn timeline_is_identical_across_engine_modes() {
        let spec = quick_spec("XSBench");
        let mut sim = SimConfig::with_cfg(Design::NumaGpu, quick_cfg());
        sim.telemetry_interval = Some(700);
        let skip = try_run_with_profile_mode(&spec, &sim, None, EngineMode::EventSkip).unwrap();
        let step = try_run_with_profile_mode(&spec, &sim, None, EngineMode::Step).unwrap();
        assert_eq!(skip.encode_journal_line(), step.encode_journal_line());
        let csv_skip = skip.timeline.expect("sampled").to_csv_string();
        let csv_step = step.timeline.expect("sampled").to_csv_string();
        assert_eq!(csv_skip, csv_step, "event skipping changed the timeline");
    }

    #[test]
    fn profiler_accounts_every_sm_cycle_on_all_workloads() {
        // Tentpole acceptance: on every workload the exclusive stall
        // taxonomy sums exactly to cycles × SMs per GPU, and a profiled
        // run's journal line is byte-identical to an unprofiled run's
        // (the profiler is read-only).
        for mut spec in workloads::all() {
            spec.shape.kernels = spec.shape.kernels.min(2);
            spec.shape.ctas = 16;
            spec.shape.instrs_per_warp = 40;
            let mut off = SimConfig::with_cfg(Design::CarveHwc, quick_cfg());
            off.telemetry_interval = Some(0);
            let mut on = off.clone();
            on.cycle_profile = true;
            let base = try_run_with_profile_mode(&spec, &off, None, EngineMode::EventSkip)
                .unwrap_or_else(|e| panic!("{}: baseline failed: {e}", spec.name));
            let profiled = try_run_with_profile_mode(&spec, &on, None, EngineMode::EventSkip)
                .unwrap_or_else(|e| panic!("{}: profiled run failed: {e}", spec.name));
            assert_eq!(
                base.encode_journal_line(),
                profiled.encode_journal_line(),
                "{}: profiling perturbed the aggregates",
                spec.name
            );
            assert!(base.profile.is_none());
            let report = profiled.profile.expect("profiled run carries a report");
            let want = report.cycles * report.sms_per_gpu as u64;
            for (g, cats) in report.gpus.iter().enumerate() {
                assert_eq!(
                    cats.iter().sum::<u64>(),
                    want,
                    "{}: GPU {g} categories must sum to cycles × SMs",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn profile_is_identical_across_engine_modes_and_designs() {
        // The event-skip engine charges skipped (provably quiescent)
        // spans with the class captured after the previous tick; stepping
        // through those cycles must produce the same report, bit for bit,
        // and the journal must stay byte-identical with profiling on.
        let spec = quick_spec("XSBench");
        for design in Design::all() {
            let mut sim = SimConfig::with_cfg(design, quick_cfg());
            sim.telemetry_interval = Some(700);
            sim.cycle_profile = true;
            let skip = try_run_with_profile_mode(&spec, &sim, None, EngineMode::EventSkip).unwrap();
            let step = try_run_with_profile_mode(&spec, &sim, None, EngineMode::Step).unwrap();
            assert_eq!(skip.encode_journal_line(), step.encode_journal_line());
            let a = skip.profile.expect("profiled");
            let b = step.profile.expect("profiled");
            assert_eq!(
                a.encode_compact(),
                b.encode_compact(),
                "{}: engine changed the stall totals",
                design.label()
            );
            let rows_a: Vec<String> = a.intervals.iter().map(|r| r.csv_line()).collect();
            let rows_b: Vec<String> = b.intervals.iter().map(|r| r.csv_line()).collect();
            assert_eq!(
                rows_a,
                rows_b,
                "{}: engine changed the interval rows",
                design.label()
            );
        }
    }

    #[test]
    fn profile_interval_rows_partition_the_run() {
        let spec = quick_spec("Lulesh");
        let mut sim = SimConfig::with_cfg(Design::CarveSwc, quick_cfg());
        sim.telemetry_interval = Some(300);
        sim.cycle_profile = true;
        let r = try_run_with_profile_mode(&spec, &sim, None, EngineMode::EventSkip).unwrap();
        let report = r.profile.expect("profiled");
        let sms = report.sms_per_gpu as u64;
        assert!(!report.intervals.is_empty());
        // Rows tile [0, cycles) per GPU with no gaps or overlaps, and each
        // row's categories sum to its width × SMs.
        let num_gpus = report.gpus.len();
        let mut expect_start = vec![0u64; num_gpus];
        for row in &report.intervals {
            assert_eq!(
                row.start, expect_start[row.gpu],
                "gap or overlap at gpu {}",
                row.gpu
            );
            assert!(row.end > row.start);
            assert_eq!(row.stalls.iter().sum::<u64>(), (row.end - row.start) * sms);
            expect_start[row.gpu] = row.end;
        }
        for (g, e) in expect_start.iter().enumerate() {
            assert_eq!(*e, report.cycles, "gpu {g} rows must cover the whole run");
        }
        // And the rows sum back to the per-GPU totals.
        for g in 0..num_gpus {
            let mut sum = [0u64; sim_core::NUM_STALL_CATS];
            for row in report.intervals.iter().filter(|r| r.gpu == g) {
                for (i, v) in row.stalls.iter().enumerate() {
                    sum[i] += *v;
                }
            }
            assert_eq!(sum, report.gpus[g], "gpu {g} interval rows vs totals");
        }
    }

    #[test]
    fn profile_survives_faults_and_multi_kernel_gaps() {
        // Freeze windows and kernel-launch jumps are charged with the
        // quiescent span class; the invariant must hold through both.
        let spec = quick_spec("MiniAMR");
        let mut sim = SimConfig::with_cfg(Design::CarveHwc, quick_cfg());
        sim.telemetry_interval = Some(0);
        sim.cycle_profile = true;
        sim.fault_plan = Some(
            sim_core::FaultPlan::parse("degrade@300:e0*25,freeze@700+200,restore@1500:e0")
                .expect("valid"),
        );
        let r = try_run_with_profile_mode(&spec, &sim, None, EngineMode::EventSkip).unwrap();
        let report = r.profile.expect("profiled");
        let want = report.cycles * report.sms_per_gpu as u64;
        for (g, cats) in report.gpus.iter().enumerate() {
            assert_eq!(cats.iter().sum::<u64>(), want, "gpu {g}");
        }
    }

    #[test]
    fn trace_sink_gets_balanced_spans_without_changing_results() {
        let spec = quick_spec("Lulesh");
        let mut sim = SimConfig::with_cfg(Design::CarveSwc, quick_cfg());
        sim.telemetry_interval = Some(0);
        let untraced = try_run_with_profile_mode(&spec, &sim, None, EngineMode::EventSkip).unwrap();
        let mut sink = sim_core::JsonTraceSink::new();
        let traced = try_run_observed(&spec, &sim, None, EngineMode::EventSkip, &mut sink).unwrap();
        assert_eq!(untraced.encode_journal_line(), traced.encode_journal_line());
        let events = sink.events();
        assert!(!events.is_empty());
        let begins = events
            .iter()
            .filter(|e| e.phase == sim_core::TracePhase::Begin)
            .count();
        let ends = events
            .iter()
            .filter(|e| e.phase == sim_core::TracePhase::End)
            .count();
        assert_eq!(begins, ends, "unbalanced spans break Chrome tracing");
        // Every kernel opens one span per GPU.
        let num_gpus = sim.design.num_gpus(&sim.cfg);
        assert!(begins >= spec.shape.kernels * num_gpus);
        // SWC with multiple kernels must log epoch invalidations.
        assert!(
            spec.shape.kernels < 2 || events.iter().any(|e| e.name == "epoch invalidation"),
            "software coherence must trace epoch invalidations"
        );
        // Timestamps are monotone non-decreasing in record order.
        assert!(events.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        let json = sink.to_json_string();
        assert!(json.contains("\"traceEvents\""));
    }

    #[test]
    fn numa_gpu_completes_and_counts_instructions() {
        let spec = quick_spec("Lulesh");
        let r = quick_run("Lulesh", Design::NumaGpu);
        assert!(r.completed, "run hit the cycle cap");
        assert_eq!(r.instructions, spec.shape.total_instrs());
        assert!(r.cycles > 0);
        assert!(r.remote_serviced > 0, "stencil must produce remote traffic");
    }

    #[test]
    fn single_gpu_has_no_remote_traffic() {
        let r = quick_run("Lulesh", Design::SingleGpu);
        assert!(r.completed);
        assert_eq!(r.remote_serviced, 0);
        assert_eq!(r.link_bytes, 0);
    }

    #[test]
    fn ideal_localizes_shared_traffic() {
        let base = quick_run("Lulesh", Design::NumaGpu);
        let ideal = quick_run("Lulesh", Design::Ideal);
        assert!(ideal.completed);
        assert!(
            ideal.remote_fraction() < base.remote_fraction(),
            "ideal {:.3} !< base {:.3}",
            ideal.remote_fraction(),
            base.remote_fraction()
        );
        assert!(ideal.cycles <= base.cycles);
    }

    #[test]
    fn carve_reduces_remote_fraction() {
        let base = quick_run("Lulesh", Design::NumaGpu);
        let carve = quick_run("Lulesh", Design::CarveNc);
        assert!(carve.completed);
        assert!(carve.rdc.insertions > 0, "RDC never filled");
        assert!(carve.rdc_hits_serviced > 0, "RDC never hit");
        assert!(
            carve.remote_fraction() < base.remote_fraction(),
            "carve {:.3} !< base {:.3}",
            carve.remote_fraction(),
            base.remote_fraction()
        );
    }

    #[test]
    fn swc_flushes_hurt_rdc_hits() {
        let nc = quick_run("Lulesh", Design::CarveNc);
        let swc = quick_run("Lulesh", Design::CarveSwc);
        assert!(swc.completed);
        assert!(swc.rdc.epoch_bumps > 0);
        assert!(
            swc.rdc.hits <= nc.rdc.hits,
            "swc hits {} > nc hits {}",
            swc.rdc.hits,
            nc.rdc.hits
        );
    }

    #[test]
    fn hwc_generates_broadcasts_on_rw_sharing() {
        let r = quick_run("Lulesh", Design::CarveHwc);
        assert!(r.completed);
        assert!(r.broadcasts > 0, "stencil RW sharing must broadcast");
    }

    #[test]
    fn migration_design_migrates() {
        let r = quick_run("Lulesh", Design::NumaGpuMigrate);
        assert!(r.completed);
        assert!(r.migrations > 0);
    }

    #[test]
    fn spill_produces_cpu_traffic() {
        let spec = quick_spec("stream-triad");
        let mut sim = SimConfig::with_cfg(Design::NumaGpu, quick_cfg());
        sim.spill_fraction = 0.2;
        let r = run(&spec, &sim);
        assert!(r.completed);
        assert!(r.cpu_serviced > 0, "spilled pages must hit CPU memory");
        assert!(r.cpu_link_bytes > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = quick_run("SSSP", Design::CarveHwc);
        let b = quick_run("SSSP", Design::CarveHwc);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.remote_serviced, b.remote_serviced);
        assert_eq!(a.rdc.hits, b.rdc.hits);
    }

    #[test]
    fn rdc_probe_addresses_stay_in_carve_out() {
        let spec = quick_spec("Lulesh");
        let sim = SimConfig::with_cfg(Design::CarveHwc, quick_cfg());
        let sys = System::build(&spec, &sim, None);
        for gpu in 0..sys.num_gpus {
            for line in [0u64, 0x80, 0xFFF80, 1 << 30] {
                let addr = sys.rdc_probe_addr(gpu, line);
                assert!(addr >= RDC_BASE);
                assert!(addr < RDC_BASE + sim.rdc_capacity());
            }
        }
    }

    #[test]
    fn tokens_are_unique_and_allocation_ordered() {
        // The delayed-response heap breaks due-cycle ties on the token, so
        // tokens must be unique and strictly increasing in allocation
        // order — for tracked and untracked mints alike.
        let spec = quick_spec("Lulesh");
        let sim = SimConfig::with_cfg(Design::NumaGpu, quick_cfg());
        let mut sys = System::build(&spec, &sim, None);
        let mut last = 0u64;
        for i in 0..1000 {
            let token = if i % 3 == 0 {
                sys.pending.untracked_token()
            } else {
                sys.pending
                    .insert(Pending::Invalidate { target: 0, line: 0 })
            };
            assert!(token > last, "tokens must be allocation-ordered");
            last = token;
        }
    }

    #[test]
    fn skip_engine_matches_step_engine_on_a_quick_run() {
        let spec = quick_spec("Lulesh");
        let sim = SimConfig::with_cfg(Design::CarveHwc, quick_cfg());
        let skip = run_with_profile_mode(&spec, &sim, None, EngineMode::EventSkip);
        let step = run_with_profile_mode(&spec, &sim, None, EngineMode::Step);
        assert_eq!(skip.cycles, step.cycles);
        assert_eq!(skip.instructions, step.instructions);
        assert_eq!(skip.remote_serviced, step.remote_serviced);
        assert_eq!(skip.rdc.hits, step.rdc.hits);
        assert_eq!(skip.read_latency.count(), step.read_latency.count());
    }

    #[test]
    fn fabric_reports_congestion_after_saturation() {
        let mut net = LinkNetwork::new(2, 1.0, 0, 1.0, 0).expect("valid config");
        let fabric_ok = NetFabric { net: &net };
        assert!(fabric_ok.can_send(NodeId::Gpu(0), NodeId::Gpu(1), Cycle(0)));
        for i in 0..100 {
            net.send(NodeId::Gpu(0), NodeId::Gpu(1), i, 160, Cycle(0));
        }
        let fabric = NetFabric { net: &net };
        assert!(!fabric.can_send(NodeId::Gpu(0), NodeId::Gpu(1), Cycle(0)));
        // The reverse direction is unaffected.
        assert!(fabric.can_send(NodeId::Gpu(1), NodeId::Gpu(0), Cycle(0)));
    }

    #[test]
    fn read_latency_histogram_is_populated() {
        let r = quick_run("Lulesh", Design::NumaGpu);
        assert!(r.read_latency.count() > 0);
        // Local DRAM floor: fixed latency + timing.
        assert!(r.read_latency.min().unwrap() >= 200);
    }

    #[test]
    fn injected_stall_trips_watchdog_with_component_diagnostic() {
        let spec = quick_spec("Lulesh");
        let mut sim = SimConfig::with_cfg(Design::NumaGpu, quick_cfg());
        sim.watchdog_cycles = Some(20_000);
        sim.stall_inject_at = Some(2_000); // freeze mid-kernel
        let err = try_run(&spec, &sim).expect_err("frozen engine must trip the watchdog");
        match err {
            SimError::WatchdogStall {
                cycle,
                stalled_since,
                budget,
                diagnostic,
            } => {
                assert_eq!(budget, 20_000);
                assert!(stalled_since <= cycle);
                // Detection within two budget windows of the freeze.
                assert!(
                    cycle <= 2_000 + 2 * 20_000,
                    "detected at {cycle}, too far past the freeze"
                );
                // The dump must name concrete stuck components: mid-kernel
                // at cycle 2000 some SM holds warps and reads are in
                // flight.
                assert!(
                    diagnostic.contains("sm") || diagnostic.contains("in-flight"),
                    "diagnostic lacks component detail:\n{diagnostic}"
                );
            }
            other => panic!("expected WatchdogStall, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_does_not_false_positive_on_a_tight_budget() {
        // A budget far below the default but far above any modeled blocking
        // interval: a healthy run must never trip it.
        let spec = quick_spec("Lulesh");
        let mut sim = SimConfig::with_cfg(Design::CarveHwc, quick_cfg());
        sim.watchdog_cycles = Some(50_000);
        let r = try_run(&spec, &sim).expect("healthy run must not trip the watchdog");
        assert_eq!(r.instructions, spec.shape.total_instrs());
    }

    #[test]
    fn watchdog_can_be_disabled_per_run() {
        let spec = quick_spec("stream-triad");
        let mut sim = SimConfig::with_cfg(Design::SingleGpu, quick_cfg());
        sim.watchdog_cycles = Some(0); // disabled: stall rides to the cap
        sim.stall_inject_at = Some(1_000);
        sim.max_cycles = 40_000;
        let err = try_run(&spec, &sim).expect_err("frozen run must hit the cap");
        assert!(
            matches!(err, SimError::ResourceExhausted { limit: 40_000, .. }),
            "expected ResourceExhausted, got {err:?}"
        );
    }

    #[test]
    fn invalid_config_is_rejected_before_the_machine_is_built() {
        let spec = quick_spec("Lulesh");
        let mut sim = SimConfig::with_cfg(Design::NumaGpu, quick_cfg());
        sim.cfg.sms_per_gpu = 0;
        let err = try_run(&spec, &sim).expect_err("zero SMs must be rejected");
        assert!(matches!(err, SimError::ConfigInvalid { .. }));
    }

    #[test]
    fn faulted_runs_are_byte_identical_across_engines() {
        // Tentpole acceptance: with a graceful fault plan armed, the same
        // seed/config produces byte-identical journals under event-skip
        // and stepping — fault events fire at exact cycles in both.
        let spec = quick_spec("Lulesh");
        let mut sim = SimConfig::with_cfg(Design::CarveHwc, quick_cfg());
        sim.telemetry_interval = Some(0);
        sim.fault_plan = Some(
            sim_core::FaultPlan::parse(
                "degrade@300:e0*25,dramfault@500:g1n3,freeze@700+200,outage@900:e1,\
                 restore@1200:e0",
            )
            .expect("valid plan"),
        );
        let skip = try_run_with_profile_mode(&spec, &sim, None, EngineMode::EventSkip)
            .expect("graceful plan must complete");
        let step = try_run_with_profile_mode(&spec, &sim, None, EngineMode::Step)
            .expect("step engine agrees");
        assert_eq!(skip.encode_journal_line(), step.encode_journal_line());
        let (rs, rt) = (skip.recovery.expect("armed"), step.recovery.expect("armed"));
        assert_eq!(rs, rt, "recovery accounting diverged between engines");
        assert_eq!(rs.faults_applied, 5);
        assert_eq!(rs.outages, 1);
        assert!(rs.reroutes > 0, "outage must rewrite routes");
        assert!(rs.dram_retries > 0, "transients must force retransmission");
        assert_eq!(rs.frozen_cycles, 200);
        assert!(rs.degraded_cycles > 0);
    }

    #[test]
    fn outage_on_routable_topology_degrades_gracefully() {
        // Kill g0->g1 on the 4-GPU all-to-all: traffic re-routes through
        // a peer and the run completes with the same retired work.
        let spec = quick_spec("Lulesh");
        let mut sim = SimConfig::with_cfg(Design::NumaGpu, quick_cfg());
        sim.telemetry_interval = Some(0);
        let base = try_run(&spec, &sim).expect("fault-free baseline");
        assert!(base.recovery.is_none(), "no plan armed");
        sim.fault_plan = Some(sim_core::FaultPlan::parse("outage@800:e0").expect("valid"));
        let r = try_run(&spec, &sim).expect("routable outage must complete");
        assert!(r.completed);
        assert_eq!(r.instructions, base.instructions, "work must be preserved");
        let rec = r.recovery.expect("plan armed");
        assert_eq!(rec.outages, 1);
        assert!(rec.reroutes > 0);
        assert!(rec.degraded_cycles > 0, "dead link counts as degraded");
        assert!(
            r.cycles >= base.cycles,
            "losing a link cannot speed things up"
        );
    }

    #[test]
    fn partitioning_outage_fails_cleanly_not_hanging() {
        // On a 2-GPU all-to-all the CPU never forwards, so killing
        // g0->g1 severs the pair: clean FabricPartitioned, never a hang.
        let spec = quick_spec("Lulesh");
        let mut cfg = quick_cfg();
        cfg.num_gpus = 2;
        let mut sim = SimConfig::with_cfg(Design::NumaGpu, cfg);
        sim.fault_plan = Some(sim_core::FaultPlan::parse("outage@600:e0").expect("valid"));
        let err = try_run(&spec, &sim).expect_err("partition must abort");
        match err {
            SimError::FabricPartitioned { from, to, cycle } => {
                assert_eq!((from.as_str(), to.as_str()), ("gpu0", "gpu1"));
                assert_eq!(cycle, 600);
            }
            other => panic!("expected FabricPartitioned, got {other}"),
        }
    }

    #[test]
    fn throttled_link_does_not_false_positive_the_watchdog() {
        // Satellite acceptance: a declared degradation window slows the
        // run but never reads as a stall — progress continues throughout.
        let spec = quick_spec("Lulesh");
        let mut sim = SimConfig::with_cfg(Design::NumaGpu, quick_cfg());
        sim.telemetry_interval = Some(0);
        sim.watchdog_cycles = Some(50_000);
        let base = try_run(&spec, &sim).expect("baseline");
        sim.fault_plan = Some(sim_core::FaultPlan::parse("degrade@200:e0*5").expect("valid"));
        let r = try_run(&spec, &sim).expect("throttled run must not trip the watchdog");
        assert_eq!(r.instructions, base.instructions);
        let rec = r.recovery.expect("plan armed");
        assert!(rec.degraded_cycles > 0, "window stayed open to run end");
        assert_eq!(rec.faults_applied, 1);
    }

    #[test]
    fn stall_diagnostic_reports_active_fault_state() {
        // Satellite acceptance: a freeze injected via the fault plan
        // trips the watchdog, and the diagnostic names the fault state.
        let spec = quick_spec("Lulesh");
        let mut sim = SimConfig::with_cfg(Design::NumaGpu, quick_cfg());
        sim.watchdog_cycles = Some(20_000);
        sim.fault_plan = Some(sim_core::FaultPlan::parse("freeze@2000").expect("valid"));
        let err = try_run(&spec, &sim).expect_err("forever freeze must trip the watchdog");
        match err {
            SimError::WatchdogStall { diagnostic, .. } => {
                assert!(
                    diagnostic.contains("fault state: 1 of 1 events applied"),
                    "diagnostic lacks fault state:\n{diagnostic}"
                );
                assert!(
                    diagnostic.contains("frozen: forever"),
                    "diagnostic lacks freeze state:\n{diagnostic}"
                );
            }
            other => panic!("expected WatchdogStall, got {other:?}"),
        }
    }

    #[test]
    fn bounded_freeze_delays_but_completes() {
        let spec = quick_spec("stream-triad");
        let mut sim = SimConfig::with_cfg(Design::NumaGpu, quick_cfg());
        sim.telemetry_interval = Some(0);
        sim.watchdog_cycles = Some(50_000);
        let base = try_run(&spec, &sim).expect("baseline");
        sim.fault_plan = Some(sim_core::FaultPlan::parse("freeze@1000+3000").expect("valid"));
        let r = try_run(&spec, &sim).expect("bounded freeze must complete");
        assert_eq!(r.instructions, base.instructions);
        assert_eq!(r.recovery.expect("armed").frozen_cycles, 3_000);
        // The freeze overlaps with already-scheduled memory latency
        // (in-flight completions deliver at unfreeze), so the wall-clock
        // stretch is positive but may be less than the window itself.
        assert!(
            r.cycles > base.cycles,
            "freeze did not stretch the run: {} -> {}",
            base.cycles,
            r.cycles
        );
    }

    #[test]
    fn multi_gpu_beats_single_gpu() {
        let single = quick_run("stream-triad", Design::SingleGpu);
        let multi = quick_run("stream-triad", Design::NumaGpu);
        assert!(
            multi.speedup_over(&single) > 1.5,
            "4 GPUs only {:.2}x faster on a private streaming workload",
            multi.speedup_over(&single)
        );
    }
}
