//! The assembled multi-GPU NUMA system and experiment harness.
//!
//! This crate wires every substrate together into the machine the paper
//! evaluates: per-GPU [`carve_gpu::GpuCore`]s and [`carve_dram::DramModel`]s,
//! a routed [`carve_noc::LinkNetwork`] over a [`carve_noc::Topology`]
//! (default: the paper's 4-GPU all-to-all mesh; scalable to 64 GPUs over
//! switch, ring, or hierarchical pod fabrics via
//! [`TopologySpec`](sim_core::TopologySpec)) plus CPU links and system
//! memory, a [`carve_runtime::PageTable`] with the software placement
//! policies, and optionally [`carve::Carve`] (RDC + coherence) at the
//! memory controllers.
//!
//! The eight named configurations of the paper's figures are the
//! [`Design`] enum; [`run`] simulates one workload under one design and
//! returns a [`SimResult`] with the cycle count and every traffic metric
//! the figures plot. The fallible [`try_run`] family returns
//! [`SimError`](sim_core::SimError) instead of panicking: configurations
//! are validated up front, a watchdog converts engine livelock into a
//! diagnosed `WatchdogStall`, and cycle-cap overruns surface as
//! `ResourceExhausted`.
//!
//! # Example
//!
//! ```no_run
//! use carve_system::{run, Design, SimConfig};
//! use carve_trace::workloads;
//!
//! let spec = workloads::by_name("Lulesh").unwrap();
//! let baseline = run(&spec, &SimConfig::new(Design::NumaGpu));
//! let carve = run(&spec, &SimConfig::new(Design::CarveHwc));
//! assert!(carve.cycles <= baseline.cycles);
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod design;
pub mod metrics;
mod sanitize;
pub mod sim;

pub use chaos::{ChaosFixture, ChaosOutcome, ChaosScenario};
pub use design::{Design, SimConfig};
pub use metrics::SimResult;
pub use sim::{
    run, run_with_profile, run_with_profile_mode, try_run, try_run_observed, try_run_with_profile,
    try_run_with_profile_mode, EngineMode,
};

// Re-exports so experiment binaries need only this crate.
pub use carve_runtime::sharing::{profile_workload, SharingProfile};
pub use carve_trace::workloads;
pub use sim_core::profile::{
    DramChannelProfile, LinkOccupancy, ProfileReport, StallCat, StallIntervalRecord, NUM_STALL_CATS,
};
pub use sim_core::telemetry::{
    IntervalRecord, JsonTraceSink, NullTraceSink, Timeline, TraceEvent, TracePhase, TraceSink,
};
pub use sim_core::{FaultKind, FaultPlan, RecoverySnapshot, ScaledConfig, SimError, TopologySpec};
