//! `carve-report`: render a campaign journal into a static HTML dashboard.
//!
//! ```text
//! carve-report <journal> [--out FILE] [--timeline FILE] [--profile FILE]
//!              [--title NAME]
//! ```
//!
//! `<journal>` is a campaign checkpoint journal (`results/<name>.journal`).
//! Sidecars default to `<name>.timeline.csv` and `<name>.profile.tsv`
//! next to the journal and are optional: sections whose data is missing
//! render an explanatory note instead. The output defaults to
//! `<name>.html` next to the journal.
//!
//! Exit codes: 0 on success, 1 on I/O failure, 2 on usage errors —
//! the same contract as `carve-sim`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use carve_report::{parse_profile_tsv, parse_timeline_csv, CampaignJournal};

struct Args {
    journal: PathBuf,
    out: Option<PathBuf>,
    timeline: Option<PathBuf>,
    profile: Option<PathBuf>,
    title: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: carve-report <journal> [--out FILE] [--timeline FILE] \
         [--profile FILE] [--title NAME]"
    );
    ExitCode::from(2)
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut journal = None;
    let mut out = None;
    let mut timeline = None;
    let mut profile = None;
    let mut title = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" | "--timeline" | "--profile" | "--title" => {
                let val = it
                    .next()
                    .ok_or_else(|| format!("{arg} requires a value"))?
                    .clone();
                match arg.as_str() {
                    "--out" => out = Some(PathBuf::from(val)),
                    "--timeline" => timeline = Some(PathBuf::from(val)),
                    "--profile" => profile = Some(PathBuf::from(val)),
                    _ => title = Some(val),
                }
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            positional => {
                if journal.is_some() {
                    return Err(format!("unexpected argument {positional}"));
                }
                journal = Some(PathBuf::from(positional));
            }
        }
    }
    Ok(Args {
        journal: journal.ok_or("missing journal path")?,
        out,
        timeline,
        profile,
        title,
    })
}

/// The journal's file stem (`results/fig02.journal` → `fig02`).
fn stem(path: &Path) -> String {
    path.file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "campaign".to_string())
}

/// Reads an explicitly named sidecar (an error if unreadable) or probes
/// the default path next to the journal (absence is fine).
fn read_sidecar(explicit: Option<&Path>, default: &Path) -> Result<Option<String>, String> {
    match explicit {
        Some(path) => std::fs::read_to_string(path)
            .map(Some)
            .map_err(|e| format!("cannot read {}: {e}", path.display())),
        None => Ok(std::fs::read_to_string(default).ok()),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("carve-report: {e}");
            return usage();
        }
    };
    match run(&args) {
        Ok(out) => {
            eprintln!("wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("carve-report: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &Args) -> Result<PathBuf, String> {
    let text = std::fs::read_to_string(&args.journal)
        .map_err(|e| format!("cannot read {}: {e}", args.journal.display()))?;
    let journal = CampaignJournal::parse(&text);
    let name = stem(&args.journal);
    let dir = args.journal.parent().unwrap_or(Path::new("."));
    let timelines = read_sidecar(
        args.timeline.as_deref(),
        &dir.join(format!("{name}.timeline.csv")),
    )?
    .map(|t| parse_timeline_csv(&t))
    .unwrap_or_default();
    let profiles = read_sidecar(
        args.profile.as_deref(),
        &dir.join(format!("{name}.profile.tsv")),
    )?
    .map(|t| parse_profile_tsv(&t))
    .unwrap_or_default();
    if journal.points.is_empty() && journal.failures.is_empty() {
        eprintln!(
            "warning: {} holds no records; rendering an empty dashboard",
            args.journal.display()
        );
    }
    let title = args.title.clone().unwrap_or(name);
    let html = carve_report::render(&title, &journal, &timelines, &profiles);
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| dir.join(format!("{}.html", stem(&args.journal))));
    std::fs::write(&out, html).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    Ok(out)
}
