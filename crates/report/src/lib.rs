//! Campaign-journal → static HTML dashboard rendering (DESIGN.md §14).
//!
//! The `carve-report` binary reads a campaign checkpoint journal
//! (`results/<name>.journal`, written by [`experiments`'s `Campaign`])
//! plus its optional sidecars — `<name>.timeline.csv` (interval
//! telemetry) and `<name>.profile.tsv` (compact stall breakdowns) — and
//! renders one self-contained HTML file. Self-contained is the design
//! constraint: the page must open from a `file://` URL on an air-gapped
//! machine, so every chart is hand-rolled inline SVG and the only
//! stylesheet is an inline `<style>` block. No scripts, no fonts, no CDN.
//!
//! The dashboard always contains five sections, each with a stable
//! element id that CI greps for:
//!
//! * `#speedup`  — per-workload speedup bars, one bar per design,
//!   normalized to the NUMA-GPU (else 1-GPU) point of the same group;
//! * `#stalls`   — stacked stall-category bars per design, from the
//!   profile sidecar;
//! * `#heatmap`  — per-GPU × interval IPC heatmaps, from the timeline
//!   sidecar;
//! * `#links`    — link-occupancy bars (profile sidecar) and per-point
//!   fabric traffic (journal), the scaling campaign's topology view;
//! * `#chaos`    — fault-injected points and journaled failures with
//!   their diagnostics.
//!
//! Sections degrade gracefully: a missing sidecar renders an explanatory
//! paragraph under the same anchor rather than dropping the section.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

use carve_system::{ProfileReport, SimResult, StallCat, NUM_STALL_CATS};

/// One completed point parsed back out of a journal.
#[derive(Debug, Clone)]
pub struct JournalPoint {
    /// The campaign config key (design label plus every knob, `|`-joined).
    pub config: String,
    /// The decoded result line (timeline/profile/recovery are `None` —
    /// those live in sidecars, not the 36-field journal contract).
    pub result: SimResult,
}

/// One `fail` record parsed back out of a journal.
#[derive(Debug, Clone)]
pub struct JournalFailure {
    /// Workload name.
    pub workload: String,
    /// The campaign config key.
    pub config: String,
    /// Attempts spent before giving up.
    pub attempts: u32,
    /// The (unescaped, possibly multi-line) error diagnostic.
    pub error: String,
}

/// A parsed campaign journal.
#[derive(Debug, Clone, Default)]
pub struct CampaignJournal {
    /// Completed points, in journal (commit) order.
    pub points: Vec<JournalPoint>,
    /// Failed points, in journal order.
    pub failures: Vec<JournalFailure>,
    /// Whether the `#carve-journal` header carried `quick=true`.
    pub quick: bool,
    /// Lines that were neither header, `ok`, nor `fail` records.
    pub skipped_lines: usize,
}

impl CampaignJournal {
    /// Parses journal text. Unrecognized or truncated lines are counted
    /// in [`CampaignJournal::skipped_lines`] rather than failing the
    /// whole render: a journal's tail may be a torn write from a killed
    /// campaign, and the dashboard should still show everything before
    /// it.
    pub fn parse(text: &str) -> CampaignJournal {
        let mut j = CampaignJournal::default();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if line.starts_with("#carve-journal") {
                j.quick = line.contains("quick=true");
                continue;
            }
            if let Some(rest) = line.strip_prefix("ok\t") {
                if let Some((config, payload)) = rest.split_once('\t') {
                    if let Some(result) = SimResult::decode_journal_line(payload) {
                        j.points.push(JournalPoint {
                            config: config.to_string(),
                            result,
                        });
                        continue;
                    }
                }
            } else if let Some(rest) = line.strip_prefix("fail\t") {
                let mut f = rest.splitn(4, '\t');
                if let (Some(workload), Some(config), Some(attempts), Some(error)) =
                    (f.next(), f.next(), f.next(), f.next())
                {
                    if let Ok(attempts) = attempts.parse() {
                        j.failures.push(JournalFailure {
                            workload: workload.to_string(),
                            config: config.to_string(),
                            attempts,
                            error: unescape_field(error),
                        });
                        continue;
                    }
                }
            }
            j.skipped_lines += 1;
        }
        j
    }
}

/// Inverse of the campaign journal's error-field escaping (`\t`, `\n`,
/// `\r`, `\\`).
fn unescape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// One (point × interval × GPU) row of a campaign timeline CSV. Only
/// the columns the dashboard plots are kept.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineRow {
    /// Workload name (first CSV column).
    pub workload: String,
    /// Campaign config key (second CSV column).
    pub config: String,
    /// First cycle of the interval (inclusive).
    pub start: u64,
    /// Last cycle of the interval (exclusive).
    pub end: u64,
    /// GPU index.
    pub gpu: usize,
    /// Warp instructions retired by this GPU inside the interval.
    pub instructions: u64,
}

/// Parses a campaign timeline CSV (`workload,config,<Timeline columns>`).
/// The header row and malformed rows are skipped.
pub fn parse_timeline_csv(text: &str) -> Vec<TimelineRow> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() < 6 || cols[0] == "workload" {
            continue;
        }
        let (Ok(start), Ok(end), Ok(gpu), Ok(instructions)) = (
            cols[2].parse(),
            cols[3].parse(),
            cols[4].parse(),
            cols[5].parse(),
        ) else {
            continue;
        };
        rows.push(TimelineRow {
            workload: cols[0].to_string(),
            config: cols[1].to_string(),
            start,
            end,
            gpu,
            instructions,
        });
    }
    rows
}

/// One line of a campaign profile sidecar: a point key plus its compact
/// stall breakdown.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// Workload name.
    pub workload: String,
    /// Campaign config key.
    pub config: String,
    /// The decoded breakdown (per-GPU stall totals exact; DRAM/link
    /// occupancy as machine-wide aggregates).
    pub report: ProfileReport,
}

/// Parses a campaign profile sidecar (`workload\tconfig\t<compact>` per
/// line). Malformed lines are skipped.
pub fn parse_profile_tsv(text: &str) -> Vec<ProfileRow> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let mut f = line.splitn(3, '\t');
        let (Some(workload), Some(config), Some(compact)) = (f.next(), f.next(), f.next()) else {
            continue;
        };
        let Some(report) = ProfileReport::decode_compact(compact) else {
            continue;
        };
        rows.push(ProfileRow {
            workload: workload.to_string(),
            config: config.to_string(),
            report,
        });
    }
    rows
}

/// Escapes text for HTML body and attribute positions.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

/// The design label of a config key (everything before the first `|`).
fn design_of(config: &str) -> &str {
    config.split('|').next().unwrap_or(config)
}

/// Looks up one `|key=value` field of a config key.
fn cfg_field<'a>(config: &'a str, key: &str) -> Option<&'a str> {
    config
        .split('|')
        .skip(1)
        .find_map(|f| f.strip_prefix(key)?.strip_prefix('='))
}

/// Fixed fill color per design label; unknown labels hash onto the
/// fallback palette so new designs still get stable, distinct bars.
fn design_color(label: &str) -> &'static str {
    match label {
        "1-GPU" => "#9e9e9e",
        "NUMA-GPU" => "#c62828",
        "NUMA-GPU+Migrate" => "#ef6c00",
        "NUMA-GPU+RO-Repl" => "#f9a825",
        "CARVE-NC" => "#9575cd",
        "CARVE-SWC" => "#42a5f5",
        "CARVE-HWC" => "#1565c0",
        "Ideal" => "#2e7d32",
        _ => {
            const FALLBACK: [&str; 4] = ["#00897b", "#6d4c41", "#d81b60", "#5e35b1"];
            let h: usize = label.bytes().map(usize::from).sum();
            FALLBACK[h % FALLBACK.len()]
        }
    }
}

/// Fill colors for the eleven stall categories, indexed by
/// [`StallCat::index`]. Issuing is green, idle gray, memory-hierarchy
/// stalls cool colors, NUMA/coherence stalls warm colors, structural
/// stalls purple — so the paper's story (remote and coherence stalls
/// shrink under CARVE) is visible at a glance.
const STALL_COLORS: [&str; NUM_STALL_CATS] = [
    "#66bb6a", // issuing
    "#e0e0e0", // idle
    "#b3e5fc", // l1-miss
    "#4fc3f7", // l2-miss
    "#0288d1", // local-dram
    "#e53935", // remote-link
    "#ff7043", // coherence-invalidate
    "#ffb300", // epoch-flush
    "#f06292", // rdc-miss
    "#8e24aa", // mshr-full
    "#5e35b1", // link-queue
];

/// A speedup bar group: one workload at one machine point, bars ordered
/// as journaled.
struct SpeedupGroup {
    title: String,
    bars: Vec<(String, f64)>, // (design label, speedup)
}

/// Groups journal points into speedup bar groups. Fault-injected points
/// are excluded (they live in `#chaos`); each group is normalized to its
/// NUMA-GPU point, else its 1-GPU point, else its first point.
fn speedup_groups(journal: &CampaignJournal) -> Vec<SpeedupGroup> {
    // Key: workload + every non-design knob that splits a figure into
    // separate x positions (machine size, fabric, link bandwidth).
    let mut groups: BTreeMap<(String, String), Vec<&JournalPoint>> = BTreeMap::new();
    for p in &journal.points {
        if cfg_field(&p.config, "faults").is_some() {
            continue;
        }
        let qualifier = ["gpus", "topo", "bw"]
            .iter()
            .filter_map(|k| Some(format!("{k}={}", cfg_field(&p.config, k)?)))
            .collect::<Vec<_>>()
            .join(" ");
        groups
            .entry((p.result.workload.clone(), qualifier))
            .or_default()
            .push(p);
    }
    let mut out = Vec::new();
    for ((workload, qualifier), points) in groups {
        let baseline = points
            .iter()
            .find(|p| design_of(&p.config) == "NUMA-GPU")
            .or_else(|| points.iter().find(|p| design_of(&p.config) == "1-GPU"))
            .unwrap_or(&points[0]);
        let base_cycles = baseline.result.cycles;
        let mut bars = Vec::new();
        for p in &points {
            let speedup = if p.result.cycles == 0 {
                0.0
            } else {
                base_cycles as f64 / p.result.cycles as f64
            };
            bars.push((design_of(&p.config).to_string(), speedup));
        }
        out.push(SpeedupGroup {
            title: format!("{workload} ({qualifier})"),
            bars,
        });
    }
    out
}

/// Renders the `#speedup` section: grouped vertical bars.
fn render_speedup(journal: &CampaignJournal, html: &mut String) {
    html.push_str("<section id=\"speedup\"><h2>Speedup</h2>\n");
    let groups = speedup_groups(journal);
    if groups.is_empty() {
        html.push_str("<p class=\"empty\">No completed points in this journal.</p>\n");
        html.push_str("</section>\n");
        return;
    }
    const MAX_GROUPS: usize = 40;
    let shown = &groups[..groups.len().min(MAX_GROUPS)];
    html.push_str(
        "<p>Bars are speedup over the group's NUMA-GPU point (else its \
         1-GPU point); taller is better. Hover a bar for the exact value.</p>\n",
    );
    // Legend over every design label that appears.
    let mut labels: Vec<&str> = Vec::new();
    for g in shown {
        for (label, _) in &g.bars {
            if !labels.contains(&label.as_str()) {
                labels.push(label);
            }
        }
    }
    html.push_str("<p class=\"legend\">");
    for label in &labels {
        let _ = write!(
            html,
            "<span class=\"chip\" style=\"background:{}\"></span>{} ",
            design_color(label),
            esc(label)
        );
    }
    html.push_str("</p>\n");
    let max_speedup = shown
        .iter()
        .flat_map(|g| g.bars.iter().map(|(_, s)| *s))
        .fold(1.0f64, f64::max);
    const BAR_W: f64 = 14.0;
    const GAP: f64 = 24.0;
    const PLOT_H: f64 = 180.0;
    const LABEL_H: f64 = 120.0;
    let mut x = GAP;
    let mut bars_svg = String::new();
    for g in shown {
        let x0 = x;
        for (label, speedup) in &g.bars {
            let h = (speedup / max_speedup) * PLOT_H;
            let _ = write!(
                bars_svg,
                "<rect x=\"{x:.1}\" y=\"{:.1}\" width=\"{BAR_W}\" height=\"{h:.1}\" \
                 fill=\"{}\"><title>{}: {speedup:.3}×</title></rect>",
                PLOT_H - h,
                design_color(label),
                esc(&format!("{} {label}", g.title)),
            );
            x += BAR_W + 2.0;
        }
        let cx = (x0 + x - 2.0) / 2.0;
        let _ = write!(
            bars_svg,
            "<text x=\"{cx:.1}\" y=\"{:.1}\" class=\"xlabel\" \
             transform=\"rotate(45 {cx:.1} {:.1})\">{}</text>",
            PLOT_H + 14.0,
            PLOT_H + 14.0,
            esc(&g.title),
        );
        x += GAP;
    }
    // 1.0× reference line.
    let ref_y = PLOT_H - (1.0 / max_speedup) * PLOT_H;
    let _ = writeln!(
        html,
        "<svg viewBox=\"0 0 {:.0} {:.0}\" width=\"{:.0}\" height=\"{:.0}\" \
         role=\"img\" aria-label=\"speedup bars\">\
         <line x1=\"0\" y1=\"{ref_y:.1}\" x2=\"{x:.1}\" y2=\"{ref_y:.1}\" class=\"refline\"/>\
         {bars_svg}</svg>",
        x,
        PLOT_H + LABEL_H,
        x,
        PLOT_H + LABEL_H,
    );
    if groups.len() > MAX_GROUPS {
        let _ = writeln!(
            html,
            "<p class=\"empty\">…and {} more groups not shown.</p>",
            groups.len() - MAX_GROUPS
        );
    }
    html.push_str("</section>\n");
}

/// Renders the `#stalls` section: one horizontal 100%-stacked bar per
/// design, aggregated across every profiled point of that design.
fn render_stalls(profiles: &[ProfileRow], html: &mut String) {
    html.push_str("<section id=\"stalls\"><h2>Stall breakdown</h2>\n");
    if profiles.is_empty() {
        html.push_str(
            "<p class=\"empty\">No profile sidecar: rerun the campaign with \
             <code>--profile</code> to collect per-point stall breakdowns.</p>\n</section>\n",
        );
        return;
    }
    let mut by_design: BTreeMap<&str, [u64; NUM_STALL_CATS]> = BTreeMap::new();
    for row in profiles {
        let acc = by_design
            .entry(design_of(&row.config))
            .or_insert([0; NUM_STALL_CATS]);
        for (a, v) in acc.iter_mut().zip(row.report.totals()) {
            *a += v;
        }
    }
    html.push_str(
        "<p>Where every SM-cycle went, per design, aggregated over all \
         profiled points. Categories are exclusive and sum to 100%.</p>\n<p class=\"legend\">",
    );
    for cat in StallCat::ALL {
        let _ = write!(
            html,
            "<span class=\"chip\" style=\"background:{}\"></span>{} ",
            STALL_COLORS[cat.index()],
            cat.label()
        );
    }
    html.push_str("</p>\n");
    const ROW_H: f64 = 26.0;
    const BAR_X: f64 = 170.0;
    const BAR_W: f64 = 640.0;
    let height = by_design.len() as f64 * ROW_H;
    let _ = write!(
        html,
        "<svg viewBox=\"0 0 {:.0} {height:.0}\" width=\"{:.0}\" height=\"{height:.0}\" \
         role=\"img\" aria-label=\"stall breakdown\">",
        BAR_X + BAR_W + 10.0,
        BAR_X + BAR_W + 10.0,
    );
    for (i, (design, totals)) in by_design.iter().enumerate() {
        let y = i as f64 * ROW_H;
        let sum: u64 = totals.iter().sum();
        let _ = write!(
            html,
            "<text x=\"{:.1}\" y=\"{:.1}\" class=\"ylabel\">{}</text>",
            BAR_X - 8.0,
            y + ROW_H * 0.65,
            esc(design)
        );
        if sum == 0 {
            continue;
        }
        let mut x = BAR_X;
        for cat in StallCat::ALL {
            let frac = totals[cat.index()] as f64 / sum as f64;
            let w = frac * BAR_W;
            if w < 0.05 {
                continue;
            }
            let _ = write!(
                html,
                "<rect x=\"{x:.1}\" y=\"{:.1}\" width=\"{w:.1}\" height=\"{:.1}\" \
                 fill=\"{}\"><title>{} {}: {:.1}%</title></rect>",
                y + 3.0,
                ROW_H - 6.0,
                STALL_COLORS[cat.index()],
                esc(design),
                cat.label(),
                frac * 100.0,
            );
            x += w;
        }
    }
    html.push_str("</svg>\n</section>\n");
}

/// Renders the `#heatmap` section: per-GPU × interval IPC heatmaps for
/// the first few timeline points.
fn render_heatmap(timelines: &[TimelineRow], html: &mut String) {
    html.push_str("<section id=\"heatmap\"><h2>Per-GPU activity heatmap</h2>\n");
    if timelines.is_empty() {
        html.push_str(
            "<p class=\"empty\">No timeline sidecar: rerun the campaign with \
             <code>--timeline</code> to collect interval telemetry.</p>\n</section>\n",
        );
        return;
    }
    // Group rows by point, preserving journal order.
    let mut order: Vec<(String, String)> = Vec::new();
    let mut grouped: BTreeMap<(String, String), Vec<&TimelineRow>> = BTreeMap::new();
    for row in timelines {
        let key = (row.workload.clone(), row.config.clone());
        if !grouped.contains_key(&key) {
            order.push(key.clone());
        }
        grouped.entry(key).or_default().push(row);
    }
    const MAX_POINTS: usize = 4;
    const MAX_COLS: usize = 240;
    html.push_str(
        "<p>Each cell is one GPU over one telemetry interval; darker is \
         higher IPC. Launch gaps and load imbalance show up as light bands.</p>\n",
    );
    for key in order.iter().take(MAX_POINTS) {
        let rows = &grouped[key];
        let gpus = rows.iter().map(|r| r.gpu).max().unwrap_or(0) + 1;
        // Column index by interval start, in first-seen order (rows for
        // all GPUs of one interval are adjacent in the CSV).
        let mut starts: Vec<u64> = rows.iter().map(|r| r.start).collect();
        starts.sort_unstable();
        starts.dedup();
        let truncated = starts.len() > MAX_COLS;
        starts.truncate(MAX_COLS);
        let max_ipc = rows
            .iter()
            .map(|r| r.instructions as f64 / (r.end - r.start).max(1) as f64)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        const CELL_W: f64 = 5.0;
        const CELL_H: f64 = 13.0;
        let _ = write!(
            html,
            "<h3>{} — {}</h3>\n<svg viewBox=\"0 0 {:.0} {:.0}\" width=\"{:.0}\" \
             height=\"{:.0}\" role=\"img\" aria-label=\"gpu interval heatmap\">",
            esc(&key.0),
            esc(&key.1),
            starts.len() as f64 * CELL_W + 40.0,
            gpus as f64 * CELL_H,
            starts.len() as f64 * CELL_W + 40.0,
            gpus as f64 * CELL_H,
        );
        for g in 0..gpus {
            let _ = write!(
                html,
                "<text x=\"0\" y=\"{:.1}\" class=\"cell-label\">g{g}</text>",
                g as f64 * CELL_H + CELL_H * 0.75
            );
        }
        for row in rows {
            let Ok(col) = starts.binary_search(&row.start) else {
                continue; // beyond the displayed window
            };
            let ipc = row.instructions as f64 / (row.end - row.start).max(1) as f64;
            let shade = ipc / max_ipc;
            // White → deep blue ramp.
            let r = (247.0 - shade * 239.0) as u32;
            let gch = (251.0 - shade * 170.0) as u32;
            let b = 255.0 as u32;
            let _ = write!(
                html,
                "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{CELL_W}\" height=\"{CELL_H}\" \
                 fill=\"rgb({r},{gch},{b})\"><title>gpu{} [{}, {}): ipc {ipc:.2}</title></rect>",
                30.0 + col as f64 * CELL_W,
                row.gpu as f64 * CELL_H,
                row.gpu,
                row.start,
                row.end,
            );
        }
        html.push_str("</svg>\n");
        if truncated {
            let _ = writeln!(
                html,
                "<p class=\"empty\">First {MAX_COLS} intervals shown.</p>"
            );
        }
    }
    if order.len() > MAX_POINTS {
        let _ = writeln!(
            html,
            "<p class=\"empty\">…and {} more timeline points not shown.</p>",
            order.len() - MAX_POINTS
        );
    }
    html.push_str("</section>\n");
}

/// Renders the `#links` section: per-point link-occupancy stacks from
/// the profile sidecar, plus journal-derived fabric traffic per machine
/// point (the scaling campaign's topology view).
fn render_links(journal: &CampaignJournal, profiles: &[ProfileRow], html: &mut String) {
    html.push_str("<section id=\"links\"><h2>Link utilization</h2>\n");
    const ROW_H: f64 = 22.0;
    const BAR_X: f64 = 330.0;
    const BAR_W: f64 = 480.0;
    if !profiles.is_empty() {
        const MAX_ROWS: usize = 24;
        html.push_str(
            "<p>Fabric-cycle occupancy per profiled point: serialization \
             (payload on the wire), queueing (waiting for the wire), and \
             fault-degraded transfer.</p>\n<p class=\"legend\">\
             <span class=\"chip\" style=\"background:#1565c0\"></span>serialization \
             <span class=\"chip\" style=\"background:#ffb300\"></span>queueing \
             <span class=\"chip\" style=\"background:#e53935\"></span>fault-degraded</p>\n",
        );
        let shown = &profiles[..profiles.len().min(MAX_ROWS)];
        let height = shown.len() as f64 * ROW_H;
        let max_cycles = shown
            .iter()
            .flat_map(|p| &p.report.links)
            .map(|l| l.ser_cycles + l.queue_cycles + l.degraded_cycles)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let _ = write!(
            html,
            "<svg viewBox=\"0 0 {:.0} {height:.0}\" width=\"{:.0}\" height=\"{height:.0}\" \
             role=\"img\" aria-label=\"link occupancy\">",
            BAR_X + BAR_W + 10.0,
            BAR_X + BAR_W + 10.0,
        );
        for (i, row) in shown.iter().enumerate() {
            let y = i as f64 * ROW_H;
            let _ = write!(
                html,
                "<text x=\"{:.1}\" y=\"{:.1}\" class=\"ylabel\">{}</text>",
                BAR_X - 8.0,
                y + ROW_H * 0.65,
                esc(&format!("{} {}", row.workload, design_of(&row.config))),
            );
            let mut x = BAR_X;
            for l in &row.report.links {
                for (v, color, leaf) in [
                    (l.ser_cycles, "#1565c0", "serialization"),
                    (l.queue_cycles, "#ffb300", "queueing"),
                    (l.degraded_cycles, "#e53935", "fault-degraded"),
                ] {
                    let w = v / max_cycles * BAR_W;
                    if w < 0.05 {
                        continue;
                    }
                    let _ = write!(
                        html,
                        "<rect x=\"{x:.1}\" y=\"{:.1}\" width=\"{w:.1}\" height=\"{:.1}\" \
                         fill=\"{color}\"><title>{} {leaf}: {v:.0} cycles</title></rect>",
                        y + 3.0,
                        ROW_H - 6.0,
                        esc(&l.label),
                    );
                    x += w;
                }
            }
        }
        html.push_str("</svg>\n");
        if profiles.len() > MAX_ROWS {
            let _ = writeln!(
                html,
                "<p class=\"empty\">…and {} more profiled points not shown.</p>",
                profiles.len() - MAX_ROWS
            );
        }
    } else {
        html.push_str(
            "<p class=\"empty\">No profile sidecar: rerun the campaign with \
             <code>--profile</code> for cycle-level link occupancy.</p>\n",
        );
    }
    // Journal-derived traffic: bytes per cycle over the fabric, per
    // machine point — meaningful even without sidecars.
    let mut traffic: Vec<(String, f64)> = journal
        .points
        .iter()
        .filter(|p| p.result.cycles > 0 && p.result.link_bytes > 0)
        .map(|p| {
            let mut label = format!("{} {}", p.result.workload, design_of(&p.config));
            for k in ["gpus", "topo"] {
                if let Some(v) = cfg_field(&p.config, k) {
                    let _ = write!(label, " {k}={v}");
                }
            }
            (label, p.result.link_bytes as f64 / p.result.cycles as f64)
        })
        .collect();
    traffic.sort_by(|a, b| b.1.total_cmp(&a.1));
    if !traffic.is_empty() {
        const MAX_ROWS: usize = 24;
        traffic.truncate(MAX_ROWS);
        let max_bpc = traffic.first().map(|t| t.1).unwrap_or(1.0).max(1e-9);
        html.push_str("<p>Inter-GPU traffic from the journal (bytes/cycle, busiest first).</p>\n");
        let height = traffic.len() as f64 * ROW_H;
        let _ = write!(
            html,
            "<svg viewBox=\"0 0 {:.0} {height:.0}\" width=\"{:.0}\" height=\"{height:.0}\" \
             role=\"img\" aria-label=\"fabric traffic\">",
            BAR_X + BAR_W + 10.0,
            BAR_X + BAR_W + 10.0,
        );
        for (i, (label, bpc)) in traffic.iter().enumerate() {
            let y = i as f64 * ROW_H;
            let w = bpc / max_bpc * BAR_W;
            let _ = write!(
                html,
                "<text x=\"{:.1}\" y=\"{:.1}\" class=\"ylabel\">{}</text>\
                 <rect x=\"{BAR_X}\" y=\"{:.1}\" width=\"{w:.1}\" height=\"{:.1}\" \
                 fill=\"#1565c0\"><title>{}: {bpc:.2} B/cycle</title></rect>",
                BAR_X - 8.0,
                y + ROW_H * 0.65,
                esc(label),
                y + 3.0,
                ROW_H - 6.0,
                esc(label),
            );
        }
        html.push_str("</svg>\n");
    }
    html.push_str("</section>\n");
}

/// Renders the `#chaos` section: fault-injected points and journaled
/// failures.
fn render_chaos(journal: &CampaignJournal, html: &mut String) {
    html.push_str("<section id=\"chaos\"><h2>Faults &amp; failures</h2>\n");
    let faulted: Vec<&JournalPoint> = journal
        .points
        .iter()
        .filter(|p| cfg_field(&p.config, "faults").is_some())
        .collect();
    if faulted.is_empty() && journal.failures.is_empty() {
        html.push_str(
            "<p class=\"empty\">No fault-injected points and no failures \
             in this journal.</p>\n</section>\n",
        );
        return;
    }
    html.push_str(
        "<table><tr><th>status</th><th>workload</th><th>config</th>\
         <th>outcome</th></tr>\n",
    );
    for p in &faulted {
        let _ = writeln!(
            html,
            "<tr><td class=\"ok\">survived</td><td>{}</td><td><code>{}</code></td>\
             <td>{} cycles{}</td></tr>",
            esc(&p.result.workload),
            esc(&p.config),
            p.result.cycles,
            if p.result.completed {
                ""
            } else {
                " (cycle-capped)"
            },
        );
    }
    for f in &journal.failures {
        let first_line = f.error.lines().next().unwrap_or("");
        let _ = writeln!(
            html,
            "<tr><td class=\"fail\">failed ×{}</td><td>{}</td><td><code>{}</code></td>\
             <td><code title=\"{}\">{}</code></td></tr>",
            f.attempts,
            esc(&f.workload),
            esc(&f.config),
            esc(&f.error),
            esc(first_line),
        );
    }
    html.push_str("</table>\n</section>\n");
}

/// Renders the complete dashboard: one self-contained HTML document with
/// the five fixed sections (`#speedup`, `#stalls`, `#heatmap`, `#links`,
/// `#chaos`). `title` names the campaign in the header.
pub fn render(
    title: &str,
    journal: &CampaignJournal,
    timelines: &[TimelineRow],
    profiles: &[ProfileRow],
) -> String {
    let mut html = String::with_capacity(64 * 1024);
    html.push_str("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n");
    let _ = writeln!(html, "<title>{} — carve-report</title>", esc(title));
    html.push_str(
        "<style>\n\
         body{font-family:system-ui,sans-serif;margin:2rem auto;max-width:70rem;\
         padding:0 1rem;color:#212121}\n\
         h1{border-bottom:2px solid #1565c0;padding-bottom:.3rem}\n\
         section{margin-bottom:2.5rem}\n\
         svg{display:block;max-width:100%;height:auto}\n\
         .xlabel{font-size:9px;text-anchor:start}\n\
         .ylabel{font-size:10px;text-anchor:end}\n\
         .cell-label{font-size:9px}\n\
         .refline{stroke:#9e9e9e;stroke-dasharray:3 3}\n\
         .chip{display:inline-block;width:.8em;height:.8em;margin:0 .25em 0 .8em;\
         border:1px solid #757575}\n\
         .legend{font-size:.85rem}\n\
         .empty{color:#757575;font-style:italic}\n\
         table{border-collapse:collapse;font-size:.85rem}\n\
         td,th{border:1px solid #bdbdbd;padding:.25rem .5rem;text-align:left}\n\
         td.ok{color:#2e7d32}td.fail{color:#c62828}\n\
         code{font-size:.8rem;word-break:break-all}\n\
         </style></head><body>\n",
    );
    let _ = writeln!(html, "<h1>{}</h1>", esc(title));
    let workloads: std::collections::BTreeSet<&str> = journal
        .points
        .iter()
        .map(|p| p.result.workload.as_str())
        .collect();
    let designs: std::collections::BTreeSet<&str> = journal
        .points
        .iter()
        .map(|p| design_of(&p.config))
        .collect();
    let _ = writeln!(
        html,
        "<p>{} completed points · {} workloads · {} designs · {} failures\
         {}{}</p>",
        journal.points.len(),
        workloads.len(),
        designs.len(),
        journal.failures.len(),
        if journal.quick {
            " · <strong>quick-mode journal</strong> (shrunken workloads)"
        } else {
            ""
        },
        if journal.skipped_lines > 0 {
            " · some journal lines were unparsable and skipped"
        } else {
            ""
        },
    );
    render_speedup(journal, &mut html);
    render_stalls(profiles, &mut html);
    render_heatmap(timelines, &mut html);
    render_links(journal, profiles, &mut html);
    render_chaos(journal, &mut html);
    html.push_str("</body></html>\n");
    html
}

#[cfg(test)]
mod tests {
    use super::*;
    use carve_system::{Design, SimConfig};

    /// A real (tiny) simulation result, so journal round-trips exercise
    /// the production encoder.
    fn tiny_result(design: Design) -> SimResult {
        let mut spec = carve_system::workloads::by_name("stream-triad").expect("workload");
        spec.shape.kernels = 1;
        spec.shape.ctas = 8;
        spec.shape.instrs_per_warp = 20;
        let mut sim = SimConfig::new(design);
        sim.cfg.num_gpus = 2;
        sim.cfg.sms_per_gpu = 2;
        sim.cfg.warps_per_sm = 8;
        carve_system::run(&spec, &sim)
    }

    fn sample_journal() -> CampaignJournal {
        let base = tiny_result(Design::NumaGpu);
        let carve = tiny_result(Design::CarveHwc);
        let text = format!(
            "#carve-journal v1 quick=true\n\
             ok\tNUMA-GPU|rdc=0|gpus=2\t{}\n\
             ok\tCARVE-HWC|rdc=128|gpus=2\t{}\n\
             ok\tNUMA-GPU|rdc=0|gpus=2|faults=degrade@300:e0*25\t{}\n\
             fail\tLulesh\tNUMA-GPU|rdc=0|gpus=2|faults=outage@600:e0\t2\t\
             fabric partitioned: gpu0 <-> gpu1\\nsecond <line>\n\
             torn trailing line without a record tag",
            base.encode_journal_line(),
            carve.encode_journal_line(),
            base.encode_journal_line(),
        );
        CampaignJournal::parse(&text)
    }

    #[test]
    fn journal_parses_ok_fail_and_skips_torn_lines() {
        let j = sample_journal();
        assert!(j.quick);
        assert_eq!(j.points.len(), 3);
        assert_eq!(j.failures.len(), 1);
        assert_eq!(j.skipped_lines, 1);
        assert_eq!(j.points[0].result.workload, "stream-triad");
        assert_eq!(design_of(&j.points[1].config), "CARVE-HWC");
        // The escaped multi-line error round-trips.
        assert_eq!(
            j.failures[0].error,
            "fabric partitioned: gpu0 <-> gpu1\nsecond <line>"
        );
        assert_eq!(j.failures[0].attempts, 2);
    }

    #[test]
    fn sidecar_parsers_skip_headers_and_malformed_rows() {
        let csv = "workload,config,start,end,gpu,instructions,rest\n\
                   stream-triad,NUMA-GPU|gpus=2,0,500,0,1234,x\n\
                   stream-triad,NUMA-GPU|gpus=2,0,500,1,999,x\n\
                   bad,row,not,numeric,at,all,x\n";
        let rows = parse_timeline_csv(csv);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].gpu, 1);
        assert_eq!(rows[1].instructions, 999);

        let report = ProfileReport {
            cycles: 100,
            sms_per_gpu: 2,
            gpus: vec![[10u64; NUM_STALL_CATS], [10u64; NUM_STALL_CATS]],
            ..ProfileReport::default()
        };
        let tsv = format!(
            "stream-triad\tCARVE-HWC|gpus=2\t{}\nnot a profile line\n",
            report.encode_compact()
        );
        let rows = parse_profile_tsv(&tsv);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].report.gpus.len(), 2);
        assert_eq!(rows[0].report.totals(), report.totals());
    }

    #[test]
    fn dashboard_is_self_contained_with_every_section_anchor() {
        let j = sample_journal();
        let timelines = parse_timeline_csv(
            "workload,config,start,end,gpu,instructions\n\
             stream-triad,NUMA-GPU|rdc=0|gpus=2,0,500,0,800\n\
             stream-triad,NUMA-GPU|rdc=0|gpus=2,0,500,1,400\n\
             stream-triad,NUMA-GPU|rdc=0|gpus=2,500,1000,0,900\n\
             stream-triad,NUMA-GPU|rdc=0|gpus=2,500,1000,1,100\n",
        );
        let report = ProfileReport {
            cycles: 1000,
            sms_per_gpu: 2,
            gpus: vec![[100u64; NUM_STALL_CATS], [100u64; NUM_STALL_CATS]],
            links: vec![carve_system::LinkOccupancy {
                label: "e0 g0->g1".into(),
                ser_cycles: 300.0,
                queue_cycles: 120.0,
                degraded_cycles: 5.0,
            }],
            ..ProfileReport::default()
        };
        let profiles = vec![ProfileRow {
            workload: "stream-triad".into(),
            config: "CARVE-HWC|rdc=128|gpus=2".into(),
            report,
        }];
        let html = render("fig02", &j, &timelines, &profiles);
        for anchor in [
            "id=\"speedup\"",
            "id=\"stalls\"",
            "id=\"heatmap\"",
            "id=\"links\"",
            "id=\"chaos\"",
        ] {
            assert!(html.contains(anchor), "missing {anchor}");
        }
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        // Self-contained: no external fetches of any kind.
        for forbidden in ["http://", "https://", "<script", "<link", "@import", "url("] {
            assert!(!html.contains(forbidden), "external reference: {forbidden}");
        }
        // Fault-injected point and failure both land in #chaos.
        assert!(html.contains("survived"));
        assert!(html.contains("failed ×2"));
        // The multi-line failure diagnostic is escaped, not interpreted.
        assert!(html.contains("&lt;line&gt;"));
    }

    #[test]
    fn sections_degrade_gracefully_without_sidecars() {
        let j = sample_journal();
        let html = render("fig02", &j, &[], &[]);
        for anchor in [
            "id=\"speedup\"",
            "id=\"stalls\"",
            "id=\"heatmap\"",
            "id=\"links\"",
            "id=\"chaos\"",
        ] {
            assert!(html.contains(anchor), "missing {anchor}");
        }
        assert!(html.contains("--profile"));
        assert!(html.contains("--timeline"));
    }

    #[test]
    fn speedup_groups_normalize_to_numa_gpu_and_exclude_faulted_points() {
        let j = sample_journal();
        let groups = speedup_groups(&j);
        // One workload at one machine point; the faulted NUMA-GPU run is
        // excluded, leaving the two clean points in one group.
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].bars.len(), 2);
        let numa = groups[0].bars.iter().find(|b| b.0 == "NUMA-GPU").unwrap();
        assert!((numa.1 - 1.0).abs() < 1e-12, "baseline must be 1.0×");
        let carve = groups[0].bars.iter().find(|b| b.0 == "CARVE-HWC").unwrap();
        assert!(carve.1 > 0.0);
    }
}
