//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each evaluation artifact has a binary (`fig02` … `fig14`, `table4`,
//! `table5`) and a library function here, so the `all-figures` campaign
//! runner can share simulation results across figures — most figures slice
//! the same (workload × design) result matrix.
//!
//! Output goes to stdout as aligned tables and to `results/<id>.tsv`.
//!
//! Environment knobs:
//!
//! * `CARVE_QUICK=1` — shrink workloads (fewer kernels/CTAs) for a fast
//!   sanity pass of the whole campaign.
//! * `CARVE_RESULTS_DIR` — where `.tsv` files are written (default
//!   `results/`).
//! * `CARVE_THREADS` — worker threads for parallel campaign fan-out
//!   (default: available parallelism).
//! * `CARVE_STEP=1` — force the legacy cycle-stepping engine instead of
//!   event skipping (see `carve_system::sim`).

#![warn(missing_docs)]

pub mod campaign;
pub mod figures;
pub mod par;
pub mod table;

pub use campaign::{Campaign, PointFailure, PointTiming};
pub use table::Table;
