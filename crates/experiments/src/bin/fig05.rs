//! Regenerates the paper's fig05.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::with_journal("fig05");
    c.enable_timeline_from_args();
    c.enable_profile_from_args();
    figures::fig05(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
    c.report_timeline("fig05");
    c.report_profile("fig05");
}
