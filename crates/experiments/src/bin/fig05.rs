//! Regenerates the paper's fig05.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::new();
    figures::fig05(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
}
