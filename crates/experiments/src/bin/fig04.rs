//! Regenerates the paper's fig04.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::with_journal("fig04");
    c.enable_timeline_from_args();
    c.enable_profile_from_args();
    figures::fig04(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
    c.report_timeline("fig04");
    c.report_profile("fig04");
}
