//! Regenerates the paper's fig04.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::with_journal("fig04");
    figures::fig04(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
}
