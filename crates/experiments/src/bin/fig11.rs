//! Regenerates the paper's fig11.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::with_journal("fig11");
    c.enable_timeline_from_args();
    c.enable_profile_from_args();
    figures::fig11(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
    c.report_timeline("fig11");
    c.report_profile("fig11");
}
