//! Regenerates the paper's Table IV (analytic; no simulation needed).
use experiments::figures;

fn main() {
    figures::table4().emit();
}
