//! Regenerates the paper's fig09.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::with_journal("fig09");
    c.enable_timeline_from_args();
    c.enable_profile_from_args();
    figures::fig09(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
    c.report_timeline("fig09");
    c.report_profile("fig09");
}
