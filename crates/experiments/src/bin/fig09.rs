//! Regenerates the paper's fig09.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::new();
    figures::fig09(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
}
