//! Regenerates the paper's fig09.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::with_journal("fig09");
    figures::fig09(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
}
