//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! These are *simulated-cycle* comparisons (not wall-clock benches):
//!
//! 1. Write-through vs write-back RDC (paper: within 1%).
//! 2. IMST write-invalidate filtering vs broadcast-always GPU-VI.
//! 3. The RDC hit predictor on the RandAccess pathology.
//! 4. Kernel-launch overhead sensitivity (Amdahl term of the scaled runs).

use carve::WritePolicy;
use carve_system::{Design, SimConfig};
use carve_trace::WorkloadSpec;
use experiments::{Campaign, Table};
use sim_core::geomean;

/// Fans every ablation point across worker threads before the tables
/// slice the warm cache (the launch-overhead study bypasses the cache and
/// stays sequential).
fn prefetch(c: &mut Campaign) {
    let base = c.base_cfg();
    let mut points: Vec<(WorkloadSpec, SimConfig)> = Vec::new();
    for spec in c.specs() {
        points.push((
            spec.clone(),
            SimConfig::with_cfg(Design::CarveHwc, base.clone()),
        ));
        let mut dir = SimConfig::with_cfg(Design::CarveHwc, base.clone());
        dir.directory_coherence = true;
        points.push((spec.clone(), dir));
        let mut wb = SimConfig::with_cfg(Design::CarveHwc, base.clone());
        wb.rdc_write_policy = WritePolicy::WriteBack;
        points.push((spec.clone(), wb));
        let mut bcast = SimConfig::with_cfg(Design::CarveHwc, base.clone());
        bcast.gpu_vi_broadcast_always = true;
        points.push((spec.clone(), bcast));
    }
    let find = |name: &str| {
        c.specs()
            .into_iter()
            .find(|s| s.name == name)
            .expect("known workload")
    };
    for name in ["RandAccess", "XSBench", "bfs-road", "Lulesh"] {
        let mut sim = SimConfig::with_cfg(Design::CarveHwc, base.clone());
        sim.hit_predictor = true;
        points.push((find(name), sim));
    }
    for name in ["MCB", "XSBench", "stream-triad", "AMG"] {
        let mut off = SimConfig::with_cfg(Design::CarveHwc, base.clone());
        off.spill_fraction = 0.0625;
        let mut on = off.clone();
        on.rdc_caches_sysmem = true;
        points.push((find(name), off));
        points.push((find(name), on));
    }
    c.run_parallel(&points);
}

fn main() {
    let mut c = Campaign::with_journal("ablations");
    c.enable_timeline_from_args();
    c.enable_profile_from_args();
    prefetch(&mut c);
    write_policy_ablation(&mut c).emit();
    imst_ablation(&mut c).emit();
    directory_ablation(&mut c).emit();
    predictor_ablation(&mut c).emit();
    sysmem_rdc_ablation(&mut c).emit();
    launch_overhead_ablation(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
    c.report_timeline("ablations");
    c.report_profile("ablations");
}

/// Section V-E: broadcast GPU-VI vs a sharer directory at the default
/// 4-GPU machine (the scaling binary sweeps node counts).
fn directory_ablation(c: &mut Campaign) -> Table {
    let mut t = Table::new(
        "ablation_directory",
        "Ablation: broadcast vs directory coherence (CARVE-HWC)",
        &[
            "workload",
            "bcast-cycles",
            "dir-cycles",
            "bcast-msgs",
            "dir-msgs",
        ],
    );
    for spec in c.specs() {
        let bcast = c.design_result(&spec, Design::CarveHwc);
        let mut sim = SimConfig::with_cfg(Design::CarveHwc, c.base_cfg());
        sim.directory_coherence = true;
        let dir = c.result(&spec, &sim);
        t.push(vec![
            spec.name.to_string(),
            bcast.cycles.to_string(),
            dir.cycles.to_string(),
            (bcast.broadcasts * 3).to_string(),
            dir.directory_invalidates.to_string(),
        ]);
    }
    t
}

/// Footnote 2: letting the RDC cache system-memory data as well, relevant
/// once cold pages spill to the CPU (Table V(b) scenarios).
fn sysmem_rdc_ablation(c: &mut Campaign) -> Table {
    let mut t = Table::new(
        "ablation_sysmem_rdc",
        "Ablation: RDC caching of system memory under 6.25% UM spill (CARVE-HWC)",
        &["workload", "no-sysmem-rdc", "sysmem-rdc", "speedup"],
    );
    for name in ["MCB", "XSBench", "stream-triad", "AMG"] {
        let spec = c
            .specs()
            .into_iter()
            .find(|s| s.name == name)
            .expect("known workload");
        let mut base = SimConfig::with_cfg(Design::CarveHwc, c.base_cfg());
        base.spill_fraction = 0.0625;
        let off = c.result(&spec, &base);
        let mut on_cfg = base.clone();
        on_cfg.rdc_caches_sysmem = true;
        let on = c.result(&spec, &on_cfg);
        t.push(vec![
            name.to_string(),
            off.cycles.to_string(),
            on.cycles.to_string(),
            format!("{:.3}", off.cycles as f64 / on.cycles as f64),
        ]);
    }
    t
}

/// Paper Section IV-B: "a write-through RDC performs nearly as well
/// (within 1%) as a write-back RDC".
fn write_policy_ablation(c: &mut Campaign) -> Table {
    let mut t = Table::new(
        "ablation_write_policy",
        "Ablation: RDC write-through vs write-back (CARVE-HWC cycles)",
        &["workload", "write-through", "write-back", "WT/WB"],
    );
    let mut ratios = Vec::new();
    for spec in c.specs() {
        let wt = c.design_result(&spec, Design::CarveHwc);
        let mut sim = SimConfig::with_cfg(Design::CarveHwc, c.base_cfg());
        sim.rdc_write_policy = WritePolicy::WriteBack;
        let wb = c.result(&spec, &sim);
        let ratio = wb.cycles as f64 / wt.cycles as f64;
        ratios.push(ratio);
        t.push(vec![
            spec.name.to_string(),
            wt.cycles.to_string(),
            wb.cycles.to_string(),
            format!("{ratio:.3}"),
        ]);
    }
    t.push(vec![
        "geomean".into(),
        String::new(),
        String::new(),
        format!("{:.3}", geomean(ratios.iter().copied())),
    ]);
    t
}

/// Figure 12's point: without the IMST filter, GPU-VI broadcasts on every
/// write and the links carry pure coherence noise.
fn imst_ablation(c: &mut Campaign) -> Table {
    let mut t = Table::new(
        "ablation_imst",
        "Ablation: IMST filtering vs broadcast-always GPU-VI (CARVE-HWC)",
        &[
            "workload",
            "imst-cycles",
            "bcast-cycles",
            "imst-invalidates",
            "bcast-invalidates",
        ],
    );
    for spec in c.specs() {
        let filtered = c.design_result(&spec, Design::CarveHwc);
        let mut sim = SimConfig::with_cfg(Design::CarveHwc, c.base_cfg());
        sim.gpu_vi_broadcast_always = true;
        let raw = c.result(&spec, &sim);
        t.push(vec![
            spec.name.to_string(),
            filtered.cycles.to_string(),
            raw.cycles.to_string(),
            filtered.rdc.invalidations.to_string(),
            raw.rdc.invalidations.to_string(),
        ]);
    }
    t
}

/// Section IV-A: "low-overhead cache hit-predictors can mitigate these
/// performance outliers" — exercised on the workloads CARVE hurts.
fn predictor_ablation(c: &mut Campaign) -> Table {
    let mut t = Table::new(
        "ablation_predictor",
        "Ablation: RDC hit predictor (CARVE-HWC cycles)",
        &["workload", "no-predictor", "predictor", "speedup"],
    );
    for name in ["RandAccess", "XSBench", "bfs-road", "Lulesh"] {
        let spec = c
            .specs()
            .into_iter()
            .find(|s| s.name == name)
            .expect("known workload");
        let base = c.design_result(&spec, Design::CarveHwc);
        let mut sim = SimConfig::with_cfg(Design::CarveHwc, c.base_cfg());
        sim.hit_predictor = true;
        let pred = c.result(&spec, &sim);
        t.push(vec![
            name.to_string(),
            base.cycles.to_string(),
            pred.cycles.to_string(),
            format!("{:.3}", base.cycles as f64 / pred.cycles as f64),
        ]);
    }
    t
}

/// How much of the scaled runs is kernel-launch serial overhead.
fn launch_overhead_ablation(c: &mut Campaign) -> Table {
    let mut t = Table::new(
        "ablation_launch",
        "Ablation: kernel-launch overhead (NUMA-GPU cycles, Lulesh)",
        &["launch-cycles", "total-cycles", "overhead-share"],
    );
    let spec = c
        .specs()
        .into_iter()
        .find(|s| s.name == "Lulesh")
        .expect("known workload");
    for launch in [0u64, 400, 2000, 8000] {
        let mut sim = SimConfig::with_cfg(Design::NumaGpu, c.base_cfg());
        sim.kernel_launch_cycles = launch;
        // Bypass the cache: launch cycles are not part of the cache key,
        // so run directly.
        let r = carve_system::run(&spec, &sim);
        let serial = launch * spec.shape.kernels as u64;
        t.push(vec![
            launch.to_string(),
            r.cycles.to_string(),
            format!("{:.1}%", 100.0 * serial as f64 / r.cycles as f64),
        ]);
    }
    t
}
