//! Regenerates the paper's fig02.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::with_journal("fig02");
    figures::fig02(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
}
