//! Regenerates the paper's fig02.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::with_journal("fig02");
    c.enable_timeline_from_args();
    c.enable_profile_from_args();
    figures::fig02(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
    c.report_timeline("fig02");
    c.report_profile("fig02");
}
