//! Regenerates the paper's fig08.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::with_journal("fig08");
    c.enable_timeline_from_args();
    c.enable_profile_from_args();
    figures::fig08(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
    c.report_timeline("fig08");
    c.report_profile("fig08");
}
