//! Regenerates the paper's fig08.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::new();
    figures::fig08(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
}
