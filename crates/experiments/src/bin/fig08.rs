//! Regenerates the paper's fig08.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::with_journal("fig08");
    figures::fig08(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
}
