//! Regenerates the paper's fig13.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::with_journal("fig13");
    figures::fig13(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
}
