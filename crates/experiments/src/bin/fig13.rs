//! Regenerates the paper's fig13.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::with_journal("fig13");
    c.enable_timeline_from_args();
    c.enable_profile_from_args();
    figures::fig13(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
    c.report_timeline("fig13");
    c.report_profile("fig13");
}
