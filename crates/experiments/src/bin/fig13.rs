//! Regenerates the paper's fig13.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::new();
    figures::fig13(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
}
