//! Regenerates the paper's table5.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::with_journal("table5");
    figures::table5(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
}
