//! Regenerates the paper's table5.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::with_journal("table5");
    c.enable_timeline_from_args();
    c.enable_profile_from_args();
    figures::table5(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
    c.report_timeline("table5");
    c.report_profile("table5");
}
