//! Regenerates the paper's fig14.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::with_journal("fig14");
    figures::fig14(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
}
