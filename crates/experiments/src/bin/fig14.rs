//! Regenerates the paper's fig14.
use experiments::{figures, Campaign};

fn main() {
    let mut c = Campaign::with_journal("fig14");
    c.enable_timeline_from_args();
    c.enable_profile_from_args();
    figures::fig14(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
    c.report_timeline("fig14");
    c.report_profile("fig14");
}
