//! Node-count scalability study (the paper's Section V-E), on the routed
//! interconnect.
//!
//! "NUMA-GPU problems exacerbate as the number of nodes in a multi-GPU
//! system increase. In such situations, CARVE can scale to arbitrary node
//! counts... increasing node counts require an efficient hardware
//! coherence mechanism \[and\] a directory-based hardware coherence
//! mechanism may be more efficient."
//!
//! This campaign sweeps the real machine-size grid the routed NoC
//! unlocked: 4/8/16/32/64 GPUs × fabric topology (all-to-all crossbar
//! wiring, single switch, ring, hierarchical pods) × {RDC sizing, IMST
//! filtering vs sharer directory}. Like every other binary it is
//! journaled and resumable (`scaling.journal`) and honours `--timeline`.

use carve_system::{Design, ScaledConfig, SimConfig, TopologySpec};
use carve_trace::WorkloadSpec;
use experiments::{Campaign, Table};
use sim_core::geomean;

/// The GPU-count axis. 4 is the paper's machine; 64 is the routed
/// fabric's ceiling ([`carve_noc::MAX_GPUS`]).
const GPU_COUNTS: [usize; 5] = [4, 8, 16, 32, 64];

/// Representative workload subset for the full grid (the per-workload
/// figures keep using the whole suite at 4 GPUs). Mixes latency- and
/// bandwidth-bound kernels with the RW-sharing coherence stressors.
const SCALING_WORKLOADS: [&str; 6] = ["CoMD", "Lulesh", "HPGMG", "SSSP", "XSBench", "MCB"];

/// RW-sharing workloads whose invalidate traffic separates broadcast
/// GPU-VI from the sharer directory.
const COHERENCE_WORKLOADS: [&str; 3] = ["SSSP", "HPGMG", "Lulesh"];

fn cfg_with(base: &ScaledConfig, gpus: usize, topology: TopologySpec) -> ScaledConfig {
    let mut cfg = base.clone();
    cfg.num_gpus = gpus;
    cfg.topology = topology;
    cfg
}

/// Fabrics swept at a given machine size. Hierarchical pods only make
/// sense once there is more than one pod's worth of GPUs.
fn topologies(gpus: usize) -> Vec<TopologySpec> {
    let mut t = vec![
        TopologySpec::AllToAll,
        TopologySpec::Switch,
        TopologySpec::Ring,
    ];
    if gpus >= 8 {
        t.push(TopologySpec::Hierarchical { pod_size: 4 });
    }
    t
}

fn spec_by_name(c: &mut Campaign, name: &str) -> WorkloadSpec {
    c.specs()
        .into_iter()
        .find(|s| s.name == name)
        .expect("known workload")
}

/// The hierarchical fabric for a machine size, falling back to
/// all-to-all below one pod.
fn preferred_topology(gpus: usize) -> TopologySpec {
    if gpus >= 8 {
        TopologySpec::Hierarchical { pod_size: 4 }
    } else {
        TopologySpec::AllToAll
    }
}

/// Fans the whole grid across worker threads before the tables slice
/// the warm cache.
fn prefetch(c: &mut Campaign) {
    let base = c.base_cfg();
    let mut points: Vec<(WorkloadSpec, SimConfig)> = Vec::new();
    for gpus in GPU_COUNTS {
        // Single-GPU baselines are topology-independent; pin them to the
        // default fabric so each machine size pays for exactly one.
        let baseline_cfg = cfg_with(&base, gpus, TopologySpec::AllToAll);
        for name in SCALING_WORKLOADS {
            let spec = spec_by_name(c, name);
            points.push((
                spec.clone(),
                SimConfig::with_cfg(Design::SingleGpu, baseline_cfg.clone()),
            ));
            for topology in topologies(gpus) {
                let cfg = cfg_with(&base, gpus, topology);
                for design in [Design::NumaGpu, Design::CarveHwc] {
                    points.push((spec.clone(), SimConfig::with_cfg(design, cfg.clone())));
                }
            }
            // RDC sizing points ride on the preferred fabric.
            let cfg = cfg_with(&base, gpus, preferred_topology(gpus));
            for factor in [1u64, 2, 4] {
                let mut sim = SimConfig::with_cfg(Design::CarveHwc, cfg.clone());
                sim.rdc_bytes = Some(cfg.rdc_bytes_per_gpu / factor);
                points.push((spec.clone(), sim));
            }
        }
        // IMST-vs-directory points on the preferred fabric.
        let cfg = cfg_with(&base, gpus, preferred_topology(gpus));
        for name in COHERENCE_WORKLOADS {
            let spec = spec_by_name(c, name);
            let mut dir_sim = SimConfig::with_cfg(Design::CarveHwc, cfg.clone());
            dir_sim.directory_coherence = true;
            points.push((spec.clone(), dir_sim));
            let mut bcast_sim = SimConfig::with_cfg(Design::CarveHwc, cfg.clone());
            bcast_sim.gpu_vi_broadcast_always = true;
            points.push((spec, bcast_sim));
        }
    }
    c.run_parallel(&points);
}

fn main() {
    let mut c = Campaign::with_journal("scaling");
    c.enable_timeline_from_args();
    c.enable_profile_from_args();
    prefetch(&mut c);
    speedup_scaling(&mut c).emit();
    rdc_sizing(&mut c).emit();
    coherence_scaling(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
    c.report_timeline("scaling");
    c.report_profile("scaling");
}

/// Geomean CARVE-HWC speedup over one GPU, per machine size × fabric.
fn speedup_scaling(c: &mut Campaign) -> Table {
    let base = c.base_cfg();
    let mut t = Table::new(
        "scaling_speedup",
        "Scaling: geomean speedup over 1 GPU vs node count and fabric (NUMA-GPU / CARVE-HWC)",
        &["GPUs", "fabric", "NUMA-GPU", "CARVE-HWC"],
    );
    for gpus in GPU_COUNTS {
        let baseline_cfg = cfg_with(&base, gpus, TopologySpec::AllToAll);
        for topology in topologies(gpus) {
            let cfg = cfg_with(&base, gpus, topology);
            let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 2];
            for name in SCALING_WORKLOADS {
                let spec = spec_by_name(c, name);
                let single = c.result(
                    &spec,
                    &SimConfig::with_cfg(Design::SingleGpu, baseline_cfg.clone()),
                );
                for (i, design) in [Design::NumaGpu, Design::CarveHwc].into_iter().enumerate() {
                    let sim = SimConfig::with_cfg(design, cfg.clone());
                    cols[i].push(c.result(&spec, &sim).speedup_over(&single));
                }
            }
            let mut row = vec![gpus.to_string(), topology.label()];
            row.extend(
                cols.iter()
                    .map(|col| format!("{:.2}x", geomean(col.iter().copied()))),
            );
            t.push(row);
        }
    }
    t
}

/// RDC capacity sensitivity across machine sizes: as more GPUs carve,
/// the per-GPU carve a workload needs shrinks.
fn rdc_sizing(c: &mut Campaign) -> Table {
    let base = c.base_cfg();
    let mut t = Table::new(
        "scaling_rdc_sizing",
        "Scaling: geomean CARVE-HWC speedup over 1 GPU vs RDC carve size (preferred fabric)",
        &["GPUs", "fabric", "full RDC", "1/2 RDC", "1/4 RDC"],
    );
    for gpus in GPU_COUNTS {
        let baseline_cfg = cfg_with(&base, gpus, TopologySpec::AllToAll);
        let topology = preferred_topology(gpus);
        let cfg = cfg_with(&base, gpus, topology);
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
        for name in SCALING_WORKLOADS {
            let spec = spec_by_name(c, name);
            let single = c.result(
                &spec,
                &SimConfig::with_cfg(Design::SingleGpu, baseline_cfg.clone()),
            );
            for (i, factor) in [1u64, 2, 4].into_iter().enumerate() {
                let mut sim = SimConfig::with_cfg(Design::CarveHwc, cfg.clone());
                sim.rdc_bytes = Some(cfg.rdc_bytes_per_gpu / factor);
                cols[i].push(c.result(&spec, &sim).speedup_over(&single));
            }
        }
        let mut row = vec![gpus.to_string(), topology.label()];
        row.extend(
            cols.iter()
                .map(|col| format!("{:.2}x", geomean(col.iter().copied()))),
        );
        t.push(row);
    }
    t
}

/// Invalidate traffic: IMST-filtered broadcast vs broadcast-always vs
/// sharer directory, across machine sizes.
fn coherence_scaling(c: &mut Campaign) -> Table {
    let base = c.base_cfg();
    let mut t = Table::new(
        "scaling_coherence",
        "Scaling: invalidate messages, broadcast GPU-VI (IMST on/off) vs sharer directory (CARVE-HWC, preferred fabric)",
        &["GPUs", "workload", "imst msgs", "no-imst msgs", "directory msgs", "dir reduction"],
    );
    for gpus in GPU_COUNTS {
        let cfg = cfg_with(&base, gpus, preferred_topology(gpus));
        for name in COHERENCE_WORKLOADS {
            let spec = spec_by_name(c, name);
            let imst_sim = SimConfig::with_cfg(Design::CarveHwc, cfg.clone());
            // Broadcast decisions fan out to (gpus - 1) messages each.
            let fanout = gpus as u64 - 1;
            let imst_msgs = c.result(&spec, &imst_sim).broadcasts * fanout;
            let mut raw_sim = SimConfig::with_cfg(Design::CarveHwc, cfg.clone());
            raw_sim.gpu_vi_broadcast_always = true;
            let raw_msgs = c.result(&spec, &raw_sim).broadcasts * fanout;
            let mut dir_sim = SimConfig::with_cfg(Design::CarveHwc, cfg.clone());
            dir_sim.directory_coherence = true;
            let dir_msgs = c.result(&spec, &dir_sim).directory_invalidates;
            t.push(vec![
                gpus.to_string(),
                name.to_string(),
                imst_msgs.to_string(),
                raw_msgs.to_string(),
                dir_msgs.to_string(),
                if imst_msgs > 0 {
                    format!("{:.1}x", imst_msgs as f64 / dir_msgs.max(1) as f64)
                } else {
                    "-".into()
                },
            ]);
        }
    }
    t
}
