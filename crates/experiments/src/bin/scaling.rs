//! Node-count scalability study (the paper's Section V-E).
//!
//! "NUMA-GPU problems exacerbate as the number of nodes in a multi-GPU
//! system increase. In such situations, CARVE can scale to arbitrary node
//! counts... increasing node counts require an efficient hardware
//! coherence mechanism \[and\] a directory-based hardware coherence
//! mechanism may be more efficient."
//!
//! This experiment sweeps 2/4/8 GPUs and reports (a) geomean speedup over
//! one GPU for NUMA-GPU, CARVE-HWC and ideal, and (b) the invalidate
//! message count of broadcast GPU-VI vs a sharer directory.

use carve_system::{Design, ScaledConfig, SimConfig};
use carve_trace::WorkloadSpec;
use experiments::{Campaign, Table};
use sim_core::geomean;

fn cfg_with_gpus(base: &ScaledConfig, gpus: usize) -> ScaledConfig {
    let mut cfg = base.clone();
    cfg.num_gpus = gpus;
    cfg
}

/// Fans the whole node-count sweep across worker threads before the
/// tables slice the warm cache.
fn prefetch(c: &mut Campaign) {
    let base = c.base_cfg();
    let mut points: Vec<(WorkloadSpec, SimConfig)> = Vec::new();
    for gpus in [2usize, 4, 8] {
        let cfg = cfg_with_gpus(&base, gpus);
        for spec in c.specs() {
            for design in [
                Design::SingleGpu,
                Design::NumaGpu,
                Design::CarveHwc,
                Design::Ideal,
            ] {
                points.push((spec.clone(), SimConfig::with_cfg(design, cfg.clone())));
            }
        }
        for name in ["SSSP", "HPGMG", "Lulesh"] {
            let spec = c
                .specs()
                .into_iter()
                .find(|s| s.name == name)
                .expect("known workload");
            let mut dir_sim = SimConfig::with_cfg(Design::CarveHwc, cfg.clone());
            dir_sim.directory_coherence = true;
            points.push((spec, dir_sim));
        }
    }
    c.run_parallel(&points);
}

fn main() {
    let mut c = Campaign::with_journal("scaling");
    c.enable_timeline_from_args();
    prefetch(&mut c);
    speedup_scaling(&mut c).emit();
    coherence_scaling(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
    c.report_timeline("scaling");
}

fn speedup_scaling(c: &mut Campaign) -> Table {
    let base = c.base_cfg();
    let mut t = Table::new(
        "scaling_speedup",
        "Scaling: geomean speedup over 1 GPU vs node count",
        &["GPUs", "NUMA-GPU", "CARVE-HWC", "Ideal"],
    );
    for gpus in [2usize, 4, 8] {
        let cfg = cfg_with_gpus(&base, gpus);
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
        for spec in c.specs() {
            let single = c.result(&spec, &SimConfig::with_cfg(Design::SingleGpu, cfg.clone()));
            for (i, design) in [Design::NumaGpu, Design::CarveHwc, Design::Ideal]
                .into_iter()
                .enumerate()
            {
                let sim = SimConfig::with_cfg(design, cfg.clone());
                cols[i].push(c.result(&spec, &sim).speedup_over(&single));
            }
        }
        let mut row = vec![gpus.to_string()];
        row.extend(
            cols.iter()
                .map(|col| format!("{:.2}x", geomean(col.iter().copied()))),
        );
        t.push(row);
    }
    t
}

fn coherence_scaling(c: &mut Campaign) -> Table {
    let base = c.base_cfg();
    let mut t = Table::new(
        "scaling_coherence",
        "Scaling: invalidate messages, broadcast GPU-VI vs sharer directory (CARVE-HWC, RW-sharing workloads)",
        &["GPUs", "workload", "broadcast msgs", "directory msgs", "reduction"],
    );
    for gpus in [2usize, 4, 8] {
        let cfg = cfg_with_gpus(&base, gpus);
        for name in ["SSSP", "HPGMG", "Lulesh"] {
            let spec = c
                .specs()
                .into_iter()
                .find(|s| s.name == name)
                .expect("known workload");
            let bcast_sim = SimConfig::with_cfg(Design::CarveHwc, cfg.clone());
            let bcast = c.result(&spec, &bcast_sim);
            // Broadcast decisions fan out to (gpus - 1) messages each.
            let bcast_msgs = bcast.broadcasts * (gpus as u64 - 1);
            let mut dir_sim = SimConfig::with_cfg(Design::CarveHwc, cfg.clone());
            dir_sim.directory_coherence = true;
            let dir = c.result(&spec, &dir_sim);
            let dir_msgs = dir.directory_invalidates;
            t.push(vec![
                gpus.to_string(),
                name.to_string(),
                bcast_msgs.to_string(),
                dir_msgs.to_string(),
                if bcast_msgs > 0 {
                    format!("{:.1}x", bcast_msgs as f64 / dir_msgs.max(1) as f64)
                } else {
                    "-".into()
                },
            ]);
        }
    }
    t
}
