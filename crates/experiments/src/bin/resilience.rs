//! Resilience campaign: graceful degradation under swept fault intensity.
//!
//! A dynamic analogue of the paper's bandwidth-sensitivity study
//! (Figure 14): where fig14 derates link bandwidth *statically* for the
//! whole run, this campaign injects seeded, deterministic fault schedules
//! ([`FaultPlan::random`], graceful kinds only — degraded windows, link
//! outages with rerouting, transient DRAM faults, bounded freezes) at
//! increasing intensity and measures the slowdown each design absorbs.
//! The comparison NUMA-GPU vs CARVE-HWC asks the paper's question under
//! duress: does caching remote data also buy *fault* tolerance? (It
//! should — every link fault taxes remote traffic, and CARVE's whole
//! point is to have less of it.)
//!
//! Points whose random outage pattern happens to sever the fabric fail
//! cleanly with `FabricPartitioned`; they are reported as `partitioned`
//! cells rather than aborting the sweep. Like every campaign binary this
//! one is journaled and resumable (`resilience.journal`); faulted points
//! carry their plan in the journal key, so resumed tables are
//! byte-identical.

use carve_system::{Design, FaultPlan, SimConfig};
use carve_trace::WorkloadSpec;
use experiments::{Campaign, Table};
use sim_core::geomean;
use sim_core::rng::Stream;

/// Workload subset: the coherence stressors plus a bandwidth-bound
/// streamer, so both remote-latency and remote-bandwidth sensitivity
/// show up in the sweep.
const RESILIENCE_WORKLOADS: [&str; 4] = ["CoMD", "Lulesh", "XSBench", "SSSP"];

/// Designs under duress: the NUMA baseline vs hardware-coherent CARVE.
const DESIGNS: [Design; 2] = [Design::NumaGpu, Design::CarveHwc];

/// The fault-intensity axis (fraction of [`FaultPlan::random`]'s maximum
/// event budget).
const INTENSITIES: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// Root seed of every generated plan; change it and every faulted point
/// re-runs under a fresh draw.
const PLAN_SEED: u64 = 0xCA51;

/// Fault-schedule horizon: early enough that every event lands while
/// even quick-mode runs are still executing.
const PLAN_HORIZON: u64 = 20_000;

/// The deterministic fault schedule of sweep cell (workload, level).
/// Graceful kinds only: packet loss is the fuzzer's oracle bait, not a
/// degradation mode a design can absorb.
fn plan_for(workload_idx: usize, level: usize) -> FaultPlan {
    let mut rng = Stream::from_parts(&[PLAN_SEED, workload_idx as u64, level as u64]);
    FaultPlan::random(&mut rng, PLAN_HORIZON, INTENSITIES[level], false)
}

fn spec_by_name(c: &mut Campaign, name: &str) -> WorkloadSpec {
    c.specs()
        .into_iter()
        .find(|s| s.name == name)
        .expect("known workload")
}

/// Every sweep point: per workload, the fault-free baseline of each
/// design plus one faulted run per intensity level. Both designs in a
/// cell share the same plan, so the comparison is like for like.
fn points(c: &mut Campaign) -> Vec<(WorkloadSpec, SimConfig)> {
    let mut pts = Vec::new();
    for (w, name) in RESILIENCE_WORKLOADS.iter().enumerate() {
        let spec = spec_by_name(c, name);
        for design in DESIGNS {
            pts.push((spec.clone(), SimConfig::new(design)));
            for level in 0..INTENSITIES.len() {
                let mut sim = SimConfig::new(design);
                sim.fault_plan = Some(plan_for(w, level));
                pts.push((spec.clone(), sim));
            }
        }
    }
    pts
}

fn main() {
    let mut c = Campaign::with_journal("resilience");
    c.enable_timeline_from_args();
    c.enable_profile_from_args();
    // Fan the grid out first; partitioned cells are legitimate outcomes
    // of the sweep, so the fault-tolerant entry point is the right one.
    let pts = points(&mut c);
    let _ = c.try_run_parallel(&pts);
    slowdown_table(&mut c).emit();
    summary_table(&mut c).emit();
    eprintln!("({} simulation runs)", c.cached_runs());
    for f in c.failures() {
        if !f.error.contains("partitioned") {
            eprintln!("warning: non-partition failure in sweep: {f}");
        }
    }
    c.report_timeline("resilience");
    c.report_profile("resilience");
}

/// Per-cell slowdown relative to the same design's fault-free run.
fn slowdown_table(c: &mut Campaign) -> Table {
    let mut header = vec!["workload".to_string(), "design".to_string()];
    for i in INTENSITIES {
        header.push(format!("x{i:.2}"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "resilience_slowdown",
        "Resilience: slowdown under seeded graceful fault plans vs fault intensity",
        &header_refs,
    );
    for (w, name) in RESILIENCE_WORKLOADS.iter().enumerate() {
        let spec = spec_by_name(c, name);
        for design in DESIGNS {
            let base = c.result(&spec, &SimConfig::new(design));
            let mut row = vec![name.to_string(), design.label().to_string()];
            for level in 0..INTENSITIES.len() {
                let mut sim = SimConfig::new(design);
                sim.fault_plan = Some(plan_for(w, level));
                row.push(match c.try_result(&spec, &sim) {
                    Ok(r) => format!("{:.3}x", r.cycles as f64 / base.cycles as f64),
                    Err(f) if f.error.contains("partitioned") => "partitioned".to_string(),
                    Err(_) => "failed".to_string(),
                });
            }
            t.push(row);
        }
    }
    t
}

/// Geomean slowdown per design per intensity over the cells that
/// completed — the headline "how much fault tolerance does CARVE buy"
/// number.
fn summary_table(c: &mut Campaign) -> Table {
    let mut t = Table::new(
        "resilience_summary",
        "Resilience: geomean slowdown over completed cells (survivors in parentheses)",
        &["design", "x0.25", "x0.50", "x0.75", "x1.00"],
    );
    for design in DESIGNS {
        let mut row = vec![design.label().to_string()];
        for level in 0..INTENSITIES.len() {
            let mut slowdowns = Vec::new();
            let mut total = 0usize;
            for (w, name) in RESILIENCE_WORKLOADS.iter().enumerate() {
                let spec = spec_by_name(c, name);
                let base = c.result(&spec, &SimConfig::new(design));
                let mut sim = SimConfig::new(design);
                sim.fault_plan = Some(plan_for(w, level));
                total += 1;
                if let Ok(r) = c.try_result(&spec, &sim) {
                    slowdowns.push(r.cycles as f64 / base.cycles as f64);
                }
            }
            row.push(if slowdowns.is_empty() {
                format!("n/a (0/{total})")
            } else {
                format!(
                    "{:.3}x ({}/{total})",
                    geomean(slowdowns.iter().copied()),
                    slowdowns.len()
                )
            });
        }
        t.push(row);
    }
    t
}
