//! Runs the entire experiment campaign, sharing simulation results across
//! figures, and writes every table to `results/*.tsv`.
//!
//! The full (workload × design) matrix — including the figure-14 bandwidth
//! sweep and the Table V RDC-size/spill sweeps — is fanned across worker
//! threads up front via [`Campaign::run_parallel`]; the figure functions
//! then slice the warm cache. Pass `--bench-json` to also write
//! `results/BENCH_engine.json` with per-point wall-clock timings, and
//! `--timeline` to journal interval telemetry for every freshly simulated
//! point to `results/all-figures.timeline.csv`.

use std::path::Path;

use carve_system::{Design, SimConfig};
use carve_trace::WorkloadSpec;
use experiments::{figures, Campaign};

/// Every campaign point the figure functions will request, so the parallel
/// prefetch covers the whole matrix and the figures only read the cache.
fn prefetch_points(c: &Campaign) -> Vec<(WorkloadSpec, SimConfig)> {
    let base = c.base_cfg();
    let mut points = Vec::new();
    for spec in c.specs() {
        // Figures 2/8/9/11/13 and the Table V baseline: all designs at the
        // default machine.
        for design in Design::all() {
            points.push((spec.clone(), SimConfig::with_cfg(design, base.clone())));
        }
        // Figure 14: inter-GPU link bandwidth sweep (factor 1.0 is the
        // default machine, already covered above).
        for factor in [0.5, 2.0, 4.0] {
            for design in [
                Design::NumaGpu,
                Design::NumaGpuRepl,
                Design::CarveHwc,
                Design::Ideal,
            ] {
                let mut sim = SimConfig::with_cfg(design, base.clone());
                sim.cfg.link_bytes_per_cycle = base.link_bytes_per_cycle * factor;
                points.push((spec.clone(), sim));
            }
        }
        // Table V: RDC carve-out sizes (a) and matching spill fractions (b).
        for paper_gib_halves in [1u64, 2, 4, 8] {
            let paper_bytes = paper_gib_halves * (1 << 29);
            let rdc_bytes = paper_bytes / base.capacity_scale;
            let carve_frac = rdc_bytes as f64 / base.mem_bytes_per_gpu as f64;
            let mut sim = SimConfig::with_cfg(Design::CarveHwc, base.clone());
            sim.rdc_bytes = Some(rdc_bytes);
            points.push((spec.clone(), sim));
            let mut spill_sim = SimConfig::with_cfg(Design::NumaGpu, base.clone());
            spill_sim.spill_fraction = carve_frac;
            points.push((spec.clone(), spill_sim));
        }
    }
    points
}

fn main() {
    let bench_json = std::env::args().skip(1).any(|a| a == "--bench-json");
    let t0 = std::time::Instant::now();
    let mut c = Campaign::with_journal("all-figures");
    c.enable_timeline_from_args();
    c.enable_profile_from_args();
    if c.is_quick() {
        eprintln!("CARVE_QUICK set: running shrunken workloads");
    }
    let points = prefetch_points(&c);
    c.run_parallel(&points);
    eprintln!(
        "prefetched {} campaign points in {:.0}s",
        c.cached_runs(),
        t0.elapsed().as_secs_f64()
    );
    figures::table4().emit();
    figures::fig04(&mut c).emit();
    figures::fig05(&mut c).emit();
    figures::fig02(&mut c).emit();
    figures::fig08(&mut c).emit();
    figures::fig09(&mut c).emit();
    figures::fig11(&mut c).emit();
    figures::fig13(&mut c).emit();
    figures::table5(&mut c).emit();
    figures::fig14(&mut c).emit();
    if bench_json {
        let dir = std::env::var("CARVE_RESULTS_DIR").unwrap_or_else(|_| "results".into());
        let path = Path::new(&dir).join("BENCH_engine.json");
        c.write_bench_json(&path).expect("write BENCH_engine.json");
        eprintln!("wrote {}", path.display());
    }
    c.report_timeline("all-figures");
    c.report_profile("all-figures");
    eprintln!(
        "campaign complete: {} simulation runs in {:.0}s",
        c.cached_runs(),
        t0.elapsed().as_secs_f64()
    );
}
