//! Runs the entire experiment campaign, sharing simulation results across
//! figures, and writes every table to `results/*.tsv`.
use experiments::{figures, Campaign};

fn main() {
    let t0 = std::time::Instant::now();
    let mut c = Campaign::new();
    if c.is_quick() {
        eprintln!("CARVE_QUICK set: running shrunken workloads");
    }
    figures::table4().emit();
    figures::fig04(&mut c).emit();
    figures::fig05(&mut c).emit();
    figures::fig02(&mut c).emit();
    figures::fig08(&mut c).emit();
    figures::fig09(&mut c).emit();
    figures::fig11(&mut c).emit();
    figures::fig13(&mut c).emit();
    figures::table5(&mut c).emit();
    figures::fig14(&mut c).emit();
    eprintln!(
        "campaign complete: {} simulation runs in {:.0}s",
        c.cached_runs(),
        t0.elapsed().as_secs_f64()
    );
}
