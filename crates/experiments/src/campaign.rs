//! Shared simulation cache for the experiment campaign, with an on-disk
//! checkpoint journal so a killed campaign resumes where it stopped.
//!
//! # Journal format
//!
//! One TSV file per campaign (`results/<name>.journal` via
//! [`Campaign::set_journal`]). The first line is a fingerprint header
//! (`#carve-journal v1 quick=<bool>`); every later line is a record:
//!
//! * `ok\t<config-key>\t<SimResult journal line>` — a completed point
//!   ([`SimResult::encode_journal_line`] round-trips byte-exactly, so
//!   tables rebuilt from a journal are identical to tables from live
//!   runs).
//! * `fail\t<workload>\t<config-key>\t<attempts>\t<escaped error>` — a
//!   point that panicked or returned a `SimError` after every retry.
//!
//! Records stream to the file as each point completes (workers append
//! under a mutex and flush), so killing the process mid-grid loses at
//! most in-flight points. On [`Campaign::set_journal`] the file is
//! parsed truncation-tolerantly — a partially written trailing line is
//! dropped with a warning — and rewritten clean before appending resumes.

use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use carve_system::{
    profile_workload, try_run_with_profile, Design, ProfileReport, ScaledConfig, SharingProfile,
    SimConfig, SimError, SimResult, Timeline,
};
use carve_trace::{workloads, WorkloadSpec};

use crate::par;

/// Sampling interval used by [`Campaign::enable_timeline`] when
/// `CARVE_TELEMETRY_INTERVAL` is unset.
const DEFAULT_TIMELINE_INTERVAL: u64 = 5_000;

/// Wall-clock record for one simulated campaign point.
#[derive(Debug, Clone)]
pub struct PointTiming {
    /// Workload name (Table II).
    pub workload: String,
    /// Derived configuration key (design label + knobs).
    pub config: String,
    /// Simulation wall-clock in milliseconds.
    pub millis: f64,
    /// Simulated cycles of the run.
    pub cycles: u64,
    /// Whether the point ran inside a parallel fan-out.
    pub parallel: bool,
}

/// One campaign point that did not produce a result: every attempt either
/// panicked or returned a [`SimError`]. Failures are memoized (and
/// journaled) like results, so a resumed campaign reproduces the same
/// failed cells without re-running them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointFailure {
    /// Workload name of the failed point.
    pub workload: String,
    /// Derived configuration key of the failed point.
    pub config: String,
    /// How many attempts were made (1 + retries).
    pub attempts: usize,
    /// The last attempt's error: a `SimError` rendering or a panic
    /// message prefixed with `panic: `.
    pub error: String,
}

impl std::fmt::Display for PointFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} under {} failed after {} attempt(s): {}",
            self.workload, self.config, self.attempts, self.error
        )
    }
}

/// Streaming append handle to the campaign's checkpoint file.
struct Journal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl Journal {
    /// Appends one record and flushes so a kill right after loses nothing.
    /// IO errors degrade to a stderr warning — checkpointing is advisory
    /// and must never take down a healthy campaign.
    fn append(&self, line: &str) {
        let mut f = self.file.lock().unwrap_or_else(|e| e.into_inner());
        if let Err(e) = writeln!(f, "{line}").and_then(|()| f.flush()) {
            eprintln!(
                "warning: could not append to journal {}: {e}",
                self.path.display()
            );
        }
    }
}

/// A record parsed back out of a journal file (`SimResult` boxed: it
/// dwarfs the failure variant).
enum LoadedRecord {
    Done(String, Box<SimResult>),
    Failed(PointFailure),
}

fn ok_line(config: &str, r: &SimResult) -> String {
    format!("ok\t{config}\t{}", r.encode_journal_line())
}

fn fail_line(f: &PointFailure) -> String {
    format!(
        "fail\t{}\t{}\t{}\t{}",
        f.workload,
        f.config,
        f.attempts,
        escape_field(&f.error)
    )
}

fn parse_record(line: &str) -> Option<LoadedRecord> {
    if let Some(rest) = line.strip_prefix("ok\t") {
        let (config, payload) = rest.split_once('\t')?;
        let r = SimResult::decode_journal_line(payload)?;
        Some(LoadedRecord::Done(config.to_string(), Box::new(r)))
    } else if let Some(rest) = line.strip_prefix("fail\t") {
        let mut f = rest.splitn(4, '\t');
        let workload = f.next()?.to_string();
        let config = f.next()?.to_string();
        let attempts = f.next()?.parse().ok()?;
        let error = unescape_field(f.next()?);
        Some(LoadedRecord::Failed(PointFailure {
            workload,
            config,
            attempts,
            error,
        }))
    } else {
        None
    }
}

/// Escapes an error message into a single tab-free journal field
/// (watchdog diagnostics are multi-line).
fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Runs simulations on demand and memoizes them, so figures sharing the
/// same (workload × configuration) points do not re-simulate.
pub struct Campaign {
    pub(crate) specs: Vec<WorkloadSpec>,
    /// Sharing profiles, keyed by (workload, GPU count): the same
    /// workload splits differently across 4 and 64 GPUs, so a scaling
    /// sweep must not reuse the 4-GPU profile at other machine sizes.
    profiles: HashMap<(String, usize), Arc<SharingProfile>>,
    cache: HashMap<(String, String), SimResult>,
    failed: HashMap<(String, String), PointFailure>,
    timings: Vec<PointTiming>,
    base_cfg: ScaledConfig,
    quick: bool,
    retries: usize,
    journal: Option<Journal>,
    /// When set, every subsequently *simulated* point samples interval
    /// telemetry at this many cycles. Deliberately absent from
    /// [`key_of`]: sampling is read-only and cannot change a result, so
    /// it must not split the cache or the journal.
    telemetry_interval: Option<u64>,
    /// Timelines collected this process, in point-commit order (which is
    /// the deduplicated input order of the grids — deterministic across
    /// `CARVE_THREADS`). Journal-resumed and cache-hit points contribute
    /// nothing here: only points actually simulated this run carry a
    /// timeline.
    timelines: Vec<(String, String, Timeline)>,
    /// When true, every subsequently *simulated* point runs with the
    /// cycle-accounting profiler on. Absent from [`key_of`] for the same
    /// reason as the telemetry interval: profiling is read-only and
    /// cannot change a result.
    cycle_profile: bool,
    /// Stall breakdowns collected this process, in point-commit order
    /// (same determinism contract as `timelines`).
    stall_profiles: Vec<(String, String, ProfileReport)>,
}

/// The memoization key of a campaign point: every knob that changes the
/// simulated machine must appear here, or distinct configurations would
/// alias in the cache (and in the journal, which uses the same key).
/// The topology component is appended only for non-default fabrics so
/// journals written before the routed interconnect landed keep resuming.
fn key_of(spec: &WorkloadSpec, sim: &SimConfig) -> (String, String) {
    let mut config = format!(
        "{}|rdc={}|spill={:.4}|bw={:.3}|pred={}|wp={:?}|bcast={}|dir={}|sysrdc={}|gpus={}",
        sim.design.label(),
        sim.rdc_capacity(),
        sim.spill_fraction,
        sim.cfg.link_bytes_per_cycle,
        sim.hit_predictor,
        sim.rdc_write_policy,
        sim.gpu_vi_broadcast_always,
        sim.directory_coherence,
        sim.rdc_caches_sysmem,
        sim.cfg.num_gpus,
    );
    if sim.cfg.topology != sim_core::TopologySpec::AllToAll {
        config.push_str(&format!("|topo={}", sim.cfg.topology.label()));
    }
    // Fault plans change the simulated run, so a faulted point must not
    // alias its fault-free twin. Appended only when armed, so journals
    // written before fault injection existed keep resuming.
    if let Some(plan) = &sim.fault_plan {
        if !plan.is_empty() {
            config.push_str(&format!("|faults={}", plan.encode()));
        }
    }
    (spec.name.to_string(), config)
}

/// Stable 64-bit FNV-1a of a point key, seeding retry-backoff jitter:
/// the same point backs off identically across runs, independent of any
/// hasher or thread-schedule state.
fn jitter_seed(key: &(String, String)) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.0.bytes().chain([0]).chain(key.1.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// One run attempt cycle: `try_run_with_profile` under `catch_unwind`,
/// retried up to `retries` more times with deterministic exponential
/// backoff ([`par::backoff_delay`] seeded by the point key). Returns the
/// result and its wall-clock, or (attempts made, last error).
///
/// Failures are classified before retrying: panics and *transient*
/// `SimError`s (watchdog stalls, checkpoint IO) are worth another
/// attempt; permanent ones (invalid configuration, sanitizer violations,
/// cycle-cap exhaustion) are deterministic properties of the point and
/// fail fast — re-running them would burn a full simulation per retry to
/// reproduce the same error.
fn attempt_point(
    spec: &WorkloadSpec,
    sim: &SimConfig,
    profile: &SharingProfile,
    retries: usize,
    seed: u64,
) -> Result<(SimResult, f64), (usize, String)> {
    let mut last = String::new();
    let mut attempts = 0;
    for attempt in 0..=retries {
        attempts += 1;
        if attempt > 0 {
            std::thread::sleep(par::backoff_delay(attempt - 1, seed));
        }
        let started = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| {
            try_run_with_profile(spec, sim, Some(profile))
        })) {
            Ok(Ok(r)) => return Ok((r, started.elapsed().as_secs_f64() * 1e3)),
            Ok(Err(e)) => {
                last = e.to_string();
                if !e.is_transient() {
                    return Err((attempts, last));
                }
            }
            Err(payload) => last = format!("panic: {}", par::panic_message(payload.as_ref())),
        }
    }
    Err((attempts, last))
}

impl Default for Campaign {
    fn default() -> Campaign {
        Campaign::new()
    }
}

impl Campaign {
    /// Creates a campaign over all 20 workloads; honours `CARVE_QUICK`
    /// and `CARVE_RETRIES`.
    pub fn new() -> Campaign {
        let quick = std::env::var_os("CARVE_QUICK").is_some();
        let mut specs = workloads::all();
        if quick {
            for spec in &mut specs {
                spec.shape.kernels = spec.shape.kernels.min(4);
                spec.shape.ctas = 32;
                spec.shape.instrs_per_warp = spec.shape.instrs_per_warp.min(120);
            }
        }
        Campaign {
            specs,
            profiles: HashMap::new(),
            cache: HashMap::new(),
            failed: HashMap::new(),
            timings: Vec::new(),
            base_cfg: ScaledConfig::default(),
            quick,
            retries: par::retries_from_env(),
            journal: None,
            telemetry_interval: None,
            timelines: Vec::new(),
            cycle_profile: false,
            stall_profiles: Vec::new(),
        }
    }

    /// [`Campaign::new`] with the checkpoint journal
    /// `<results_dir>/<name>.journal` attached, resuming any points
    /// already on disk. A journal that cannot be opened degrades to an
    /// in-memory campaign with a warning — checkpointing is advisory and
    /// must never block the science.
    pub fn with_journal(name: &str) -> Campaign {
        let mut c = Campaign::new();
        match c.set_journal(name) {
            Ok(0) => {}
            Ok(n) => eprintln!(
                "resumed {n} campaign point(s) from {}",
                c.journal_path().expect("journal attached").display()
            ),
            Err(e) => eprintln!("warning: running without checkpoint journal: {e}"),
        }
        c
    }

    /// Whether quick mode is active.
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// Overrides the bounded retry count (default: `CARVE_RETRIES`).
    pub fn set_retries(&mut self, retries: usize) {
        self.retries = retries;
    }

    /// Turns on interval telemetry for every point simulated from now on
    /// (interval from `CARVE_TELEMETRY_INTERVAL`, else 5000 cycles).
    /// Sampling is read-only, so results, journal lines, and tables are
    /// bit-identical to a run without it; only points simulated in this
    /// process carry a timeline (journal-resumed points do not).
    pub fn enable_timeline(&mut self) {
        self.telemetry_interval =
            Some(sim_core::telemetry::interval_from_env().unwrap_or(DEFAULT_TIMELINE_INTERVAL));
    }

    /// Wires the campaign binaries' `--timeline` CLI flag: enables
    /// timeline collection iff the flag is present, and reports whether
    /// it was.
    pub fn enable_timeline_from_args(&mut self) -> bool {
        let on = std::env::args().skip(1).any(|a| a == "--timeline");
        if on {
            self.enable_timeline();
        }
        on
    }

    /// Sampling interval of an enabled timeline.
    pub fn timeline_interval(&self) -> Option<u64> {
        self.telemetry_interval
    }

    /// Turns on the cycle-accounting profiler for every point simulated
    /// from now on. Profiling is read-only, so results, journal lines,
    /// and tables are bit-identical to a run without it; only points
    /// simulated in this process carry a breakdown (journal-resumed
    /// points do not).
    pub fn enable_profile(&mut self) {
        self.cycle_profile = true;
    }

    /// Wires the campaign binaries' `--profile` CLI flag: enables stall
    /// profiling iff the flag is present, and reports whether it was.
    pub fn enable_profile_from_args(&mut self) -> bool {
        let on = std::env::args().skip(1).any(|a| a == "--profile");
        if on {
            self.enable_profile();
        }
        on
    }

    /// The configuration a point actually runs with: the caller's `sim`
    /// plus this campaign's telemetry interval (unless the point pins
    /// its own). Never consulted by [`key_of`]. Borrows the caller's
    /// config unchanged in the common case — a clone happens only when
    /// the campaign has to impose its interval on the point.
    fn sim_for_attempt<'a>(&self, sim: &'a SimConfig) -> Cow<'a, SimConfig> {
        let impose_interval = sim.telemetry_interval.is_none() && self.telemetry_interval.is_some();
        let impose_profile = self.cycle_profile && !sim.cycle_profile;
        if !impose_interval && !impose_profile {
            return Cow::Borrowed(sim);
        }
        let mut run = sim.clone();
        if impose_interval {
            run.telemetry_interval = self.telemetry_interval;
        }
        if impose_profile {
            run.cycle_profile = true;
        }
        Cow::Owned(run)
    }

    /// Records a freshly simulated point's timeline and stall breakdown,
    /// if the point produced them.
    fn collect_timeline(&mut self, key: &(String, String), r: &SimResult) {
        if let Some(tl) = &r.timeline {
            self.timelines
                .push((key.0.clone(), key.1.clone(), tl.clone()));
        }
        if let Some(p) = &r.profile {
            self.stall_profiles
                .push((key.0.clone(), key.1.clone(), p.clone()));
        }
    }

    /// Writes every timeline collected this process to
    /// `<results_dir>/<name>.timeline.csv` (`CARVE_RESULTS_DIR`, default
    /// `results/`): one row per (point, interval, GPU), prefixed with the
    /// workload and config-key columns so rows from different points
    /// stay distinguishable. Rows appear in point-commit order, which is
    /// deterministic across thread counts. Returns the path written, or
    /// `None` when no timelines were collected.
    pub fn write_timeline_csv(&self, name: &str) -> std::io::Result<Option<PathBuf>> {
        if self.timelines.is_empty() {
            return Ok(None);
        }
        let dir = std::env::var("CARVE_RESULTS_DIR").unwrap_or_else(|_| "results".into());
        std::fs::create_dir_all(&dir)?;
        let path = Path::new(&dir).join(format!("{name}.timeline.csv"));
        self.write_timeline_csv_to(&path)?;
        Ok(Some(path))
    }

    /// [`Campaign::write_timeline_csv`] with an explicit file path
    /// (writes a header-only file when no timelines were collected).
    pub fn write_timeline_csv_to(&self, path: &Path) -> std::io::Result<()> {
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(out, "workload,config,{}", Timeline::CSV_HEADER)?;
        for (workload, config, tl) in &self.timelines {
            for rec in &tl.records {
                writeln!(out, "{workload},{config},{}", rec.csv_line())?;
            }
        }
        out.flush()
    }

    /// Writes every stall breakdown collected this process to
    /// `<results_dir>/<name>.profile.tsv` (`CARVE_RESULTS_DIR`, default
    /// `results/`): one line per point, `workload\tconfig\t<compact
    /// profile>` keyed exactly like the journal so `carve-report` can
    /// join the two. Returns the path, or `None` when nothing was
    /// collected.
    pub fn write_profile_tsv(&self, name: &str) -> std::io::Result<Option<PathBuf>> {
        if self.stall_profiles.is_empty() {
            return Ok(None);
        }
        let dir = std::env::var("CARVE_RESULTS_DIR").unwrap_or_else(|_| "results".into());
        std::fs::create_dir_all(&dir)?;
        let path = Path::new(&dir).join(format!("{name}.profile.tsv"));
        self.write_profile_tsv_to(&path)?;
        Ok(Some(path))
    }

    /// [`Campaign::write_profile_tsv`] with an explicit file path.
    pub fn write_profile_tsv_to(&self, path: &Path) -> std::io::Result<()> {
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        for (workload, config, p) in &self.stall_profiles {
            writeln!(out, "{workload}\t{config}\t{}", p.encode_compact())?;
        }
        out.flush()
    }

    /// [`Campaign::write_profile_tsv`] for binaries: reports the path (or
    /// the error) on stderr and never fails the campaign.
    pub fn report_profile(&self, name: &str) {
        match self.write_profile_tsv(name) {
            Ok(Some(path)) => eprintln!("profile: {}", path.display()),
            Ok(None) => {
                if self.cycle_profile {
                    eprintln!(
                        "profile: no points simulated this run (journal-resumed \
                         points carry no breakdown)"
                    );
                }
            }
            Err(e) => eprintln!("warning: could not write profile tsv: {e}"),
        }
    }

    /// [`Campaign::write_timeline_csv`] for binaries: reports the path
    /// (or the error) on stderr and never fails the campaign.
    pub fn report_timeline(&self, name: &str) {
        match self.write_timeline_csv(name) {
            Ok(Some(path)) => eprintln!("timeline: {}", path.display()),
            Ok(None) => {
                if self.telemetry_interval.is_some() {
                    eprintln!(
                        "timeline: no points simulated this run (journal-resumed \
                         points carry no timeline)"
                    );
                }
            }
            Err(e) => eprintln!("warning: could not write timeline csv: {e}"),
        }
    }

    /// The workload list in Table II order.
    pub fn specs(&self) -> Vec<WorkloadSpec> {
        self.specs.clone()
    }

    /// The base machine configuration.
    pub fn base_cfg(&self) -> ScaledConfig {
        self.base_cfg.clone()
    }

    /// Attaches the checkpoint journal `<results_dir>/<name>.journal`
    /// (`CARVE_RESULTS_DIR`, default `results/`), resuming from any
    /// records already on disk. Returns the number of points resumed.
    pub fn set_journal(&mut self, name: &str) -> Result<usize, SimError> {
        let dir = std::env::var("CARVE_RESULTS_DIR").unwrap_or_else(|_| "results".into());
        self.set_journal_path(&Path::new(&dir).join(format!("{name}.journal")))
    }

    /// [`Campaign::set_journal`] with an explicit file path.
    ///
    /// Loads every well-formed record whose header fingerprint matches
    /// this campaign (a quick-mode journal must not seed a full run),
    /// drops malformed lines (crash mid-append) with a warning, then
    /// rewrites the file clean and keeps it open for streaming appends.
    pub fn set_journal_path(&mut self, path: &Path) -> Result<usize, SimError> {
        let io = |e: &std::io::Error| SimError::checkpoint(path.display().to_string(), e);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| io(&e))?;
        }
        let header = format!("#carve-journal v1 quick={}", self.quick);
        let mut records: Vec<LoadedRecord> = Vec::new();
        let mut malformed = 0usize;
        // Read as bytes, not a string: a crash (or disk corruption) can
        // tear a trailing line mid-UTF-8-sequence, and a journal holding
        // hours of completed points must not be discarded because its
        // last line is garbage. Each line is validated independently;
        // corrupt ones are dropped (and re-run) like truncated ones.
        match std::fs::read(path) {
            Ok(bytes) => {
                let mut lines = bytes
                    .split(|&b| b == b'\n')
                    .map(|raw| std::str::from_utf8(raw.strip_suffix(b"\r").unwrap_or(raw)));
                match lines.next() {
                    None => {}
                    Some(Ok(h)) if h == header => {
                        for line in lines {
                            match line {
                                Ok("") => {}
                                Ok(line) => match parse_record(line) {
                                    Some(r) => records.push(r),
                                    None => malformed += 1,
                                },
                                Err(_) => malformed += 1,
                            }
                        }
                    }
                    Some(Ok(h)) => eprintln!(
                        "warning: journal {} has fingerprint {h:?} but this campaign \
                         is {header:?}; ignoring its contents",
                        path.display()
                    ),
                    Some(Err(_)) => eprintln!(
                        "warning: journal {} header is not valid UTF-8; \
                         ignoring its contents",
                        path.display()
                    ),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io(&e)),
        }
        if malformed > 0 {
            eprintln!(
                "warning: dropping {malformed} malformed or corrupt line(s) from \
                 journal {} (crash mid-append?)",
                path.display()
            );
        }
        let mut file = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io(&e))?;
        writeln!(file, "{header}").map_err(|e| io(&e))?;
        let mut resumed = 0usize;
        for rec in records {
            let (key, line) = match &rec {
                LoadedRecord::Done(config, r) => {
                    ((r.workload.clone(), config.clone()), ok_line(config, r))
                }
                LoadedRecord::Failed(f) => ((f.workload.clone(), f.config.clone()), fail_line(f)),
            };
            if self.cache.contains_key(&key) || self.failed.contains_key(&key) {
                continue; // duplicate record: first occurrence wins
            }
            writeln!(file, "{line}").map_err(|e| io(&e))?;
            match rec {
                LoadedRecord::Done(_, r) => {
                    self.cache.insert(key, *r);
                }
                LoadedRecord::Failed(f) => {
                    self.failed.insert(key, f);
                }
            }
            resumed += 1;
        }
        file.flush().map_err(|e| io(&e))?;
        self.journal = Some(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        });
        Ok(resumed)
    }

    /// Path of the attached journal, if any.
    pub fn journal_path(&self) -> Option<&Path> {
        self.journal.as_ref().map(|j| j.path.as_path())
    }

    /// Every failed point recorded so far, sorted by (workload, config)
    /// for deterministic reporting.
    pub fn failures(&self) -> Vec<&PointFailure> {
        let mut v: Vec<&PointFailure> = self.failed.values().collect();
        v.sort_by(|a, b| (&a.workload, &a.config).cmp(&(&b.workload, &b.config)));
        v
    }

    /// The base-machine sharing profile of a workload (memoized).
    pub fn profile(&mut self, spec: &WorkloadSpec) -> &SharingProfile {
        let num_gpus = self.base_cfg.num_gpus;
        self.profile_arc(spec, num_gpus);
        self.profiles
            .get(&(spec.name.to_string(), num_gpus))
            .expect("just inserted")
    }

    fn profile_arc(&mut self, spec: &WorkloadSpec, num_gpus: usize) -> Arc<SharingProfile> {
        let key = (spec.name.to_string(), num_gpus);
        if let Some(p) = self.profiles.get(&key) {
            return Arc::clone(p);
        }
        let p = Arc::new(profile_workload(spec, &self.base_cfg, num_gpus));
        self.profiles.insert(key, Arc::clone(&p));
        p
    }

    /// Simulates `spec` under `sim` (memoized by a derived key).
    ///
    /// # Panics
    ///
    /// Panics if the point fails (config rejected, watchdog stall, cycle
    /// cap, or worker panic) after every retry. Use
    /// [`Campaign::try_result`] to keep the failure instead.
    pub fn result(&mut self, spec: &WorkloadSpec, sim: &SimConfig) -> SimResult {
        self.try_result(spec, sim).unwrap_or_else(|f| panic!("{f}"))
    }

    /// Simulates `spec` under `sim` (memoized), reporting a failed point
    /// as a [`PointFailure`] cell instead of panicking. Both outcomes are
    /// journaled, so a resumed campaign reproduces failures verbatim.
    pub fn try_result(
        &mut self,
        spec: &WorkloadSpec,
        sim: &SimConfig,
    ) -> Result<SimResult, PointFailure> {
        let key = key_of(spec, sim);
        if let Some(r) = self.cache.get(&key) {
            return Ok(r.clone());
        }
        if let Some(f) = self.failed.get(&key) {
            return Err(f.clone());
        }
        // Profiles are keyed to the machine size the point runs on;
        // single-GPU runs use no profile-driven policy.
        let profile = self.profile_arc(spec, sim.design.num_gpus(&sim.cfg));
        let run_sim = self.sim_for_attempt(sim);
        match attempt_point(spec, &run_sim, &profile, self.retries, jitter_seed(&key)) {
            Ok((r, millis)) => {
                if let Some(j) = &self.journal {
                    j.append(&ok_line(&key.1, &r));
                }
                self.collect_timeline(&key, &r);
                self.timings.push(PointTiming {
                    workload: key.0.clone(),
                    config: key.1.clone(),
                    millis,
                    cycles: r.cycles,
                    parallel: false,
                });
                self.cache.insert(key, r.clone());
                Ok(r)
            }
            Err((attempts, error)) => {
                let f = PointFailure {
                    workload: key.0.clone(),
                    config: key.1.clone(),
                    attempts,
                    error,
                };
                if let Some(j) = &self.journal {
                    j.append(&fail_line(&f));
                }
                self.failed.insert(key, f.clone());
                Err(f)
            }
        }
    }

    /// Simulates every (workload × configuration) point, fanning uncached
    /// points across worker threads ([`par::thread_count`]), and returns
    /// the results **in input order**. Each point is an independent
    /// `System`, so concurrency cannot change any result.
    ///
    /// # Panics
    ///
    /// If any point fails, the rest of the grid still completes (and is
    /// journaled), then this panics with a summary naming every failed
    /// cell. Use [`Campaign::try_run_parallel`] to keep failed cells.
    pub fn run_parallel(&mut self, points: &[(WorkloadSpec, SimConfig)]) -> Vec<SimResult> {
        let outcomes = self.try_run_parallel(points);
        let mut failed: Vec<&PointFailure> = Vec::new();
        for f in outcomes.iter().filter_map(|r| r.as_ref().err()) {
            if !failed.contains(&f) {
                failed.push(f);
            }
        }
        if !failed.is_empty() {
            let lines: Vec<String> = failed.iter().map(|f| format!("  {f}")).collect();
            panic!(
                "{} campaign point(s) failed:\n{}",
                failed.len(),
                lines.join("\n")
            );
        }
        outcomes
            .into_iter()
            .map(|r| r.expect("no failures recorded"))
            .collect()
    }

    /// Panic-isolated [`Campaign::run_parallel`]: one poisoned point is
    /// reported as an `Err` cell (after `CARVE_RETRIES` retries) while
    /// every other point completes. Completed and failed points stream to
    /// the journal as workers finish, so a killed grid resumes with only
    /// the unfinished points re-run — producing byte-identical tables
    /// whether run straight through, killed-and-resumed, or run with a
    /// different thread count.
    pub fn try_run_parallel(
        &mut self,
        points: &[(WorkloadSpec, SimConfig)],
    ) -> Vec<Result<SimResult, PointFailure>> {
        // Sharing profiles are shared across points; memoize them up front
        // so workers only read them (through `Arc`). Specs and configs are
        // borrowed from `points` — the scoped-thread map never needs owned
        // copies.
        let mut jobs: Vec<(&WorkloadSpec, Cow<'_, SimConfig>, Arc<SharingProfile>)> = Vec::new();
        let mut claimed: HashSet<(String, String)> = HashSet::new();
        for (spec, sim) in points {
            let key = key_of(spec, sim);
            if self.cache.contains_key(&key)
                || self.failed.contains_key(&key)
                || !claimed.insert(key)
            {
                continue;
            }
            let profile = self.profile_arc(spec, sim.design.num_gpus(&sim.cfg));
            jobs.push((spec, self.sim_for_attempt(sim), profile));
        }
        let parallel = jobs.len() > 1 && par::thread_count() > 1;
        let journal = self.journal.as_ref();
        let retries = self.retries;
        // attempt_point already catches panics, so the harness-level catch
        // (retries = 0) is only a backstop; no cell can abort the grid.
        let outcomes = par::parallel_map_catch(&jobs, 0, |(spec, sim, profile)| {
            let key = key_of(spec, sim);
            let outcome = attempt_point(spec, sim, profile, retries, jitter_seed(&key));
            // Stream the finished point so a killed campaign resumes here.
            if let Some(j) = journal {
                match &outcome {
                    Ok((r, _)) => j.append(&ok_line(&key.1, r)),
                    Err((attempts, error)) => j.append(&fail_line(&PointFailure {
                        workload: key.0.clone(),
                        config: key.1.clone(),
                        attempts: *attempts,
                        error: error.clone(),
                    })),
                }
            }
            (key, outcome)
        });
        for cell in outcomes {
            let (key, outcome) = cell.expect("attempt_point catches its own panics");
            match outcome {
                Ok((r, millis)) => {
                    self.collect_timeline(&key, &r);
                    self.timings.push(PointTiming {
                        workload: key.0.clone(),
                        config: key.1.clone(),
                        millis,
                        cycles: r.cycles,
                        parallel,
                    });
                    self.cache.insert(key, r);
                }
                Err((attempts, error)) => {
                    let f = PointFailure {
                        workload: key.0.clone(),
                        config: key.1.clone(),
                        attempts,
                        error,
                    };
                    self.failed.insert(key, f);
                }
            }
        }
        points
            .iter()
            .map(|(spec, sim)| self.try_result(spec, sim))
            .collect()
    }

    /// Convenience: default-machine result for a design.
    pub fn design_result(&mut self, spec: &WorkloadSpec, design: Design) -> SimResult {
        let mut sim = SimConfig::new(design);
        sim.cfg = self.base_cfg.clone();
        self.result(spec, &sim)
    }

    /// Number of memoized simulation results.
    pub fn cached_runs(&self) -> usize {
        self.cache.len()
    }

    /// Wall-clock records for every point simulated so far.
    pub fn timings(&self) -> &[PointTiming] {
        &self.timings
    }

    /// Writes the per-point wall-clock records as JSON (hand-rolled — the
    /// workspace vendors no serialization crates).
    pub fn write_bench_json(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let engine = if std::env::var_os("CARVE_STEP").is_some() {
            "step"
        } else {
            "event-skip"
        };
        let total: f64 = self.timings.iter().map(|t| t.millis).sum();
        let mut out = std::fs::File::create(path)?;
        writeln!(out, "{{")?;
        writeln!(out, "  \"engine\": \"{engine}\",")?;
        writeln!(out, "  \"threads\": {},", par::thread_count())?;
        writeln!(out, "  \"quick\": {},", self.quick)?;
        writeln!(out, "  \"points\": {},", self.timings.len())?;
        writeln!(out, "  \"total_millis\": {total:.3},")?;
        writeln!(out, "  \"runs\": [")?;
        for (i, t) in self.timings.iter().enumerate() {
            let comma = if i + 1 == self.timings.len() { "" } else { "," };
            writeln!(
                out,
                "    {{\"workload\": \"{}\", \"config\": \"{}\", \"millis\": {:.3}, \
                 \"cycles\": {}, \"parallel\": {}}}{comma}",
                json_escape(&t.workload),
                json_escape(&t.config),
                t.millis,
                t.cycles,
                t.parallel,
            )?;
        }
        writeln!(out, "  ]")?;
        writeln!(out, "}}")?;
        Ok(())
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_campaign() -> Campaign {
        let mut c = Campaign::new();
        // Force tiny shapes regardless of env to keep tests fast.
        for spec in &mut c.specs {
            spec.shape.kernels = 2;
            spec.shape.ctas = 16;
            spec.shape.instrs_per_warp = 40;
        }
        c.set_retries(0);
        c
    }

    /// A grid cell rendering used by the resume tests: byte-identical
    /// tables are the acceptance bar for checkpoint/resume.
    fn table_of(cells: &[Result<SimResult, PointFailure>]) -> String {
        cells
            .iter()
            .map(|c| match c {
                Ok(r) => r.encode_journal_line(),
                Err(f) => format!("FAILED\t{}\t{}\t{}", f.workload, f.config, f.error),
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("carve-campaign-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn results_are_memoized() {
        let mut c = quick_campaign();
        let spec = c.specs()[3].clone(); // Lulesh
        let a = c.design_result(&spec, Design::NumaGpu);
        assert_eq!(c.cached_runs(), 1);
        let b = c.design_result(&spec, Design::NumaGpu);
        assert_eq!(c.cached_runs(), 1);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn distinct_configs_get_distinct_entries() {
        let mut c = quick_campaign();
        let spec = c.specs()[3].clone();
        c.design_result(&spec, Design::NumaGpu);
        let mut sim = SimConfig::new(Design::CarveHwc);
        sim.rdc_bytes = Some(1 << 20);
        c.result(&spec, &sim);
        assert_eq!(c.cached_runs(), 2);
    }

    #[test]
    fn twenty_specs_by_default() {
        let c = Campaign::new();
        assert_eq!(c.specs().len(), 20);
    }

    #[test]
    fn run_parallel_matches_sequential_results() {
        // The fan-out must be invisible: same counters, same cache state,
        // results in input order, duplicates served from cache.
        let mut seq = quick_campaign();
        let mut par_c = quick_campaign();
        let specs = seq.specs();
        let mut points: Vec<(WorkloadSpec, SimConfig)> = Vec::new();
        for spec in specs.iter().take(3) {
            for design in [Design::NumaGpu, Design::CarveHwc] {
                points.push((spec.clone(), SimConfig::new(design)));
            }
        }
        points.push(points[0].clone()); // duplicate point
        let fanned = par_c.run_parallel(&points);
        assert_eq!(fanned.len(), points.len());
        assert_eq!(par_c.cached_runs(), points.len() - 1);
        for (i, (spec, sim)) in points.iter().enumerate() {
            let expect = seq.result(spec, sim);
            assert_eq!(fanned[i].cycles, expect.cycles, "{} point {i}", spec.name);
            assert_eq!(fanned[i].instructions, expect.instructions);
            assert_eq!(fanned[i].remote_serviced, expect.remote_serviced);
        }
        assert_eq!(fanned[0].cycles, fanned[points.len() - 1].cycles);
    }

    #[test]
    fn timings_record_every_simulated_point() {
        let mut c = quick_campaign();
        let spec = c.specs()[0].clone();
        c.design_result(&spec, Design::NumaGpu);
        c.design_result(&spec, Design::NumaGpu); // cache hit: no new timing
        assert_eq!(c.timings().len(), 1);
        assert!(c.timings()[0].millis >= 0.0);
        assert!(!c.timings()[0].parallel);
    }

    #[test]
    fn forced_panic_point_is_a_failed_cell_and_the_rest_complete() {
        let dir = test_dir("poison");
        let path = dir.join("grid.journal");
        let mut c = quick_campaign();
        c.set_journal_path(&path).expect("attach journal");
        let specs = c.specs();
        // A CTA wider than the SM's warp slots trips the assert in
        // GpuCore::new — a deterministic mid-construction panic.
        let mut poisoned = specs[1].clone();
        poisoned.shape.warps_per_cta = 10_000;
        let points = vec![
            (specs[0].clone(), SimConfig::new(Design::NumaGpu)),
            (poisoned, SimConfig::new(Design::NumaGpu)),
            (specs[2].clone(), SimConfig::new(Design::CarveHwc)),
        ];
        let cells = c.try_run_parallel(&points);
        assert!(cells[0].is_ok() && cells[2].is_ok(), "healthy points ran");
        let fail = cells[1].as_ref().expect_err("poisoned point must fail");
        assert_eq!(fail.attempts, 1);
        assert!(
            fail.error.contains("panic:") && fail.error.contains("SM must fit"),
            "failure must carry the panic message, got {:?}",
            fail.error
        );
        assert_eq!(c.failures().len(), 1);
        let table = table_of(&cells);

        // A fresh campaign resuming from the journal reproduces the same
        // table byte-for-byte — including the failed cell — without
        // re-running anything.
        let mut resumed = quick_campaign();
        let n = resumed.set_journal_path(&path).expect("resume journal");
        assert_eq!(n, 3, "two ok records and one fail record resumed");
        let cells2 = resumed.try_run_parallel(&points);
        assert_eq!(table_of(&cells2), table);
        assert!(resumed.timings().is_empty(), "no point re-simulated");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_journal_resumes_to_byte_identical_tables() {
        let dir = test_dir("resume");
        let path = dir.join("grid.journal");
        let specs = quick_campaign().specs();
        let mut points: Vec<(WorkloadSpec, SimConfig)> = Vec::new();
        for spec in specs.iter().take(2) {
            for design in [Design::NumaGpu, Design::CarveHwc] {
                points.push((spec.clone(), SimConfig::new(design)));
            }
        }

        // Straight-through run, journaled.
        let mut a = quick_campaign();
        a.set_journal_path(&path).expect("attach journal");
        let table_a = table_of(&a.try_run_parallel(&points));

        // Simulate a kill mid-grid: keep the header, two complete records,
        // and a torn half of the third.
        let text = std::fs::read_to_string(&path).expect("journal written");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines.len(),
            1 + points.len(),
            "header plus one line per point"
        );
        let torn = &lines[3][..lines[3].len() / 2];
        std::fs::write(
            &path,
            format!("{}\n{}\n{}\n{torn}", lines[0], lines[1], lines[2]),
        )
        .expect("truncate journal");

        // Resume: the two intact points load, the torn one and the lost
        // one re-run, and the final table is byte-identical.
        let mut b = quick_campaign();
        let n = b.set_journal_path(&path).expect("resume journal");
        assert_eq!(n, 2, "only intact records resume");
        let table_b = table_of(&b.try_run_parallel(&points));
        assert_eq!(table_b, table_a);
        assert_eq!(b.timings().len(), 2, "exactly the missing points re-ran");

        // After the resumed run the journal is whole again: a third
        // campaign resumes all four points without simulating.
        let mut c = quick_campaign();
        assert_eq!(c.set_journal_path(&path).expect("reload"), points.len());
        let table_c = table_of(&c.try_run_parallel(&points));
        assert_eq!(table_c, table_a);
        assert!(c.timings().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_trailing_line_resumes_to_byte_identical_tables() {
        let dir = test_dir("corrupt");
        let path = dir.join("grid.journal");
        let specs = quick_campaign().specs();
        let points = vec![
            (specs[0].clone(), SimConfig::new(Design::NumaGpu)),
            (specs[1].clone(), SimConfig::new(Design::CarveHwc)),
        ];
        let mut a = quick_campaign();
        a.set_journal_path(&path).expect("attach journal");
        let table_a = table_of(&a.try_run_parallel(&points));

        // Corrupt the trailing record with invalid UTF-8 mid-line — a
        // torn write crossing a multi-byte boundary, not a clean cut.
        let mut bytes = std::fs::read(&path).expect("journal written");
        let keep = bytes
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b == b'\n')
            .map(|(i, _)| i)
            .nth(1)
            .expect("header + first record")
            + 1;
        bytes.truncate(keep + 20);
        bytes.extend_from_slice(&[0xFF, 0xFE, 0x80, b'g', b'a', b'r', 0xC0]);
        std::fs::write(&path, &bytes).expect("corrupt journal");

        // Resume: the intact record loads, the corrupt one is dropped
        // with a warning and re-runs, and the table is byte-identical.
        let mut b = quick_campaign();
        let n = b
            .set_journal_path(&path)
            .expect("resume despite corruption");
        assert_eq!(n, 1, "only the intact record resumes");
        let table_b = table_of(&b.try_run_parallel(&points));
        assert_eq!(table_b, table_a);
        assert_eq!(b.timings().len(), 1, "exactly the corrupt point re-ran");

        // A journal whose *header* is corrupt degrades to an empty resume
        // (never an abort): all points re-run, and the rewritten file is
        // clean again.
        std::fs::write(&path, [0xFF, 0xFE, b'\n', b'o', b'k', b'\t']).expect("smash header");
        let mut c = quick_campaign();
        assert_eq!(c.set_journal_path(&path).expect("attach over garbage"), 0);
        let table_c = table_of(&c.try_run_parallel(&points));
        assert_eq!(table_c, table_a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn permanent_failures_fail_fast_while_transient_ones_retry() {
        let mut c = quick_campaign();
        c.set_retries(3);
        let spec = c.specs()[0].clone();
        // ConfigInvalid is deterministic: with 3 retries armed, the point
        // must still make exactly one attempt. (The broken knob must not
        // disturb the sharing profile, which is computed before the run.)
        let mut bad = SimConfig::new(Design::NumaGpu);
        bad.cfg.link_bytes_per_cycle = -1.0;
        let f = c.try_result(&spec, &bad).expect_err("invalid config fails");
        assert_eq!(f.attempts, 1, "permanent error must not retry: {f}");
        assert!(f.error.contains("link"), "{}", f.error);

        // A watchdog stall is transient: every retry runs (and the
        // deterministic stall re-trips each time).
        let mut stall = SimConfig::new(Design::NumaGpu);
        stall.stall_inject_at = Some(500);
        stall.watchdog_cycles = Some(5_000);
        c.set_retries(1);
        let f = c.try_result(&spec, &stall).expect_err("stall fails");
        assert_eq!(f.attempts, 2, "transient error retries: {f}");
        assert!(f.error.contains("watchdog"), "{}", f.error);
    }

    #[test]
    fn faulted_points_get_their_own_cache_and_journal_keys() {
        let spec = quick_campaign().specs()[0].clone();
        let plain = SimConfig::new(Design::NumaGpu);
        let mut faulted = plain.clone();
        faulted.fault_plan =
            Some(carve_system::FaultPlan::parse("degrade@300:e0*50").expect("plan"));
        let (_, key_plain) = key_of(&spec, &plain);
        let (_, key_faulted) = key_of(&spec, &faulted);
        assert_ne!(key_plain, key_faulted);
        assert!(key_faulted.ends_with("|faults=degrade@300:e0*50"));
        // An empty plan keys like no plan at all, so pre-fault journals
        // keep resuming.
        let mut empty = plain;
        empty.fault_plan = Some(carve_system::FaultPlan::new());
        assert_eq!(key_of(&spec, &empty).1, key_plain);
    }

    #[test]
    fn journal_with_foreign_fingerprint_is_ignored() {
        let dir = test_dir("fingerprint");
        let path = dir.join("grid.journal");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(&path, "#carve-journal v0 quick=maybe\nok\tgarbage\n").expect("seed");
        let mut c = quick_campaign();
        assert_eq!(c.set_journal_path(&path).expect("attach"), 0);
        assert_eq!(c.cached_runs(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failure_error_text_survives_escaping_round_trip() {
        let f = PointFailure {
            workload: "w".into(),
            config: "cfg|x=1".into(),
            attempts: 2,
            error: "line one\n\tline two \\ end".into(),
        };
        let line = fail_line(&f);
        assert!(!line.contains('\n'));
        match parse_record(&line) {
            Some(LoadedRecord::Failed(back)) => assert_eq!(back, f),
            _ => panic!("fail record must parse back"),
        }
    }

    #[test]
    fn sanitizer_violation_journals_like_any_point_failure() {
        // Sanitizer violations carry multi-line component snapshots with
        // tabs and pipes; a checkpointed campaign must journal them and
        // reload byte-identically like any other failed point.
        let err = sim_core::SimError::SanitizerViolation {
            invariant: "gpu-vi-single-writer".into(),
            cycle: 123_456,
            detail: "line 0xdead0 granted to {1, 3}\ncomponent snapshot at \
                     detection (cycle 123500):\n\tgpu0 | sm0: 4 warps"
                .into(),
        };
        let f = PointFailure {
            workload: "XSBench".into(),
            config: "design=CARVE-HWC|sanitize=on".into(),
            attempts: 1,
            error: err.to_string(),
        };
        let line = fail_line(&f);
        assert!(!line.contains('\n'), "journal records are single lines");
        match parse_record(&line) {
            Some(LoadedRecord::Failed(back)) => {
                assert_eq!(back, f);
                assert!(back.error.contains("gpu-vi-single-writer"));
                assert!(back.error.contains("cycle 123456"));
            }
            _ => panic!("sanitizer failure record must parse back"),
        }
    }

    #[test]
    fn timelines_collect_in_input_order_without_perturbing_results() {
        let mut plain = quick_campaign();
        let mut seq = quick_campaign();
        seq.telemetry_interval = Some(700);
        let mut par_c = quick_campaign();
        par_c.telemetry_interval = Some(700);
        let specs = plain.specs();
        let mut points: Vec<(WorkloadSpec, SimConfig)> = Vec::new();
        for spec in specs.iter().take(2) {
            for design in [Design::NumaGpu, Design::CarveHwc] {
                points.push((spec.clone(), SimConfig::new(design)));
            }
        }
        let fanned = par_c.try_run_parallel(&points);
        for (i, (spec, sim)) in points.iter().enumerate() {
            let expect = plain.result(spec, sim);
            let sampled = seq.result(spec, sim);
            let got = fanned[i].as_ref().expect("point ran");
            // Sampling must be invisible to every journaled aggregate.
            assert_eq!(got.encode_journal_line(), expect.encode_journal_line());
            assert_eq!(sampled.encode_journal_line(), expect.encode_journal_line());
        }
        // Fan-out and sequential execution collect the same rows in the
        // same order — the timeline CSV is thread-count-independent.
        assert_eq!(par_c.timelines, seq.timelines);
        assert_eq!(par_c.timelines.len(), points.len());
        for ((w, _cfg, tl), (spec, sim)) in par_c.timelines.iter().zip(&points) {
            assert_eq!(w.as_str(), spec.name);
            assert_eq!(tl.interval, 700);
            assert_eq!(
                tl.total_instructions(),
                plain.result(spec, sim).instructions,
                "interval instruction sums must equal the aggregate exactly"
            );
        }
        // The CSV renders one row per record plus the header.
        let dir = test_dir("timeline-csv");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("grid.timeline.csv");
        par_c.write_timeline_csv_to(&path).expect("write csv");
        let text = std::fs::read_to_string(&path).expect("read back");
        let rows: usize = par_c
            .timelines
            .iter()
            .map(|(_, _, tl)| tl.records.len())
            .sum();
        assert_eq!(text.lines().count(), 1 + rows);
        assert!(text.starts_with(&format!("workload,config,{}", Timeline::CSV_HEADER)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profiles_collect_per_point_without_perturbing_results() {
        let mut plain = quick_campaign();
        let mut prof = quick_campaign();
        prof.enable_profile();
        let specs = plain.specs();
        let mut points: Vec<(WorkloadSpec, SimConfig)> = Vec::new();
        for spec in specs.iter().take(2) {
            for design in [Design::NumaGpu, Design::CarveHwc] {
                points.push((spec.clone(), SimConfig::new(design)));
            }
        }
        let fanned = prof.try_run_parallel(&points);
        for (i, (spec, sim)) in points.iter().enumerate() {
            let expect = plain.result(spec, sim);
            let got = fanned[i].as_ref().expect("point ran");
            // Profiling is observe-only: journal lines are bit-identical.
            assert_eq!(got.encode_journal_line(), expect.encode_journal_line());
        }
        // One breakdown per point, keyed like the journal, each obeying
        // the exclusivity invariant (categories sum to cycles × SMs).
        assert_eq!(prof.stall_profiles.len(), points.len());
        for ((w, key, p), (spec, sim)) in prof.stall_profiles.iter().zip(&points) {
            assert_eq!(w.as_str(), spec.name);
            assert_eq!(key, &key_of(spec, sim).1);
            let expect = plain.result(spec, sim);
            let per_gpu = expect.cycles * sim.cfg.sms_per_gpu as u64;
            for gpu in &p.gpus {
                assert_eq!(gpu.iter().sum::<u64>(), per_gpu);
            }
            // The TSV round-trips through the compact encoding.
            let back = ProfileReport::decode_compact(&p.encode_compact()).expect("decode");
            assert_eq!(back.encode_compact(), p.encode_compact());
        }
        let dir = test_dir("profile-tsv");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("grid.profile.tsv");
        prof.write_profile_tsv_to(&path).expect("write tsv");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count(), points.len());
        for line in text.lines() {
            let mut f = line.splitn(3, '\t');
            let (_w, _k, compact) = (f.next().unwrap(), f.next().unwrap(), f.next().unwrap());
            assert!(ProfileReport::decode_compact(compact).is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_resumed_points_carry_no_timeline() {
        let dir = test_dir("timeline-resume");
        let path = dir.join("grid.journal");
        let mut a = quick_campaign();
        a.telemetry_interval = Some(900);
        a.set_journal_path(&path).expect("attach journal");
        let specs = a.specs();
        let points = vec![
            (specs[0].clone(), SimConfig::new(Design::NumaGpu)),
            (specs[1].clone(), SimConfig::new(Design::CarveHwc)),
        ];
        let table_a = table_of(&a.try_run_parallel(&points));
        assert_eq!(a.timelines.len(), 2);

        // A fresh campaign resuming from the journal reproduces the same
        // table but simulates nothing, so it collects no timelines.
        let mut b = quick_campaign();
        b.telemetry_interval = Some(900);
        b.set_journal_path(&path).expect("resume journal");
        let table_b = table_of(&b.try_run_parallel(&points));
        assert_eq!(table_b, table_a);
        assert!(b.timelines.is_empty());
        assert_eq!(b.write_timeline_csv("never-used").expect("no-op"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_json_is_written() {
        let mut c = quick_campaign();
        let spec = c.specs()[0].clone();
        c.design_result(&spec, Design::NumaGpu);
        let dir = std::env::temp_dir().join("carve-bench-json-test");
        let path = dir.join("BENCH_engine.json");
        c.write_bench_json(&path).expect("write bench json");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.contains("\"runs\""));
        assert!(text.contains("\"engine\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
