//! Shared simulation cache for the experiment campaign.

use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use carve_system::{
    profile_workload, run_with_profile, Design, ScaledConfig, SharingProfile, SimConfig, SimResult,
};
use carve_trace::{workloads, WorkloadSpec};

use crate::par;

/// Wall-clock record for one simulated campaign point.
#[derive(Debug, Clone)]
pub struct PointTiming {
    /// Workload name (Table II).
    pub workload: String,
    /// Derived configuration key (design label + knobs).
    pub config: String,
    /// Simulation wall-clock in milliseconds.
    pub millis: f64,
    /// Simulated cycles of the run.
    pub cycles: u64,
    /// Whether the point ran inside a parallel fan-out.
    pub parallel: bool,
}

/// Runs simulations on demand and memoizes them, so figures sharing the
/// same (workload × configuration) points do not re-simulate.
pub struct Campaign {
    pub(crate) specs: Vec<WorkloadSpec>,
    profiles: HashMap<String, Arc<SharingProfile>>,
    cache: HashMap<(String, String), SimResult>,
    timings: Vec<PointTiming>,
    base_cfg: ScaledConfig,
    quick: bool,
}

/// The memoization key of a campaign point: every knob that changes the
/// simulated machine must appear here, or distinct configurations would
/// alias in the cache.
fn key_of(spec: &WorkloadSpec, sim: &SimConfig) -> (String, String) {
    (
        spec.name.to_string(),
        format!(
            "{}|rdc={}|spill={:.4}|bw={:.3}|pred={}|wp={:?}|bcast={}|dir={}|sysrdc={}|gpus={}",
            sim.design.label(),
            sim.rdc_capacity(),
            sim.spill_fraction,
            sim.cfg.link_bytes_per_cycle,
            sim.hit_predictor,
            sim.rdc_write_policy,
            sim.gpu_vi_broadcast_always,
            sim.directory_coherence,
            sim.rdc_caches_sysmem,
            sim.cfg.num_gpus,
        ),
    )
}

impl Default for Campaign {
    fn default() -> Campaign {
        Campaign::new()
    }
}

impl Campaign {
    /// Creates a campaign over all 20 workloads; honours `CARVE_QUICK`.
    pub fn new() -> Campaign {
        let quick = std::env::var_os("CARVE_QUICK").is_some();
        let mut specs = workloads::all();
        if quick {
            for spec in &mut specs {
                spec.shape.kernels = spec.shape.kernels.min(4);
                spec.shape.ctas = 32;
                spec.shape.instrs_per_warp = spec.shape.instrs_per_warp.min(120);
            }
        }
        Campaign {
            specs,
            profiles: HashMap::new(),
            cache: HashMap::new(),
            timings: Vec::new(),
            base_cfg: ScaledConfig::default(),
            quick,
        }
    }

    /// Whether quick mode is active.
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// The workload list in Table II order.
    pub fn specs(&self) -> Vec<WorkloadSpec> {
        self.specs.clone()
    }

    /// The base machine configuration.
    pub fn base_cfg(&self) -> ScaledConfig {
        self.base_cfg.clone()
    }

    /// The 4-GPU sharing profile of a workload (memoized).
    pub fn profile(&mut self, spec: &WorkloadSpec) -> &SharingProfile {
        self.profile_arc(spec);
        self.profiles.get(spec.name).expect("just inserted")
    }

    fn profile_arc(&mut self, spec: &WorkloadSpec) -> Arc<SharingProfile> {
        let num_gpus = self.base_cfg.num_gpus;
        let cfg = self.base_cfg.clone();
        Arc::clone(
            self.profiles
                .entry(spec.name.to_string())
                .or_insert_with(|| Arc::new(profile_workload(spec, &cfg, num_gpus))),
        )
    }

    /// Simulates `spec` under `sim` (memoized by a derived key).
    pub fn result(&mut self, spec: &WorkloadSpec, sim: &SimConfig) -> SimResult {
        let key = key_of(spec, sim);
        if let Some(r) = self.cache.get(&key) {
            return r.clone();
        }
        // Profiles are only valid for the 4-GPU machine; single-GPU runs
        // use no profile-driven policy.
        let profile = self.profile_arc(spec);
        let started = Instant::now();
        let r = run_with_profile(spec, sim, Some(&profile));
        let millis = started.elapsed().as_secs_f64() * 1e3;
        assert!(
            r.completed,
            "{} under {} hit the cycle cap",
            spec.name,
            sim.design.label()
        );
        self.timings.push(PointTiming {
            workload: key.0.clone(),
            config: key.1.clone(),
            millis,
            cycles: r.cycles,
            parallel: false,
        });
        self.cache.insert(key, r.clone());
        r
    }

    /// Simulates every (workload × configuration) point, fanning uncached
    /// points across worker threads ([`par::thread_count`]), and returns
    /// the results **in input order**. Each point is an independent
    /// `System`, so concurrency cannot change any result; the memo cache
    /// is filled in the same deterministic order as a sequential pass.
    pub fn run_parallel(&mut self, points: &[(WorkloadSpec, SimConfig)]) -> Vec<SimResult> {
        // Sharing profiles are shared across points; memoize them up front
        // so workers only read them (through `Arc`).
        let mut jobs: Vec<(WorkloadSpec, SimConfig, Arc<SharingProfile>)> = Vec::new();
        let mut claimed: HashSet<(String, String)> = HashSet::new();
        for (spec, sim) in points {
            let key = key_of(spec, sim);
            if self.cache.contains_key(&key) || !claimed.insert(key) {
                continue;
            }
            let profile = self.profile_arc(spec);
            jobs.push((spec.clone(), sim.clone(), profile));
        }
        let parallel = jobs.len() > 1 && par::thread_count() > 1;
        let outcomes = par::parallel_map(jobs, |(spec, sim, profile)| {
            let started = Instant::now();
            let r = run_with_profile(&spec, &sim, Some(&profile));
            let millis = started.elapsed().as_secs_f64() * 1e3;
            (spec, sim, r, millis)
        });
        for (spec, sim, r, millis) in outcomes {
            assert!(
                r.completed,
                "{} under {} hit the cycle cap",
                spec.name,
                sim.design.label()
            );
            let key = key_of(&spec, &sim);
            self.timings.push(PointTiming {
                workload: key.0.clone(),
                config: key.1.clone(),
                millis,
                cycles: r.cycles,
                parallel,
            });
            self.cache.insert(key, r);
        }
        points
            .iter()
            .map(|(spec, sim)| self.result(spec, sim))
            .collect()
    }

    /// Convenience: default-machine result for a design.
    pub fn design_result(&mut self, spec: &WorkloadSpec, design: Design) -> SimResult {
        let mut sim = SimConfig::new(design);
        sim.cfg = self.base_cfg.clone();
        self.result(spec, &sim)
    }

    /// Number of memoized simulation results.
    pub fn cached_runs(&self) -> usize {
        self.cache.len()
    }

    /// Wall-clock records for every point simulated so far.
    pub fn timings(&self) -> &[PointTiming] {
        &self.timings
    }

    /// Writes the per-point wall-clock records as JSON (hand-rolled — the
    /// workspace vendors no serialization crates).
    pub fn write_bench_json(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let engine = if std::env::var_os("CARVE_STEP").is_some() {
            "step"
        } else {
            "event-skip"
        };
        let total: f64 = self.timings.iter().map(|t| t.millis).sum();
        let mut out = std::fs::File::create(path)?;
        writeln!(out, "{{")?;
        writeln!(out, "  \"engine\": \"{engine}\",")?;
        writeln!(out, "  \"threads\": {},", par::thread_count())?;
        writeln!(out, "  \"quick\": {},", self.quick)?;
        writeln!(out, "  \"points\": {},", self.timings.len())?;
        writeln!(out, "  \"total_millis\": {total:.3},")?;
        writeln!(out, "  \"runs\": [")?;
        for (i, t) in self.timings.iter().enumerate() {
            let comma = if i + 1 == self.timings.len() { "" } else { "," };
            writeln!(
                out,
                "    {{\"workload\": \"{}\", \"config\": \"{}\", \"millis\": {:.3}, \
                 \"cycles\": {}, \"parallel\": {}}}{comma}",
                json_escape(&t.workload),
                json_escape(&t.config),
                t.millis,
                t.cycles,
                t.parallel,
            )?;
        }
        writeln!(out, "  ]")?;
        writeln!(out, "}}")?;
        Ok(())
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_campaign() -> Campaign {
        let mut c = Campaign::new();
        // Force tiny shapes regardless of env to keep tests fast.
        for spec in &mut c.specs {
            spec.shape.kernels = 2;
            spec.shape.ctas = 16;
            spec.shape.instrs_per_warp = 40;
        }
        c
    }

    #[test]
    fn results_are_memoized() {
        let mut c = quick_campaign();
        let spec = c.specs()[3].clone(); // Lulesh
        let a = c.design_result(&spec, Design::NumaGpu);
        assert_eq!(c.cached_runs(), 1);
        let b = c.design_result(&spec, Design::NumaGpu);
        assert_eq!(c.cached_runs(), 1);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn distinct_configs_get_distinct_entries() {
        let mut c = quick_campaign();
        let spec = c.specs()[3].clone();
        c.design_result(&spec, Design::NumaGpu);
        let mut sim = SimConfig::new(Design::CarveHwc);
        sim.rdc_bytes = Some(1 << 20);
        c.result(&spec, &sim);
        assert_eq!(c.cached_runs(), 2);
    }

    #[test]
    fn twenty_specs_by_default() {
        let c = Campaign::new();
        assert_eq!(c.specs().len(), 20);
    }

    #[test]
    fn run_parallel_matches_sequential_results() {
        // The fan-out must be invisible: same counters, same cache state,
        // results in input order, duplicates served from cache.
        let mut seq = quick_campaign();
        let mut par_c = quick_campaign();
        let specs = seq.specs();
        let mut points: Vec<(WorkloadSpec, SimConfig)> = Vec::new();
        for spec in specs.iter().take(3) {
            for design in [Design::NumaGpu, Design::CarveHwc] {
                points.push((spec.clone(), SimConfig::new(design)));
            }
        }
        points.push(points[0].clone()); // duplicate point
        let fanned = par_c.run_parallel(&points);
        assert_eq!(fanned.len(), points.len());
        assert_eq!(par_c.cached_runs(), points.len() - 1);
        for (i, (spec, sim)) in points.iter().enumerate() {
            let expect = seq.result(spec, sim);
            assert_eq!(fanned[i].cycles, expect.cycles, "{} point {i}", spec.name);
            assert_eq!(fanned[i].instructions, expect.instructions);
            assert_eq!(fanned[i].remote_serviced, expect.remote_serviced);
        }
        assert_eq!(fanned[0].cycles, fanned[points.len() - 1].cycles);
    }

    #[test]
    fn timings_record_every_simulated_point() {
        let mut c = quick_campaign();
        let spec = c.specs()[0].clone();
        c.design_result(&spec, Design::NumaGpu);
        c.design_result(&spec, Design::NumaGpu); // cache hit: no new timing
        assert_eq!(c.timings().len(), 1);
        assert!(c.timings()[0].millis >= 0.0);
        assert!(!c.timings()[0].parallel);
    }

    #[test]
    fn bench_json_is_written() {
        let mut c = quick_campaign();
        let spec = c.specs()[0].clone();
        c.design_result(&spec, Design::NumaGpu);
        let dir = std::env::temp_dir().join("carve-bench-json-test");
        let path = dir.join("BENCH_engine.json");
        c.write_bench_json(&path).expect("write bench json");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.contains("\"runs\""));
        assert!(text.contains("\"engine\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
