//! Shared simulation cache for the experiment campaign.

use std::collections::HashMap;

use carve_system::{
    profile_workload, run_with_profile, Design, ScaledConfig, SharingProfile, SimConfig, SimResult,
};
use carve_trace::{workloads, WorkloadSpec};

/// Runs simulations on demand and memoizes them, so figures sharing the
/// same (workload × configuration) points do not re-simulate.
pub struct Campaign {
    pub(crate) specs: Vec<WorkloadSpec>,
    profiles: HashMap<String, SharingProfile>,
    cache: HashMap<(String, String), SimResult>,
    base_cfg: ScaledConfig,
    quick: bool,
}

impl Default for Campaign {
    fn default() -> Campaign {
        Campaign::new()
    }
}

impl Campaign {
    /// Creates a campaign over all 20 workloads; honours `CARVE_QUICK`.
    pub fn new() -> Campaign {
        let quick = std::env::var_os("CARVE_QUICK").is_some();
        let mut specs = workloads::all();
        if quick {
            for spec in &mut specs {
                spec.shape.kernels = spec.shape.kernels.min(4);
                spec.shape.ctas = 32;
                spec.shape.instrs_per_warp = spec.shape.instrs_per_warp.min(120);
            }
        }
        Campaign {
            specs,
            profiles: HashMap::new(),
            cache: HashMap::new(),
            base_cfg: ScaledConfig::default(),
            quick,
        }
    }

    /// Whether quick mode is active.
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// The workload list in Table II order.
    pub fn specs(&self) -> Vec<WorkloadSpec> {
        self.specs.clone()
    }

    /// The base machine configuration.
    pub fn base_cfg(&self) -> ScaledConfig {
        self.base_cfg.clone()
    }

    /// The 4-GPU sharing profile of a workload (memoized).
    pub fn profile(&mut self, spec: &WorkloadSpec) -> &SharingProfile {
        let num_gpus = self.base_cfg.num_gpus;
        let cfg = self.base_cfg.clone();
        self.profiles
            .entry(spec.name.to_string())
            .or_insert_with(|| profile_workload(spec, &cfg, num_gpus))
    }

    /// Simulates `spec` under `sim` (memoized by a derived key).
    pub fn result(&mut self, spec: &WorkloadSpec, sim: &SimConfig) -> SimResult {
        let key = (
            spec.name.to_string(),
            format!(
                "{}|rdc={}|spill={:.4}|bw={:.3}|pred={}|wp={:?}|bcast={}|dir={}|sysrdc={}|gpus={}",
                sim.design.label(),
                sim.rdc_capacity(),
                sim.spill_fraction,
                sim.cfg.link_bytes_per_cycle,
                sim.hit_predictor,
                sim.rdc_write_policy,
                sim.gpu_vi_broadcast_always,
                sim.directory_coherence,
                sim.rdc_caches_sysmem,
                sim.cfg.num_gpus,
            ),
        );
        if let Some(r) = self.cache.get(&key) {
            return r.clone();
        }
        // Profiles are only valid for the 4-GPU machine; single-GPU runs
        // use no profile-driven policy.
        self.profile(spec);
        let profile = self.profiles.get(spec.name).expect("just inserted");
        let r = run_with_profile(spec, sim, Some(profile));
        assert!(
            r.completed,
            "{} under {} hit the cycle cap",
            spec.name,
            sim.design.label()
        );
        self.cache.insert(key, r.clone());
        r
    }

    /// Convenience: default-machine result for a design.
    pub fn design_result(&mut self, spec: &WorkloadSpec, design: Design) -> SimResult {
        let mut sim = SimConfig::new(design);
        sim.cfg = self.base_cfg.clone();
        self.result(spec, &sim)
    }

    /// Number of memoized simulation results.
    pub fn cached_runs(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_campaign() -> Campaign {
        let mut c = Campaign::new();
        // Force tiny shapes regardless of env to keep tests fast.
        for spec in &mut c.specs {
            spec.shape.kernels = 2;
            spec.shape.ctas = 16;
            spec.shape.instrs_per_warp = 40;
        }
        c
    }

    #[test]
    fn results_are_memoized() {
        let mut c = quick_campaign();
        let spec = c.specs()[3].clone(); // Lulesh
        let a = c.design_result(&spec, Design::NumaGpu);
        assert_eq!(c.cached_runs(), 1);
        let b = c.design_result(&spec, Design::NumaGpu);
        assert_eq!(c.cached_runs(), 1);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn distinct_configs_get_distinct_entries() {
        let mut c = quick_campaign();
        let spec = c.specs()[3].clone();
        c.design_result(&spec, Design::NumaGpu);
        let mut sim = SimConfig::new(Design::CarveHwc);
        sim.rdc_bytes = Some(1 << 20);
        c.result(&spec, &sim);
        assert_eq!(c.cached_runs(), 2);
    }

    #[test]
    fn twenty_specs_by_default() {
        let c = Campaign::new();
        assert_eq!(c.specs().len(), 20);
    }
}
