//! Aligned-text and TSV table output.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple results table: header row plus data rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// Identifier used for the TSV filename (e.g. `fig09`).
    pub id: String,
    /// Human title printed above the table.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows (stringified by the figure code).
    pub rows: Vec<Vec<String>>,
    /// When set, [`Table::emit`] also renders an ASCII bar chart of this
    /// column (values parsed leniently: `0.75`, `2.45x`, `41.3%`).
    pub chart_column: Option<usize>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, header: &[&str]) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            chart_column: None,
        }
    }

    /// Enables the bar chart for `col` and returns `self` (builder style).
    pub fn with_chart(mut self, col: usize) -> Table {
        self.chart_column = Some(col);
        self
    }

    fn parse_cell(s: &str) -> Option<f64> {
        s.trim()
            .trim_end_matches('x')
            .trim_end_matches('%')
            .parse()
            .ok()
    }

    /// Renders an ASCII bar chart of one column (the paper's figures are
    /// bar charts; this gives the same at-a-glance shape in a terminal).
    pub fn render_chart(&self, col: usize) -> Option<String> {
        let values: Vec<(String, f64)> = self
            .rows
            .iter()
            .filter_map(|r| Some((r[0].clone(), Self::parse_cell(r.get(col)?)?)))
            .collect();
        if values.is_empty() {
            return None;
        }
        let max = values.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
        if max <= 0.0 {
            return None;
        }
        let name_w = values.iter().map(|(n, _)| n.len()).max().unwrap_or(8);
        let mut out = String::new();
        out.push_str(&format!(
            "   [{}]
",
            self.header[col]
        ));
        for (name, v) in &values {
            let width = ((v / max) * 40.0).round() as usize;
            out.push_str(&format!(
                "   {name:<name_w$} {:<40} {v:.2}
",
                "#".repeat(width)
            ));
        }
        Some(out)
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the aligned-text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("{cell:>w$}"));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints to stdout and writes `<results_dir>/<id>.tsv`.
    pub fn emit(&self) {
        println!("{}", self.render());
        if let Some(col) = self.chart_column {
            if let Some(chart) = self.render_chart(col) {
                println!("{chart}");
            }
        }
        let dir = std::env::var("CARVE_RESULTS_DIR").unwrap_or_else(|_| "results".into());
        let path = PathBuf::from(dir);
        if fs::create_dir_all(&path).is_ok() {
            let file = path.join(format!("{}.tsv", self.id));
            if let Ok(mut f) = fs::File::create(&file) {
                let _ = writeln!(f, "{}", self.header.join("\t"));
                for row in &self.rows {
                    let _ = writeln!(f, "{}", row.join("\t"));
                }
            }
        }
    }
}

/// Formats a ratio as e.g. `0.94`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a fraction as a percentage, e.g. `41.3%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t", "Title", &["workload", "x"]);
        t.push(vec!["a-long-name".into(), "1.00".into()]);
        t.push(vec!["b".into(), "12.50".into()]);
        let s = t.render();
        assert!(s.contains("== Title =="));
        assert!(s.contains("a-long-name"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, two rows, plus title.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("t", "T", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn chart_scales_bars_to_max() {
        let mut t = Table::new("t", "T", &["w", "v"]).with_chart(1);
        t.push(vec!["a".into(), "1.00".into()]);
        t.push(vec!["b".into(), "2.00x".into()]);
        let chart = t.render_chart(1).unwrap();
        let lines: Vec<&str> = chart.lines().collect();
        let bars: Vec<usize> = lines[1..].iter().map(|l| l.matches('#').count()).collect();
        assert_eq!(bars[1], 40, "max value fills the scale");
        assert_eq!(bars[0], 20, "half value gets half the bar");
    }

    #[test]
    fn chart_handles_unparseable_columns() {
        let mut t = Table::new("t", "T", &["w", "v"]);
        t.push(vec!["a".into(), "n/a".into()]);
        assert!(t.render_chart(1).is_none());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(0.937), "0.94");
        assert_eq!(pct(0.4132), "41.3%");
    }
}
