//! One function per table/figure of the paper's evaluation.

use carve::coherence_delay_model;
use carve_system::{Design, SimConfig};
use sim_core::{geomean, units};

use crate::campaign::Campaign;
use crate::table::{pct, ratio, Table};

/// Figure 2: performance of NUMA-GPU (and +migration, +read-only
/// replication) relative to the ideal system that replicates all shared
/// pages. Also backs the intro claim (migration 49% / replication 47% /
/// CARVE 6% slowdown vs ideal).
pub fn fig02(c: &mut Campaign) -> Table {
    let mut t = Table::new(
        "fig02",
        "Fig 2: performance relative to ideal (replicate-all) NUMA-GPU",
        &["workload", "NUMA-GPU", "+Migrate", "+RO-Repl", "CARVE-HWC"],
    )
    .with_chart(4);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for spec in c.specs() {
        let ideal = c.design_result(&spec, Design::Ideal);
        let vals = [
            c.design_result(&spec, Design::NumaGpu)
                .performance_vs(&ideal),
            c.design_result(&spec, Design::NumaGpuMigrate)
                .performance_vs(&ideal),
            c.design_result(&spec, Design::NumaGpuRepl)
                .performance_vs(&ideal),
            c.design_result(&spec, Design::CarveHwc)
                .performance_vs(&ideal),
        ];
        for (col, v) in cols.iter_mut().zip(vals) {
            col.push(v);
        }
        let mut row = vec![spec.name.to_string()];
        row.extend(vals.iter().map(|&v| ratio(v)));
        t.push(row);
    }
    let mut row = vec!["geomean".to_string()];
    row.extend(cols.iter().map(|col| ratio(geomean(col.iter().copied()))));
    t.push(row);
    t
}

/// Figure 4: distribution of memory accesses to private / read-only shared
/// / read-write shared data, at page and at cache-line granularity.
pub fn fig04(c: &mut Campaign) -> Table {
    let mut t = Table::new(
        "fig04",
        "Fig 4: access distribution by sharing class (page vs 128B line granularity)",
        &[
            "workload", "pg-priv", "pg-ro", "pg-rw", "ln-priv", "ln-ro", "ln-rw",
        ],
    );
    for spec in c.specs() {
        let p = c.profile(&spec);
        let (pp, pro, prw) = p.page_breakdown().fractions();
        let (lp, lro, lrw) = p.line_breakdown().fractions();
        t.push(vec![
            spec.name.to_string(),
            pct(pp),
            pct(pro),
            pct(prw),
            pct(lp),
            pct(lro),
            pct(lrw),
        ]);
    }
    t
}

/// Figure 5: shared memory footprint vs the aggregate system LLC capacity.
pub fn fig05(c: &mut Campaign) -> Table {
    let cfg = c.base_cfg();
    let total_llc = cfg.total_l2_bytes();
    let scale = cfg.capacity_scale;
    let mut t = Table::new(
        "fig05",
        "Fig 5: shared memory footprint vs aggregate LLC capacity",
        &[
            "workload",
            "shared(scaled)",
            "shared(paper-equiv)",
            "x system LLC",
        ],
    );
    for spec in c.specs() {
        let p = c.profile(&spec);
        let shared = p.shared_footprint_bytes();
        t.push(vec![
            spec.name.to_string(),
            units::fmt_bytes(shared),
            units::fmt_bytes(shared * scale),
            format!("{:.1}x", shared as f64 / total_llc as f64),
        ]);
    }
    t
}

/// Figure 8: fraction of memory requests serviced remotely, NUMA-GPU vs
/// CARVE (RDC hits count as local).
pub fn fig08(c: &mut Campaign) -> Table {
    let mut t = Table::new(
        "fig08",
        "Fig 8: fraction of remote memory accesses",
        &["workload", "NUMA-GPU", "CARVE"],
    );
    let mut base = Vec::new();
    let mut carve = Vec::new();
    for spec in c.specs() {
        let b = c.design_result(&spec, Design::NumaGpu).remote_fraction();
        let v = c.design_result(&spec, Design::CarveHwc).remote_fraction();
        base.push(b);
        carve.push(v);
        t.push(vec![spec.name.to_string(), pct(b), pct(v)]);
    }
    t.push(vec![
        "mean".to_string(),
        pct(base.iter().sum::<f64>() / base.len() as f64),
        pct(carve.iter().sum::<f64>() / carve.len() as f64),
    ]);
    t
}

/// Figure 9: CARVE with zero-overhead coherence vs the software schemes,
/// relative to ideal.
pub fn fig09(c: &mut Campaign) -> Table {
    let mut t = Table::new(
        "fig09",
        "Fig 9: CARVE-No-Coherence performance relative to ideal",
        &["workload", "NUMA-GPU", "+RO-Repl", "CARVE-NC"],
    )
    .with_chart(3);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for spec in c.specs() {
        let ideal = c.design_result(&spec, Design::Ideal);
        let vals = [
            c.design_result(&spec, Design::NumaGpu)
                .performance_vs(&ideal),
            c.design_result(&spec, Design::NumaGpuRepl)
                .performance_vs(&ideal),
            c.design_result(&spec, Design::CarveNc)
                .performance_vs(&ideal),
        ];
        for (col, v) in cols.iter_mut().zip(vals) {
            col.push(v);
        }
        let mut row = vec![spec.name.to_string()];
        row.extend(vals.iter().map(|&v| ratio(v)));
        t.push(row);
    }
    let mut row = vec!["geomean".to_string()];
    row.extend(cols.iter().map(|col| ratio(geomean(col.iter().copied()))));
    t.push(row);
    t
}

/// Figure 11: the coherence design space — software coherence destroys the
/// RDC's inter-kernel locality; hardware coherence preserves it.
pub fn fig11(c: &mut Campaign) -> Table {
    let mut t = Table::new(
        "fig11",
        "Fig 11: CARVE coherence designs relative to ideal",
        &[
            "workload",
            "CARVE-SWC",
            "CARVE-HWC",
            "CARVE-NC",
            "rdc-hit-swc",
            "rdc-hit-hwc",
        ],
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for spec in c.specs() {
        let ideal = c.design_result(&spec, Design::Ideal);
        let swc = c.design_result(&spec, Design::CarveSwc);
        let hwc = c.design_result(&spec, Design::CarveHwc);
        let nc = c.design_result(&spec, Design::CarveNc);
        let vals = [
            swc.performance_vs(&ideal),
            hwc.performance_vs(&ideal),
            nc.performance_vs(&ideal),
        ];
        for (col, v) in cols.iter_mut().zip(vals) {
            col.push(v);
        }
        t.push(vec![
            spec.name.to_string(),
            ratio(vals[0]),
            ratio(vals[1]),
            ratio(vals[2]),
            pct(swc.rdc.hit_rate()),
            pct(hwc.rdc.hit_rate()),
        ]);
    }
    t.push(vec![
        "geomean".to_string(),
        ratio(geomean(cols[0].iter().copied())),
        ratio(geomean(cols[1].iter().copied())),
        ratio(geomean(cols[2].iter().copied())),
        String::new(),
        String::new(),
    ]);
    t
}

/// Figure 13: speedup over a single GPU for the four headline systems.
pub fn fig13(c: &mut Campaign) -> Table {
    let mut t = Table::new(
        "fig13",
        "Fig 13: speedup over 1 GPU",
        &["workload", "NUMA-GPU", "+RO-Repl", "CARVE", "Ideal"],
    )
    .with_chart(3);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for spec in c.specs() {
        let single = c.design_result(&spec, Design::SingleGpu);
        let vals = [
            c.design_result(&spec, Design::NumaGpu)
                .speedup_over(&single),
            c.design_result(&spec, Design::NumaGpuRepl)
                .speedup_over(&single),
            c.design_result(&spec, Design::CarveHwc)
                .speedup_over(&single),
            c.design_result(&spec, Design::Ideal).speedup_over(&single),
        ];
        for (col, v) in cols.iter_mut().zip(vals) {
            col.push(v);
        }
        let mut row = vec![spec.name.to_string()];
        row.extend(vals.iter().map(|&v| format!("{v:.2}x")));
        t.push(row);
    }
    let mut row = vec!["geomean".to_string()];
    row.extend(
        cols.iter()
            .map(|col| format!("{:.2}x", geomean(col.iter().copied()))),
    );
    t.push(row);
    t
}

/// Figure 14: geomean speedup over 1 GPU as the inter-GPU link bandwidth
/// sweeps 32..256 GB/s (paper-equivalent; scaled with machine width).
pub fn fig14(c: &mut Campaign) -> Table {
    let base_cfg = c.base_cfg();
    let mut t = Table::new(
        "fig14",
        "Fig 14: geomean speedup over 1 GPU vs inter-GPU link bandwidth",
        &["link-BW", "NUMA-GPU", "+RO-Repl", "CARVE", "Ideal"],
    );
    for factor in [0.5, 1.0, 2.0, 4.0] {
        let paper_gbs = 64.0 * factor;
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for spec in c.specs() {
            let single = c.design_result(&spec, Design::SingleGpu);
            for (i, design) in [
                Design::NumaGpu,
                Design::NumaGpuRepl,
                Design::CarveHwc,
                Design::Ideal,
            ]
            .into_iter()
            .enumerate()
            {
                let mut sim = SimConfig::new(design);
                sim.cfg = base_cfg.clone();
                sim.cfg.link_bytes_per_cycle = base_cfg.link_bytes_per_cycle * factor;
                let r = c.result(&spec, &sim);
                cols[i].push(r.speedup_over(&single));
            }
        }
        let mut row = vec![format!("{paper_gbs:.0} GB/s")];
        row.extend(
            cols.iter()
                .map(|col| format!("{:.2}x", geomean(col.iter().copied()))),
        );
        t.push(row);
    }
    t
}

/// Table IV: worst-case kernel-launch delay under software coherence, at
/// paper-machine scale (8 MB L2, 2 GB RDC, 1 TB/s HBM, 64 GB/s link).
pub fn table4() -> Table {
    let d = coherence_delay_model(8 << 20, 2 << 30, 128, 16, 1.0, 1000.0, 64.0);
    let mut t = Table::new(
        "table4",
        "Table IV: kernel-launch delay under software coherence",
        &[
            "action",
            "L2 (8MB)",
            "RDC (2GB) naive",
            "RDC with CARVE support",
        ],
    );
    t.push(vec![
        "invalidate".into(),
        format!("{:.1} us", d.l2_invalidate_ns / 1e3),
        format!("{:.1} ms", d.rdc_invalidate_naive_ns / 1e6),
        format!("{:.0} ms (epoch ctr)", d.rdc_invalidate_epoch_ns / 1e6),
    ]);
    t.push(vec![
        "flush dirty".into(),
        format!("{:.0} us", d.l2_flush_worst_ns / 1e3),
        format!("{:.0} ms", d.rdc_flush_naive_ns / 1e6),
        format!(
            "{:.0} ms (write-through)",
            d.rdc_flush_writethrough_ns / 1e6
        ),
    ]);
    t
}

/// Table V: sensitivity to the RDC carve-out — (a) NUMA speedup per RDC
/// size and (b) slowdown when the matching fraction of the footprint
/// spills to system memory.
pub fn table5(c: &mut Campaign) -> Table {
    let base_cfg = c.base_cfg();
    let mut t = Table::new(
        "table5",
        "Table V: sensitivity to RDC size (a) and carve-out capacity loss (b)",
        &["config", "carve-out", "(a) NUMA speedup", "(b) slowdown"],
    );
    // Baseline NUMA-GPU row.
    let mut base_speed = Vec::new();
    for spec in c.specs() {
        let single = c.design_result(&spec, Design::SingleGpu);
        base_speed.push(
            c.design_result(&spec, Design::NumaGpu)
                .speedup_over(&single),
        );
    }
    t.push(vec![
        "NUMA-GPU".into(),
        "0.00%".into(),
        format!("{:.2}x", geomean(base_speed.iter().copied())),
        "1.00x".into(),
    ]);
    // Paper sizes 0.5/1/2/4 GB per GPU, scaled.
    for paper_gib_halves in [1u64, 2, 4, 8] {
        let paper_bytes = paper_gib_halves * (1 << 29);
        let rdc_bytes = paper_bytes / base_cfg.capacity_scale;
        let carve_frac = rdc_bytes as f64 / base_cfg.mem_bytes_per_gpu as f64;
        let mut speed = Vec::new();
        let mut slow = Vec::new();
        for spec in c.specs() {
            let single = c.design_result(&spec, Design::SingleGpu);
            let mut sim = SimConfig::new(Design::CarveHwc);
            sim.cfg = base_cfg.clone();
            sim.rdc_bytes = Some(rdc_bytes);
            speed.push(c.result(&spec, &sim).speedup_over(&single));
            // (b) capacity loss in isolation: NUMA-GPU with the matching
            // fraction of the *touched footprint* spilled to system memory.
            let no_spill = c.design_result(&spec, Design::NumaGpu);
            let mut spill_sim = SimConfig::new(Design::NumaGpu);
            spill_sim.cfg = base_cfg.clone();
            spill_sim.spill_fraction = carve_frac;
            slow.push(c.result(&spec, &spill_sim).performance_vs(&no_spill));
        }
        t.push(vec![
            format!("CARVE-{:.1}GB", paper_bytes as f64 / (1u64 << 30) as f64),
            format!("{:.2}%", 100.0 * carve_frac),
            format!("{:.2}x", geomean(speed.iter().copied())),
            format!("{:.2}x", geomean(slow.iter().copied())),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> Campaign {
        let mut c = Campaign::new();
        for spec in &mut c.specs {
            spec.shape.kernels = 2;
            spec.shape.ctas = 16;
            spec.shape.instrs_per_warp = 30;
        }
        c
    }

    #[test]
    fn table4_reproduces_paper_orders_of_magnitude() {
        let t = table4();
        assert_eq!(t.rows.len(), 2);
        let rendered = t.render();
        assert!(rendered.contains("us"), "L2 costs are microseconds");
        assert!(rendered.contains("ms"), "RDC costs are milliseconds");
    }

    #[test]
    fn fig04_covers_all_workloads_and_partitions() {
        let mut c = tiny_campaign();
        let t = fig04(&mut c);
        assert_eq!(t.rows.len(), 20);
        for row in &t.rows {
            let sum: f64 = row[1..4]
                .iter()
                .map(|s| s.trim_end_matches('%').parse::<f64>().unwrap())
                .sum();
            assert!((sum - 100.0).abs() < 0.5, "{row:?}");
        }
    }

    #[test]
    fn fig05_shared_footprints_exceed_llc_for_table_workloads() {
        let mut c = tiny_campaign();
        let t = fig05(&mut c);
        let xs = t
            .rows
            .iter()
            .find(|r| r[0] == "XSBench")
            .expect("XSBench row");
        let ratio: f64 = xs[3].trim_end_matches('x').parse().unwrap();
        assert!(ratio > 10.0, "XSBench shared footprint must dwarf the LLC");
    }

    #[test]
    fn fig08_carve_column_below_baseline_on_average() {
        let mut c = tiny_campaign();
        let t = fig08(&mut c);
        let mean = t.rows.last().expect("mean row");
        let base: f64 = mean[1].trim_end_matches('%').parse().unwrap();
        let carve: f64 = mean[2].trim_end_matches('%').parse().unwrap();
        assert!(carve < base, "CARVE {carve}% !< baseline {base}%");
    }
}
