//! Deterministic, panic-isolated parallel map for fanning independent
//! simulations across threads.
//!
//! Every `System` is fully self-contained (no globals, no shared RNG), so
//! campaign points can run concurrently; determinism is preserved because
//! results are returned in input order regardless of which thread finishes
//! first. The harness is first-party (`std::thread::scope` + an atomic
//! work index) since the workspace vendors no external crates.
//!
//! [`parallel_map_catch`] is the fault-tolerant core: a panicking point is
//! caught with `catch_unwind`, optionally retried (`CARVE_RETRIES`), and
//! reported as an `Err` cell carrying the panic payload — one poisoned
//! design point no longer kills a multi-hour grid. [`parallel_map`] keeps
//! the original all-or-nothing contract on top of it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once};

/// Worker-thread count: `CARVE_THREADS` when set (min 1), otherwise the
/// machine's available parallelism. An unparsable `CARVE_THREADS` falls
/// back to auto-detection with a one-line stderr warning naming the bad
/// value (warned once per process, not once per campaign).
pub fn thread_count() -> usize {
    match std::env::var("CARVE_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => return n.max(1),
            Err(_) => {
                static WARN: Once = Once::new();
                WARN.call_once(|| {
                    eprintln!(
                        "warning: CARVE_THREADS={v:?} is not a thread count; \
                         falling back to available parallelism"
                    );
                });
            }
        },
        Err(std::env::VarError::NotPresent) => {}
        Err(e @ std::env::VarError::NotUnicode(_)) => {
            static WARN: Once = Once::new();
            WARN.call_once(|| {
                eprintln!("warning: CARVE_THREADS is unreadable ({e}); falling back");
            });
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Bounded retry count for failed points: `CARVE_RETRIES` (default 0, i.e.
/// one attempt and no retries). An unparsable value warns and uses the
/// default.
pub fn retries_from_env() -> usize {
    match std::env::var("CARVE_RETRIES") {
        Err(_) => 0,
        Ok(v) => v.trim().parse::<usize>().unwrap_or_else(|_| {
            static WARN: Once = Once::new();
            WARN.call_once(|| {
                eprintln!("warning: CARVE_RETRIES={v:?} is not a retry count; using 0");
            });
            0
        }),
    }
}

/// Base delay of the first retry; each further retry doubles it.
const BACKOFF_BASE_MS: u64 = 50;
/// Ceiling on any single retry delay.
const BACKOFF_CAP_MS: u64 = 2_000;

/// Delay before retry `attempt` (0-based) of the work item identified by
/// `seed`: exponential (50ms, 100ms, … capped at 2s) with *deterministic*
/// equal-jitter — the random half is drawn from a `Stream` keyed on
/// (seed, attempt), so a re-run of the same campaign sleeps the same
/// schedule. Jitter de-synchronizes retries across worker threads (a grid
/// whose points all fail at once must not retry in lockstep) without
/// introducing wall-clock randomness into an otherwise reproducible run.
pub fn backoff_delay(attempt: usize, seed: u64) -> std::time::Duration {
    let exp = u32::try_from(attempt.min(10)).expect("bounded above");
    let full = BACKOFF_BASE_MS
        .saturating_mul(1u64 << exp)
        .min(BACKOFF_CAP_MS);
    let half = full / 2;
    let jitter = sim_core::rng::Stream::from_parts(&[seed, attempt as u64, 0x042a_c0ff])
        .gen_range(0, half + 1);
    std::time::Duration::from_millis(half + jitter)
}

/// Renders a `catch_unwind` payload as the panic message it carried.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Applies `f` to every item (by reference, so failed attempts can be
/// retried), fanning across [`thread_count`] threads. Results come back
/// **in input order** — byte-for-byte what a sequential map would produce,
/// independent of scheduling.
///
/// A panicking `f` is caught and re-invoked up to `retries` more times;
/// if every attempt panics, that cell is `Err(message)` carrying the last
/// panic's payload while every other cell completes normally. No locks are
/// held across `f`, so a panic cannot poison the harness.
pub fn parallel_map_catch<T, R, F>(items: &[T], retries: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let run_one = |index: usize, item: &T| -> Result<R, String> {
        let mut last = String::new();
        for attempt in 0..=retries {
            if attempt > 0 {
                // A panic is treated as transient (a poisoned point may be
                // an environmental hiccup); back off before re-running so
                // simultaneous failures across workers do not retry in
                // lockstep. The item index seeds the jitter: deterministic
                // per cell, different across cells.
                std::thread::sleep(backoff_delay(attempt - 1, index as u64));
            }
            match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(r) => return Ok(r),
                Err(payload) => last = panic_message(payload.as_ref()),
            }
        }
        Err(last)
    };
    let n = items.len();
    let threads = thread_count().min(n);
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| run_one(i, item))
            .collect();
    }
    let results: Vec<Mutex<Option<Result<R, String>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // The catch_unwind inside run_one guarantees no panic can
                // unwind through this lock, so slots never poison.
                let out = run_one(i, &items[i]);
                *results[i].lock().expect("result slot never poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot never poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Applies `f` to every item, fanning across [`thread_count`] threads, and
/// returns the results **in input order**.
///
/// # Panics
///
/// If `f` panics for any item, the rest of the grid still completes, then
/// this re-panics with the first failing item's message. Use
/// [`parallel_map_catch`] to keep failed cells instead.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    // Hand out items by moving them through a slot so `f` keeps its
    // by-value signature; each index is claimed exactly once.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results = parallel_map_catch(&work, 0, |slot| {
        let item = slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("each index claimed once");
        f(item)
    });
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|msg| panic!("parallel_map item {i} panicked: {msg}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(items.clone(), |x| x * x);
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(parallel_map(Vec::<u64>::new(), |x| x), Vec::<u64>::new());
        assert_eq!(parallel_map(vec![7u64], |x| x + 1), vec![8]);
    }

    #[test]
    fn matches_sequential_under_forced_thread_counts() {
        // The map must be scheduling-independent; exercise the sequential
        // fallback path and the threaded path on the same input.
        let items: Vec<u64> = (0..64).map(|i| i * 3 + 1).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 0xA5).collect();
        let par = parallel_map(items, |x| x.wrapping_mul(x) ^ 0xA5);
        assert_eq!(par, seq);
    }

    #[test]
    fn one_panicking_item_becomes_a_failed_cell_and_the_rest_complete() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map_catch(&items, 0, |&x| {
            assert!(x != 13, "unlucky point {x}");
            x * 2
        });
        assert_eq!(out.len(), 64);
        for (i, r) in out.iter().enumerate() {
            if i == 13 {
                let msg = r.as_ref().expect_err("item 13 must fail");
                assert!(msg.contains("unlucky point 13"), "{msg:?}");
            } else {
                assert_eq!(*r.as_ref().expect("others succeed"), i as u64 * 2);
            }
        }
    }

    #[test]
    fn bounded_retry_reruns_failed_points() {
        // Fails on the first attempt for every item, succeeds on retry.
        let attempts: Vec<AtomicU32> = (0..8).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..8).collect();
        let out = parallel_map_catch(&items, 1, |&i| {
            if attempts[i].fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient failure on {i}");
            }
            i * 10
        });
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r.as_ref().expect("retry must succeed"), i * 10);
            assert_eq!(attempts[i].load(Ordering::SeqCst), 2);
        }
    }

    #[test]
    fn exhausted_retries_report_the_last_panic() {
        let out = parallel_map_catch(&[1u32], 2, |_| -> u32 { panic!("always fails") });
        let msg = out[0].as_ref().expect_err("must exhaust retries");
        assert!(msg.contains("always fails"));
    }

    #[test]
    #[should_panic(expected = "boom on 3")]
    fn parallel_map_still_panics_after_grid_completes() {
        let _ = parallel_map((0..8u32).collect::<Vec<_>>(), |x| {
            assert!(x != 3, "boom on {x}");
            x
        });
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        // Same (attempt, seed) → same delay, every run.
        assert_eq!(backoff_delay(2, 7), backoff_delay(2, 7));
        // Different seeds de-synchronize within the same attempt window.
        let spread: std::collections::BTreeSet<_> =
            (0..32).map(|seed| backoff_delay(3, seed)).collect();
        assert!(spread.len() > 1, "jitter must vary across seeds");
        for attempt in 0..12 {
            let d = backoff_delay(attempt, 1).as_millis() as u64;
            let full = (BACKOFF_BASE_MS << attempt.min(10)).min(BACKOFF_CAP_MS);
            // Equal-jitter envelope: [full/2, full].
            assert!(d >= full / 2 && d <= full, "attempt {attempt}: {d}ms");
        }
        // The cap holds even for absurd attempt counts.
        assert!(backoff_delay(usize::MAX, 0).as_millis() as u64 <= BACKOFF_CAP_MS);
    }

    #[test]
    fn panic_message_extracts_both_payload_shapes() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(s.as_ref()), "static str");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(s.as_ref()), "owned");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u8);
        assert_eq!(panic_message(s.as_ref()), "non-string panic payload");
    }
}
