//! Deterministic parallel map for fanning independent simulations across
//! threads.
//!
//! Every `System` is fully self-contained (no globals, no shared RNG), so
//! campaign points can run concurrently; determinism is preserved because
//! results are returned in input order regardless of which thread finishes
//! first. The harness is first-party (`std::thread::scope` + an atomic
//! work index) since the workspace vendors no external crates.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-thread count: `CARVE_THREADS` when set (min 1), otherwise the
/// machine's available parallelism.
pub fn thread_count() -> usize {
    if let Some(n) = std::env::var("CARVE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item, fanning across [`thread_count`] threads, and
/// returns the results **in input order** — byte-for-byte the same output
/// a sequential map would produce, independent of scheduling.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = thread_count().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each index claimed once");
                let out = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(items.clone(), |x| x * x);
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(parallel_map(Vec::<u64>::new(), |x| x), Vec::<u64>::new());
        assert_eq!(parallel_map(vec![7u64], |x| x + 1), vec![8]);
    }

    #[test]
    fn matches_sequential_under_forced_thread_counts() {
        // The map must be scheduling-independent; exercise the sequential
        // fallback path and the threaded path on the same input.
        let items: Vec<u64> = (0..64).map(|i| i * 3 + 1).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 0xA5).collect();
        let par = parallel_map(items, |x| x.wrapping_mul(x) ^ 0xA5);
        assert_eq!(par, seq);
    }
}
