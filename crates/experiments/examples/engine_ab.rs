//! A/B wall-clock comparison of the event-skip and stepping engines on a
//! single campaign point, at full workload scale.
//!
//! ```text
//! cargo run --release -p experiments --example engine_ab [workload] [design-label]
//! ```
//!
//! Defaults to Lulesh under CARVE-HWC. Asserts that both engines produce
//! identical counters before reporting the speedup.

use carve_system::{run_with_profile_mode, workloads, Design, EngineMode, ScaledConfig, SimConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args.first().map(String::as_str).unwrap_or("Lulesh");
    let label = args.get(1).map(String::as_str).unwrap_or("CARVE-HWC");
    let Some(spec) = workloads::by_name(workload) else {
        eprintln!("error: unknown workload '{workload}' (try `carve-sim list`)");
        std::process::exit(2);
    };
    let Some(design) = Design::all().into_iter().find(|d| d.label() == label) else {
        let labels: Vec<&str> = Design::all().iter().map(|d| d.label()).collect();
        eprintln!(
            "error: unknown design '{label}' (one of: {})",
            labels.join(", ")
        );
        std::process::exit(2);
    };
    let sim = SimConfig::with_cfg(design, ScaledConfig::default());

    let t0 = std::time::Instant::now();
    let skip = run_with_profile_mode(&spec, &sim, None, EngineMode::EventSkip);
    let skip_s = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let step = run_with_profile_mode(&spec, &sim, None, EngineMode::Step);
    let step_s = t1.elapsed().as_secs_f64();

    assert_eq!(skip.cycles, step.cycles, "engines disagree on cycles");
    assert_eq!(skip.instructions, step.instructions);
    assert_eq!(skip.remote_serviced, step.remote_serviced);
    assert_eq!(skip.rdc.hits, step.rdc.hits);
    println!(
        "{workload} under {label}: {} cycles, {} instrs",
        skip.cycles, skip.instructions
    );
    println!("  event-skip: {skip_s:7.2}s");
    println!("  stepping:   {step_s:7.2}s");
    println!("  speedup:    {:7.2}x", step_s / skip_s);
}
