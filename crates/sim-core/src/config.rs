//! System configuration.
//!
//! [`BaselineConfig`] records the paper's Table III parameters verbatim
//! (4 GPUs, 64 SMs each, 2 MB pages, 8 MB L2 per GPU, 64 GB/s NVLink,
//! 1 TB/s HBM, 32 GB memory per GPU). Simulating that machine for four
//! billion warp-instructions is not feasible in a test suite, so every
//! experiment runs a [`ScaledConfig`]: all *capacities* are divided by
//! `capacity_scale` and the machine is narrowed (fewer SMs/warps) with
//! *bandwidths* divided by the same width factor. Because the NUMA
//! phenomena under study are governed by capacity *ratios* (shared
//! footprint vs LLC vs RDC) and bandwidth *ratios* (HBM vs link), the
//! scaled system reproduces the paper's qualitative behaviour.

use crate::units::{gbs_to_bytes_per_cycle, GIB, KIB, MIB};

/// Shape of the inter-GPU interconnect (consumed by `carve-noc`'s
/// topology generators).
///
/// The paper's 4-GPU machine uses [`TopologySpec::AllToAll`] — a
/// dedicated link per GPU pair per direction — which stops being
/// buildable hardware well before 64 GPUs (64×63 = 4032 links). The
/// other variants trade link count for hops so scaling questions beyond
/// the paper's machine become askable. `AllToAll` is the default and
/// reproduces the pairwise-link behaviour bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum TopologySpec {
    /// Dedicated link per GPU pair per direction, plus a private CPU link
    /// pair per GPU (the paper's Table III mesh).
    #[default]
    AllToAll,
    /// One central crossbar switch; every GPU (and the CPU) hangs off it,
    /// so all traffic takes two hops and shares the switch's links.
    Switch,
    /// Bidirectional ring over the GPUs (shortest direction, clockwise on
    /// ties), with a private CPU link pair per GPU.
    Ring,
    /// DGX-style pods: all-to-all links inside each pod, one switch per
    /// pod, and slower pairwise links between pod switches
    /// (`INTER_POD_BW_FACTOR` in `carve-noc`). Private CPU link pair per
    /// GPU.
    Hierarchical {
        /// GPUs per pod; must divide the GPU count evenly.
        pod_size: usize,
    },
}

impl TopologySpec {
    /// Short label used in CLI flags and campaign journal keys:
    /// `all-to-all`, `switch`, `ring`, `hier<pod_size>`.
    pub fn label(self) -> String {
        match self {
            TopologySpec::AllToAll => "all-to-all".into(),
            TopologySpec::Switch => "switch".into(),
            TopologySpec::Ring => "ring".into(),
            TopologySpec::Hierarchical { pod_size } => format!("hier{pod_size}"),
        }
    }

    /// Inverse of [`TopologySpec::label`] (`None` for unknown labels).
    pub fn from_label(label: &str) -> Option<TopologySpec> {
        match label {
            "all-to-all" => Some(TopologySpec::AllToAll),
            "switch" => Some(TopologySpec::Switch),
            "ring" => Some(TopologySpec::Ring),
            _ => {
                let pods = label.strip_prefix("hier")?;
                pods.parse::<usize>()
                    .ok()
                    .filter(|&p| p > 0)
                    .map(|pod_size| TopologySpec::Hierarchical { pod_size })
            }
        }
    }
}

/// The paper's baseline multi-GPU system (Table III), unscaled.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineConfig {
    /// Number of GPU nodes (paper: 4).
    pub num_gpus: usize,
    /// SMs per GPU (paper: 64, for 256 total).
    pub sms_per_gpu: usize,
    /// Maximum resident warps per SM (paper: 64).
    pub warps_per_sm: usize,
    /// GPU core frequency in GHz (paper: 1 GHz).
    pub gpu_freq_ghz: f64,
    /// OS page size in bytes (paper: 2 MB).
    pub page_size: u64,
    /// Cache line size in bytes (paper: 128 B).
    pub line_size: u64,
    /// L1 data cache per SM in bytes (paper: 128 KB, 4 ways).
    pub l1_bytes_per_sm: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 (LLC) per GPU in bytes (paper: 32 MB total across 4 GPUs).
    pub l2_bytes_per_gpu: u64,
    /// L2 associativity (paper: 16 ways).
    pub l2_ways: usize,
    /// Uni-directional inter-GPU link bandwidth in GB/s (paper: 64).
    pub inter_gpu_link_gbs: f64,
    /// CPU-GPU link bandwidth in GB/s per GPU (paper: 32).
    pub cpu_gpu_link_gbs: f64,
    /// Local DRAM bandwidth per GPU in GB/s (paper: 1 TB/s).
    pub dram_gbs_per_gpu: f64,
    /// DRAM capacity per GPU in bytes (paper: 32 GB).
    pub dram_capacity_per_gpu: u64,
    /// RDC carve-out per GPU in bytes (paper default evaluation: 2 GB).
    pub rdc_bytes_per_gpu: u64,
}

impl Default for BaselineConfig {
    fn default() -> BaselineConfig {
        BaselineConfig {
            num_gpus: 4,
            sms_per_gpu: 64,
            warps_per_sm: 64,
            gpu_freq_ghz: 1.0,
            page_size: 2 * MIB,
            line_size: 128,
            l1_bytes_per_sm: 128 * KIB,
            l1_ways: 4,
            l2_bytes_per_gpu: 8 * MIB,
            l2_ways: 16,
            inter_gpu_link_gbs: 64.0,
            cpu_gpu_link_gbs: 32.0,
            dram_gbs_per_gpu: 1000.0,
            dram_capacity_per_gpu: 32 * GIB,
            rdc_bytes_per_gpu: 2 * GIB,
        }
    }
}

/// Default linear capacity scale (1/256 of the paper machine).
pub const DEFAULT_CAPACITY_SCALE: u64 = 256;
/// Default machine-width scale (64 SMs → 8 SMs per GPU).
pub const DEFAULT_WIDTH_SCALE: u64 = 8;

/// The concrete, scaled configuration consumed by every simulator component.
///
/// Construct via [`ScaledConfig::default`] (paper machine at default scale)
/// or [`ScaledConfig::from_baseline`] for explicit scales, then tweak fields
/// for sweeps (e.g. `cfg.link_bytes_per_cycle /= 2.0` for the Fig 14 sweep).
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledConfig {
    /// Number of GPU nodes.
    pub num_gpus: usize,
    /// SMs per GPU after width scaling.
    pub sms_per_gpu: usize,
    /// Warp slots per SM after width scaling.
    pub warps_per_sm: usize,
    /// Cache line size in bytes (never scaled: 128 B).
    pub line_size: u64,
    /// Page size in bytes after capacity scaling (2 MB / 256 = 8 KB).
    pub page_size: u64,
    /// L1 bytes per SM after capacity scaling.
    pub l1_bytes_per_sm: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 hit latency in cycles.
    pub l1_hit_latency: u64,
    /// L2 bytes per GPU after capacity scaling.
    pub l2_bytes_per_gpu: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Number of independent L2 banks per GPU.
    pub l2_banks: usize,
    /// L2 hit latency in cycles.
    pub l2_hit_latency: u64,
    /// L2 MSHR entries per bank.
    pub l2_mshrs_per_bank: usize,
    /// L1 TLB entries per SM.
    pub l1_tlb_entries: usize,
    /// Shared L2 TLB entries per GPU.
    pub l2_tlb_entries: usize,
    /// Page-table walk latency in cycles.
    pub walk_latency: u64,
    /// DRAM channels per GPU.
    pub dram_channels: usize,
    /// Banks per DRAM channel.
    pub dram_banks_per_channel: usize,
    /// Per-channel data bandwidth in bytes/cycle after width scaling.
    pub dram_channel_bytes_per_cycle: f64,
    /// Row-activate latency (tRCD) in cycles.
    pub dram_t_rcd: u64,
    /// Precharge latency (tRP) in cycles.
    pub dram_t_rp: u64,
    /// Column access latency (tCL) in cycles.
    pub dram_t_cl: u64,
    /// Fixed controller + PHY + on-die network pipeline latency added to
    /// every DRAM access (puts total local HBM latency near the ~300 ns
    /// GPUs observe).
    pub dram_fixed_latency: u64,
    /// Read/write queue depth per channel (paper: 128).
    pub dram_queue_depth: usize,
    /// Write-queue high watermark triggering a drain batch.
    pub dram_write_drain_high: usize,
    /// Write-queue low watermark ending a drain batch.
    pub dram_write_drain_low: usize,
    /// DRAM row-buffer (page) size in bytes.
    pub dram_row_bytes: u64,
    /// Inter-GPU link bandwidth in bytes/cycle per direction (after width
    /// scaling; paper 64 GB/s ÷ 8 = 8 B/cyc).
    pub link_bytes_per_cycle: f64,
    /// Inter-GPU link latency in cycles (one direction).
    pub link_latency: u64,
    /// CPU link bandwidth in bytes/cycle per GPU.
    pub cpu_link_bytes_per_cycle: f64,
    /// CPU link + system memory access latency in cycles.
    pub cpu_link_latency: u64,
    /// Interconnect shape (never scaled; default
    /// [`TopologySpec::AllToAll`] reproduces the paper's pairwise mesh).
    pub topology: TopologySpec,
    /// GPU memory capacity per GPU in bytes after capacity scaling.
    pub mem_bytes_per_gpu: u64,
    /// RDC carve-out per GPU in bytes after capacity scaling (0 = no RDC).
    pub rdc_bytes_per_gpu: u64,
    /// The capacity scale this config was derived with.
    pub capacity_scale: u64,
    /// The width scale this config was derived with.
    pub width_scale: u64,
}

impl Default for ScaledConfig {
    fn default() -> ScaledConfig {
        ScaledConfig::from_baseline(
            &BaselineConfig::default(),
            DEFAULT_CAPACITY_SCALE,
            DEFAULT_WIDTH_SCALE,
        )
    }
}

impl ScaledConfig {
    /// Derives a scaled machine from `base`.
    ///
    /// Capacities (caches, memories, pages) are divided by
    /// `capacity_scale`; machine width (SMs, warps) and bandwidths are
    /// divided by `width_scale`. Latencies are left at paper-machine values.
    ///
    /// # Panics
    ///
    /// Panics if either scale is zero or scales the machine below one
    /// SM / one line-sized page.
    pub fn from_baseline(
        base: &BaselineConfig,
        capacity_scale: u64,
        width_scale: u64,
    ) -> ScaledConfig {
        assert!(
            capacity_scale > 0 && width_scale > 0,
            "scales must be positive"
        );
        let sms_per_gpu = (base.sms_per_gpu as u64 / width_scale).max(1) as usize;
        let warps_per_sm = (base.warps_per_sm as u64 / (width_scale / 2).max(1)).max(2) as usize;
        let page_size = (base.page_size / capacity_scale).max(base.line_size * 4);
        let freq = base.gpu_freq_ghz;
        let ws = width_scale as f64;
        let dram_channels = 8usize;
        let dram_bpc =
            gbs_to_bytes_per_cycle(base.dram_gbs_per_gpu, freq) / ws / dram_channels as f64;
        ScaledConfig {
            num_gpus: base.num_gpus,
            sms_per_gpu,
            warps_per_sm,
            line_size: base.line_size,
            page_size,
            l1_bytes_per_sm: (base.l1_bytes_per_sm / capacity_scale).max(base.line_size * 8),
            l1_ways: base.l1_ways,
            l1_hit_latency: 28,
            l2_bytes_per_gpu: (base.l2_bytes_per_gpu / capacity_scale).max(base.line_size * 32),
            l2_ways: base.l2_ways,
            l2_banks: 4,
            l2_hit_latency: 120,
            l2_mshrs_per_bank: 64,
            l1_tlb_entries: 16,
            l2_tlb_entries: 512,
            walk_latency: 300,
            dram_channels,
            dram_banks_per_channel: 16,
            dram_channel_bytes_per_cycle: dram_bpc,
            dram_t_rcd: 14,
            dram_t_rp: 14,
            dram_t_cl: 14,
            dram_fixed_latency: 250,
            dram_queue_depth: 128,
            dram_write_drain_high: 96,
            dram_write_drain_low: 32,
            dram_row_bytes: 2 * KIB,
            link_bytes_per_cycle: gbs_to_bytes_per_cycle(base.inter_gpu_link_gbs, freq) / ws,
            link_latency: 200,
            cpu_link_bytes_per_cycle: gbs_to_bytes_per_cycle(base.cpu_gpu_link_gbs, freq) / ws,
            cpu_link_latency: 500,
            topology: TopologySpec::AllToAll,
            mem_bytes_per_gpu: base.dram_capacity_per_gpu / capacity_scale,
            rdc_bytes_per_gpu: base.rdc_bytes_per_gpu / capacity_scale,
            capacity_scale,
            width_scale,
        }
    }

    /// Total SMs in the system.
    pub fn total_sms(&self) -> usize {
        self.num_gpus * self.sms_per_gpu
    }

    /// Total L2 capacity across all GPUs in bytes.
    pub fn total_l2_bytes(&self) -> u64 {
        self.l2_bytes_per_gpu * self.num_gpus as u64
    }

    /// Aggregate local DRAM bandwidth per GPU in bytes/cycle.
    pub fn dram_bytes_per_cycle_per_gpu(&self) -> f64 {
        self.dram_channel_bytes_per_cycle * self.dram_channels as f64
    }

    /// Ratio of local DRAM bandwidth to one link's bandwidth; the paper's
    /// headline NUMA differential (≈ 15.6×).
    pub fn numa_bandwidth_ratio(&self) -> f64 {
        self.dram_bytes_per_cycle_per_gpu() / self.link_bytes_per_cycle
    }

    /// Converts a paper-scale byte quantity (e.g. a Table II footprint) to
    /// this configuration's scale.
    pub fn scale_bytes(&self, paper_bytes: u64) -> u64 {
        (paper_bytes / self.capacity_scale).max(self.page_size)
    }

    /// Fraction of GPU memory consumed by the RDC carve-out.
    pub fn rdc_fraction(&self) -> f64 {
        self.rdc_bytes_per_gpu as f64 / self.mem_bytes_per_gpu as f64
    }

    /// OS-visible memory per GPU after the carve-out.
    pub fn os_visible_bytes_per_gpu(&self) -> u64 {
        self.mem_bytes_per_gpu - self.rdc_bytes_per_gpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_preserves_paper_ratios() {
        let cfg = ScaledConfig::default();
        // NUMA bandwidth differential ~ 1000/64 ≈ 15.6x regardless of scale.
        assert!((cfg.numa_bandwidth_ratio() - 1000.0 / 64.0).abs() < 0.01);
        // RDC is 6.25% of GPU memory, as in the paper's 2GB/32GB evaluation.
        assert!((cfg.rdc_fraction() - 0.0625).abs() < 1e-9);
        // Page size scaled 2MB/256 = 8KB.
        assert_eq!(cfg.page_size, 8 * KIB);
        assert_eq!(cfg.num_gpus, 4);
    }

    #[test]
    fn capacity_scaling_divides_sizes() {
        let base = BaselineConfig::default();
        let cfg = ScaledConfig::from_baseline(&base, 1024, 8);
        assert_eq!(cfg.mem_bytes_per_gpu, 32 * GIB / 1024);
        assert_eq!(cfg.rdc_bytes_per_gpu, 2 * GIB / 1024);
        assert_eq!(cfg.l2_bytes_per_gpu, 8 * MIB / 1024);
    }

    #[test]
    fn width_scaling_divides_bandwidth_and_sms() {
        let base = BaselineConfig::default();
        let a = ScaledConfig::from_baseline(&base, 256, 4);
        let b = ScaledConfig::from_baseline(&base, 256, 8);
        assert_eq!(a.sms_per_gpu, 16);
        assert_eq!(b.sms_per_gpu, 8);
        assert!((a.link_bytes_per_cycle / b.link_bytes_per_cycle - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unscaled_config_matches_paper() {
        let cfg = ScaledConfig::from_baseline(&BaselineConfig::default(), 1, 1);
        assert_eq!(cfg.sms_per_gpu, 64);
        assert_eq!(cfg.page_size, 2 * MIB);
        assert!((cfg.link_bytes_per_cycle - 64.0).abs() < 1e-9);
        assert!((cfg.dram_bytes_per_cycle_per_gpu() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn scale_bytes_never_below_page() {
        let cfg = ScaledConfig::default();
        assert_eq!(cfg.scale_bytes(100), cfg.page_size);
        assert_eq!(cfg.scale_bytes(24 * MIB), 24 * MIB / 256);
    }

    #[test]
    #[should_panic(expected = "scales must be positive")]
    fn zero_scale_panics() {
        let _ = ScaledConfig::from_baseline(&BaselineConfig::default(), 0, 1);
    }

    #[test]
    fn topology_labels_round_trip() {
        for t in [
            TopologySpec::AllToAll,
            TopologySpec::Switch,
            TopologySpec::Ring,
            TopologySpec::Hierarchical { pod_size: 4 },
            TopologySpec::Hierarchical { pod_size: 16 },
        ] {
            assert_eq!(TopologySpec::from_label(&t.label()), Some(t));
        }
        assert_eq!(TopologySpec::from_label("bogus"), None);
        assert_eq!(TopologySpec::from_label("hier0"), None);
        assert_eq!(TopologySpec::from_label("hierX"), None);
        assert_eq!(ScaledConfig::default().topology, TopologySpec::AllToAll);
    }

    #[test]
    fn os_visible_memory_excludes_carve_out() {
        let cfg = ScaledConfig::default();
        assert_eq!(
            cfg.os_visible_bytes_per_gpu(),
            cfg.mem_bytes_per_gpu - cfg.rdc_bytes_per_gpu
        );
    }
}
