//! Structured simulation errors.
//!
//! [`SimError`] is the single error type flowing through the fallible
//! simulation APIs (`carve_system::try_run`, campaign journals). Each
//! variant carries enough context to act on: invalid configurations name
//! the offending knob and its value, watchdog stalls carry a
//! component-level diagnostic dump, and checkpoint I/O failures name the
//! file. The infallible entry points wrap these into panics with the same
//! message, so nothing is lost for callers that prefer the old behaviour.

use std::fmt;

/// An error produced by a simulation run or campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The requested configuration cannot describe a real machine. The
    /// message names the offending field, its value, and what would fix it.
    ConfigInvalid {
        /// Actionable description (field, value, remedy).
        message: String,
    },
    /// The engine's watchdog saw no forward progress (no retired warp
    /// instruction and no drained queue entry) for a full cycle budget.
    WatchdogStall {
        /// Cycle at which the stall was detected.
        cycle: u64,
        /// Last cycle at which progress was observed.
        stalled_since: u64,
        /// The configured no-progress budget in cycles.
        budget: u64,
        /// Component-level occupancy dump naming the stuck parts.
        diagnostic: String,
    },
    /// A bounded resource ran out before the run could finish (e.g. the
    /// hard cycle cap).
    ResourceExhausted {
        /// What ran out.
        what: String,
        /// The configured limit that was hit.
        limit: u64,
    },
    /// Reading or writing a campaign checkpoint/journal failed.
    CheckpointIo {
        /// The journal path involved.
        path: String,
        /// The underlying I/O error, stringified.
        message: String,
    },
    /// An injected link outage (fault plan) severed the fabric: some
    /// endpoint pair no longer has any route, so the run cannot degrade
    /// gracefully and terminates cleanly instead of hanging.
    FabricPartitioned {
        /// Label of the source node of the first unroutable pair
        /// (e.g. `gpu0`, `cpu`).
        from: String,
        /// Label of the destination node of the first unroutable pair.
        to: String,
        /// Cycle at which the partitioning outage was applied.
        cycle: u64,
    },
    /// The protocol sanitizer (`CARVE_SANITIZE=1` / `SimConfig::sanitize`)
    /// caught a coherence, lifecycle, or timing invariant being broken.
    /// Only the *first* violation of a run is reported: later checks may
    /// be cascading damage from the first.
    SanitizerViolation {
        /// Short machine-stable name of the broken invariant
        /// (e.g. `gpu-vi-single-writer`, `noc-conservation`).
        invariant: String,
        /// Cycle at which the violation was detected.
        cycle: u64,
        /// What was expected vs. observed, plus the component snapshot
        /// dump at detection time.
        detail: String,
    },
}

impl SimError {
    /// Convenience constructor for [`SimError::ConfigInvalid`].
    pub fn config(message: impl Into<String>) -> SimError {
        SimError::ConfigInvalid {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`SimError::CheckpointIo`].
    pub fn checkpoint(path: impl Into<String>, err: &std::io::Error) -> SimError {
        SimError::CheckpointIo {
            path: path.into(),
            message: err.to_string(),
        }
    }

    /// Whether retrying the same run could plausibly succeed. Watchdog
    /// stalls (timing/livelock, may clear under a different interleaving
    /// of host threads' wall-clock) and checkpoint I/O (transient file
    /// system pressure) are transient; configuration, sanitizer,
    /// resource-cap, and fabric-partition failures are deterministic
    /// properties of the (config, seed) pair and fail the same way every
    /// time — campaign retry loops fail fast on those.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SimError::WatchdogStall { .. } | SimError::CheckpointIo { .. }
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ConfigInvalid { message } => {
                write!(f, "invalid configuration: {message}")
            }
            SimError::WatchdogStall {
                cycle,
                stalled_since,
                budget,
                diagnostic,
            } => {
                write!(
                    f,
                    "watchdog: no forward progress between cycle {stalled_since} and cycle \
                     {cycle} (budget {budget}); stuck components:\n{diagnostic}"
                )
            }
            SimError::ResourceExhausted { what, limit } => {
                write!(f, "resource exhausted: {what} (limit {limit})")
            }
            SimError::CheckpointIo { path, message } => {
                write!(f, "checkpoint I/O failed for {path}: {message}")
            }
            SimError::FabricPartitioned { from, to, cycle } => {
                write!(
                    f,
                    "fabric partitioned: injected link outage at cycle {cycle} left no route \
                     from {from} to {to}"
                )
            }
            SimError::SanitizerViolation {
                invariant,
                cycle,
                detail,
            } => {
                write!(
                    f,
                    "sanitizer: invariant `{invariant}` violated at cycle {cycle}: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_variant_context() {
        let e = SimError::config("sms_per_gpu is 0; set it to at least 1");
        assert!(e.to_string().contains("sms_per_gpu"));
        let e = SimError::WatchdogStall {
            cycle: 5000,
            stalled_since: 1000,
            budget: 4000,
            diagnostic: "gpu0: outbox=3".into(),
        };
        let s = e.to_string();
        assert!(s.contains("cycle 1000"));
        assert!(s.contains("budget 4000"));
        assert!(s.contains("outbox=3"));
        let e = SimError::ResourceExhausted {
            what: "simulated cycles".into(),
            limit: 80,
        };
        assert!(e.to_string().contains("limit 80"));
        let e = SimError::CheckpointIo {
            path: "results/x.journal".into(),
            message: "permission denied".into(),
        };
        assert!(e.to_string().contains("x.journal"));
        let e = SimError::SanitizerViolation {
            invariant: "gpu-vi-single-writer".into(),
            cycle: 420,
            detail: "line 0x80 written at home 0 with sharer gpu1 still granted".into(),
        };
        let s = e.to_string();
        assert!(s.contains("gpu-vi-single-writer"));
        assert!(s.contains("cycle 420"));
        assert!(s.contains("0x80"));
        let e = SimError::FabricPartitioned {
            from: "gpu0".into(),
            to: "gpu3".into(),
            cycle: 777,
        };
        let s = e.to_string();
        assert!(s.contains("gpu0"));
        assert!(s.contains("gpu3"));
        assert!(s.contains("cycle 777"));
    }

    #[test]
    fn transience_classification() {
        assert!(SimError::WatchdogStall {
            cycle: 1,
            stalled_since: 0,
            budget: 1,
            diagnostic: String::new(),
        }
        .is_transient());
        assert!(SimError::CheckpointIo {
            path: "x".into(),
            message: "y".into(),
        }
        .is_transient());
        assert!(!SimError::config("bad").is_transient());
        assert!(!SimError::SanitizerViolation {
            invariant: "noc-conservation".into(),
            cycle: 1,
            detail: String::new(),
        }
        .is_transient());
        assert!(!SimError::FabricPartitioned {
            from: "gpu0".into(),
            to: "cpu".into(),
            cycle: 1,
        }
        .is_transient());
        assert!(!SimError::ResourceExhausted {
            what: "cycles".into(),
            limit: 1,
        }
        .is_transient());
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SimError::config("x"));
    }
}
