//! Cycle-accounting profiler ledger (DESIGN.md §14).
//!
//! The profiler classifies every simulated SM cycle into exactly one
//! [`StallCat`]: the categories are *exclusive* and *exhaustive*, so for
//! each GPU the per-category cycle counts sum to `cycles × SMs` — the
//! invariant the system tests pin on all 20 workloads. The types here are
//! engine-agnostic bookkeeping: the `carve-system` crate owns the
//! classification rules (what state maps to which category) and feeds the
//! [`StallLedger`]; DRAM channels and NoC links contribute their own
//! occupancy breakdowns ([`DramChannelProfile`], [`LinkOccupancy`]).
//!
//! Like the telemetry sampler, profiling is a read-only observer: a run
//! with the profiler on produces byte-identical journal lines to the same
//! run with it off, under both engines.

use crate::stats::percent;

/// Number of exclusive stall categories.
pub const NUM_STALL_CATS: usize = 11;

/// Exclusive classification of one SM-cycle.
///
/// Priority when several conditions hold is fixed by the classifier in
/// `carve-system` (structural stalls first, then the farthest-downstream
/// cause in flight); every cycle lands in exactly one bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum StallCat {
    /// The SM issued an instruction this cycle, or its warps were occupied
    /// by in-flight compute (pipeline busy, not stalled on memory).
    Issuing = 0,
    /// No resident or queued work (kernel launch gaps, load imbalance).
    Idle = 1,
    /// Warps waiting on a miss still inside the L1/bank pipeline.
    L1Miss = 2,
    /// Warps waiting on an L2 fill with no downstream request in flight.
    L2Miss = 3,
    /// Warps waiting on local DRAM reads.
    LocalDram = 4,
    /// Warps waiting on plain remote-home reads crossing the fabric.
    RemoteLink = 5,
    /// Warps waiting on a re-fetch of a line dropped by a hardware
    /// coherence invalidation.
    CoherenceInvalidate = 6,
    /// Warps waiting on a re-fetch after a software-coherence epoch flush
    /// made the RDC copy stale.
    EpochFlush = 7,
    /// Warps waiting on a remote fetch caused by an RDC capacity miss
    /// (including the probe itself).
    RdcMiss = 8,
    /// Structural: every L2 MSHR entry occupied; no new miss can issue.
    MshrFull = 9,
    /// Structural: the outbox to the fabric is full (link back-pressure).
    LinkQueue = 10,
}

impl StallCat {
    /// All categories, in index order.
    pub const ALL: [StallCat; NUM_STALL_CATS] = [
        StallCat::Issuing,
        StallCat::Idle,
        StallCat::L1Miss,
        StallCat::L2Miss,
        StallCat::LocalDram,
        StallCat::RemoteLink,
        StallCat::CoherenceInvalidate,
        StallCat::EpochFlush,
        StallCat::RdcMiss,
        StallCat::MshrFull,
        StallCat::LinkQueue,
    ];

    /// Kebab-case label used in tables, folded stacks and CSV headers.
    pub fn label(self) -> &'static str {
        match self {
            StallCat::Issuing => "issuing",
            StallCat::Idle => "idle",
            StallCat::L1Miss => "l1-miss",
            StallCat::L2Miss => "l2-miss",
            StallCat::LocalDram => "local-dram",
            StallCat::RemoteLink => "remote-link",
            StallCat::CoherenceInvalidate => "coherence-invalidate",
            StallCat::EpochFlush => "epoch-flush",
            StallCat::RdcMiss => "rdc-miss",
            StallCat::MshrFull => "mshr-full",
            StallCat::LinkQueue => "link-queue",
        }
    }

    /// Array index of this category.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`StallCat::index`].
    pub fn from_index(i: usize) -> Option<StallCat> {
        StallCat::ALL.get(i).copied()
    }
}

/// One (interval × GPU) row of the stacked-stall timeline extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallIntervalRecord {
    /// First cycle of the interval (inclusive).
    pub start: u64,
    /// Last cycle of the interval (exclusive).
    pub end: u64,
    /// GPU index.
    pub gpu: usize,
    /// SM-cycles charged to each category inside `[start, end)`, indexed
    /// by [`StallCat::index`]. Sums to `(end - start) × SMs`.
    pub stalls: [u64; NUM_STALL_CATS],
}

impl StallIntervalRecord {
    /// CSV header matching [`StallIntervalRecord::csv_line`].
    pub const CSV_HEADER: &'static str = "start,end,gpu,issuing,idle,l1_miss,l2_miss,local_dram,\
                                          remote_link,coherence_invalidate,epoch_flush,rdc_miss,\
                                          mshr_full,link_queue";

    /// One CSV row (no trailing newline).
    pub fn csv_line(&self) -> String {
        let mut out = format!("{},{},{}", self.start, self.end, self.gpu);
        for v in self.stalls {
            out.push(',');
            out.push_str(&v.to_string());
        }
        out
    }
}

/// The cycle-accounting ledger: per-GPU exclusive category totals plus an
/// optional per-interval breakdown.
///
/// The classifier charges SM-cycles with [`StallLedger::add`] and marks
/// interval boundaries with [`StallLedger::flush_interval`]; charges are
/// monotone (the only subtraction is [`StallLedger::retract`], used to
/// un-charge the final tick so totals land exactly on `cycles × SMs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallLedger {
    /// Per-GPU totals, indexed by [`StallCat::index`].
    gpus: Vec<[u64; NUM_STALL_CATS]>,
    /// Per-GPU accumulation for the currently open interval.
    cur: Vec<[u64; NUM_STALL_CATS]>,
    /// Closed interval rows, in (interval, GPU) order.
    intervals: Vec<StallIntervalRecord>,
}

impl StallLedger {
    /// Creates an empty ledger for `num_gpus` GPUs.
    pub fn new(num_gpus: usize) -> StallLedger {
        StallLedger {
            gpus: vec![[0; NUM_STALL_CATS]; num_gpus],
            cur: vec![[0; NUM_STALL_CATS]; num_gpus],
            intervals: Vec::new(),
        }
    }

    /// Charges `cycles` SM-cycles of `cat` to `gpu`.
    pub fn add(&mut self, gpu: usize, cat: StallCat, cycles: u64) {
        self.gpus[gpu][cat.index()] += cycles;
        self.cur[gpu][cat.index()] += cycles;
    }

    /// Un-charges `cycles` SM-cycles of `cat` from `gpu` (final-tick
    /// correction; the cycles must still be in the open interval).
    pub fn retract(&mut self, gpu: usize, cat: StallCat, cycles: u64) {
        self.gpus[gpu][cat.index()] -= cycles;
        self.cur[gpu][cat.index()] -= cycles;
    }

    /// Closes the interval `[start, end)`: emits one row per GPU from the
    /// open accumulation and resets it. Empty intervals (`start == end`)
    /// are skipped.
    pub fn flush_interval(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        for (gpu, cur) in self.cur.iter_mut().enumerate() {
            self.intervals.push(StallIntervalRecord {
                start,
                end,
                gpu,
                stalls: *cur,
            });
            *cur = [0; NUM_STALL_CATS];
        }
    }

    /// Per-GPU category totals.
    pub fn gpu_totals(&self) -> &[[u64; NUM_STALL_CATS]] {
        &self.gpus
    }

    /// Consumes the ledger into its totals and interval rows.
    pub fn into_parts(self) -> (Vec<[u64; NUM_STALL_CATS]>, Vec<StallIntervalRecord>) {
        (self.gpus, self.intervals)
    }
}

/// Occupancy breakdown of one DRAM channel.
///
/// Row-hit/row-miss cycles are *bank-time* (banks within a channel overlap,
/// so their sum can exceed wall-clock cycles); bus cycles are serialized
/// channel time. Refresh is not modeled and always reads 0 — the field
/// exists so the taxonomy matches real-HBM breakdowns.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DramChannelProfile {
    /// Owning GPU.
    pub gpu: usize,
    /// Channel index within the GPU.
    pub channel: usize,
    /// Bank-cycles spent on row-buffer-hit accesses (CAS only).
    pub row_hit_cycles: u64,
    /// Bank-cycles spent on row-buffer-miss accesses (precharge + activate
    /// + CAS).
    pub row_miss_cycles: u64,
    /// Channel-cycles spent bursting data on the bus.
    pub bus_cycles: f64,
    /// Refresh cycles (always 0: refresh is not modeled).
    pub refresh_cycles: u64,
}

impl DramChannelProfile {
    /// Idle channel-cycles over a run of `total` cycles (bus-occupancy
    /// complement; saturating because bank-time overlaps).
    pub fn idle_cycles(&self, total: u64) -> f64 {
        (total as f64 - self.bus_cycles).max(0.0)
    }
}

/// Occupancy breakdown of one NoC link.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkOccupancy {
    /// Human-readable endpoint label (e.g. `gpu0->gpu1`).
    pub label: String,
    /// Cycles spent serializing packets at *nominal* bandwidth.
    pub ser_cycles: f64,
    /// Cycles packets spent queued behind earlier traffic.
    pub queue_cycles: f64,
    /// Extra serialization cycles caused by fault-degraded bandwidth
    /// (actual minus nominal serialization time).
    pub degraded_cycles: f64,
}

impl LinkOccupancy {
    /// Busy fraction of the link over `total` cycles (serialization time,
    /// including degradation, over wall-clock).
    pub fn utilization(&self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            (self.ser_cycles + self.degraded_cycles) / total as f64
        }
    }
}

/// The complete cycle-accounting report of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Simulated cycles of the run.
    pub cycles: u64,
    /// SMs per GPU (the invariant divisor).
    pub sms_per_gpu: usize,
    /// Per-GPU category totals, indexed by [`StallCat::index`]. Each row
    /// sums to `cycles × sms_per_gpu` exactly.
    pub gpus: Vec<[u64; NUM_STALL_CATS]>,
    /// Per-interval stacked-stall rows (empty unless interval sampling was
    /// enabled alongside the profiler).
    pub intervals: Vec<StallIntervalRecord>,
    /// Per-DRAM-channel occupancy, in (GPU, channel) order.
    pub dram: Vec<DramChannelProfile>,
    /// Per-link occupancy, in topology edge order.
    pub links: Vec<LinkOccupancy>,
}

impl ProfileReport {
    /// Category totals across all GPUs.
    pub fn totals(&self) -> [u64; NUM_STALL_CATS] {
        let mut t = [0u64; NUM_STALL_CATS];
        for gpu in &self.gpus {
            for (i, v) in gpu.iter().enumerate() {
                t[i] += v;
            }
        }
        t
    }

    /// Total SM-cycles accounted (should equal `cycles × sms_per_gpu ×
    /// gpus.len()`).
    pub fn accounted(&self) -> u64 {
        self.totals().iter().sum()
    }

    /// The stall categories (everything but [`StallCat::Issuing`]) sorted
    /// by descending share of total SM-cycles, zero-cycle categories
    /// dropped.
    pub fn top_stalls(&self) -> Vec<(StallCat, f64)> {
        let totals = self.totals();
        let all: u64 = totals.iter().sum();
        if all == 0 {
            return Vec::new();
        }
        let mut v: Vec<(StallCat, f64)> = StallCat::ALL
            .into_iter()
            .filter(|&c| c != StallCat::Issuing && totals[c.index()] > 0)
            .map(|c| (c, totals[c.index()] as f64 / all as f64))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v
    }

    /// `stalls: remote-link 41% | local-dram 22% | idle 9%` — the top-`n`
    /// stall summary appended to the run one-liner. Empty string when
    /// nothing stalled.
    pub fn stall_summary(&self, n: usize) -> String {
        let top = self.top_stalls();
        if top.is_empty() {
            return String::new();
        }
        let parts: Vec<String> = top
            .iter()
            .take(n)
            .map(|(c, f)| format!("{} {:.0}%", c.label(), 100.0 * f))
            .collect();
        format!("stalls: {}", parts.join(" | "))
    }

    /// Top-down breakdown table: one row per category with total
    /// SM-cycles, overall share, and per-GPU shares (first eight GPUs).
    pub fn table_string(&self) -> String {
        let mut out = String::new();
        let totals = self.totals();
        let all: u64 = totals.iter().sum();
        let shown = self.gpus.len().min(8);
        out.push_str(&format!(
            "{:<22} {:>14} {:>7}",
            "category", "sm-cycles", "share"
        ));
        for g in 0..shown {
            out.push_str(&format!(" {:>7}", format!("gpu{g}")));
        }
        out.push('\n');
        for cat in StallCat::ALL {
            let i = cat.index();
            out.push_str(&format!(
                "{:<22} {:>14} {:>6.1}%",
                cat.label(),
                totals[i],
                percent(totals[i], all)
            ));
            for gpu in self.gpus.iter().take(shown) {
                let gpu_all: u64 = gpu.iter().sum();
                out.push_str(&format!(" {:>6.1}%", percent(gpu[i], gpu_all)));
            }
            out.push('\n');
        }
        out
    }

    /// Folded-stacks flamegraph output: one `root;gpuN;category count`
    /// line per non-zero (GPU, category) cell, plus `root;dram;...` and
    /// `root;link;...` stacks for the channel and link breakdowns.
    pub fn folded_string(&self, root: &str) -> String {
        let mut out = String::new();
        for (g, gpu) in self.gpus.iter().enumerate() {
            for cat in StallCat::ALL {
                let v = gpu[cat.index()];
                if v > 0 {
                    out.push_str(&format!("{root};gpu{g};{} {v}\n", cat.label()));
                }
            }
        }
        for d in &self.dram {
            for (leaf, v) in [
                ("row-hit", d.row_hit_cycles),
                ("row-miss", d.row_miss_cycles),
                ("bus", d.bus_cycles.round() as u64),
                ("refresh", d.refresh_cycles),
            ] {
                if v > 0 {
                    out.push_str(&format!(
                        "{root};dram;gpu{};ch{};{leaf} {v}\n",
                        d.gpu, d.channel
                    ));
                }
            }
        }
        for l in &self.links {
            for (leaf, v) in [
                ("serialization", l.ser_cycles.round() as u64),
                ("queueing", l.queue_cycles.round() as u64),
                ("fault-degraded", l.degraded_cycles.round() as u64),
            ] {
                if v > 0 {
                    out.push_str(&format!("{root};link;{};{leaf} {v}\n", l.label));
                }
            }
        }
        out
    }

    /// One-line compact encoding for campaign profile sidecars. Interval
    /// rows are not encoded (they live in the stall CSV); DRAM and link
    /// occupancy are aggregated to machine-wide totals.
    pub fn encode_compact(&self) -> String {
        let mut out = format!("cycles={}|sms={}", self.cycles, self.sms_per_gpu);
        for (g, gpu) in self.gpus.iter().enumerate() {
            let cells: Vec<String> = gpu.iter().map(u64::to_string).collect();
            out.push_str(&format!("|gpu{g}={}", cells.join(",")));
        }
        let (mut hit, mut miss, mut bus) = (0u64, 0u64, 0f64);
        for d in &self.dram {
            hit += d.row_hit_cycles;
            miss += d.row_miss_cycles;
            bus += d.bus_cycles;
        }
        out.push_str(&format!("|dram={hit},{miss},{bus:.1}"));
        let (mut ser, mut queue, mut deg) = (0f64, 0f64, 0f64);
        for l in &self.links {
            ser += l.ser_cycles;
            queue += l.queue_cycles;
            deg += l.degraded_cycles;
        }
        out.push_str(&format!("|links={ser:.1},{queue:.1},{deg:.1}"));
        out
    }

    /// Inverse of [`ProfileReport::encode_compact`]. The per-GPU stall
    /// totals round-trip exactly; DRAM and link occupancy come back as a
    /// single machine-wide aggregate entry each.
    pub fn decode_compact(s: &str) -> Option<ProfileReport> {
        let mut r = ProfileReport::default();
        for field in s.split('|') {
            let (key, val) = field.split_once('=')?;
            match key {
                "cycles" => r.cycles = val.parse().ok()?,
                "sms" => r.sms_per_gpu = val.parse().ok()?,
                "dram" => {
                    let mut it = val.split(',');
                    r.dram.push(DramChannelProfile {
                        gpu: 0,
                        channel: 0,
                        row_hit_cycles: it.next()?.parse().ok()?,
                        row_miss_cycles: it.next()?.parse().ok()?,
                        bus_cycles: it.next()?.parse().ok()?,
                        refresh_cycles: 0,
                    });
                }
                "links" => {
                    let mut it = val.split(',');
                    r.links.push(LinkOccupancy {
                        label: "all".into(),
                        ser_cycles: it.next()?.parse().ok()?,
                        queue_cycles: it.next()?.parse().ok()?,
                        degraded_cycles: it.next()?.parse().ok()?,
                    });
                }
                _ => {
                    let g: usize = key.strip_prefix("gpu")?.parse().ok()?;
                    if g != r.gpus.len() {
                        return None; // GPUs must appear in order
                    }
                    let mut cells = [0u64; NUM_STALL_CATS];
                    let mut it = val.split(',');
                    for cell in cells.iter_mut() {
                        *cell = it.next()?.parse().ok()?;
                    }
                    if it.next().is_some() {
                        return None;
                    }
                    r.gpus.push(cells);
                }
            }
        }
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_indices_round_trip() {
        let mut labels: Vec<&str> = StallCat::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), NUM_STALL_CATS);
        for (i, cat) in StallCat::ALL.into_iter().enumerate() {
            assert_eq!(cat.index(), i);
            assert_eq!(StallCat::from_index(i), Some(cat));
        }
        assert_eq!(StallCat::from_index(NUM_STALL_CATS), None);
    }

    #[test]
    fn ledger_accumulates_and_flushes_intervals() {
        let mut led = StallLedger::new(2);
        led.add(0, StallCat::Issuing, 10);
        led.add(1, StallCat::RemoteLink, 4);
        led.flush_interval(0, 10);
        led.add(0, StallCat::Idle, 6);
        led.flush_interval(10, 20);
        led.flush_interval(20, 20); // empty: skipped
        let (gpus, intervals) = led.into_parts();
        assert_eq!(gpus[0][StallCat::Issuing.index()], 10);
        assert_eq!(gpus[0][StallCat::Idle.index()], 6);
        assert_eq!(gpus[1][StallCat::RemoteLink.index()], 4);
        assert_eq!(intervals.len(), 4);
        assert_eq!(intervals[0].stalls[StallCat::Issuing.index()], 10);
        assert_eq!(intervals[1].stalls[StallCat::RemoteLink.index()], 4);
        assert_eq!(intervals[2].stalls[StallCat::Idle.index()], 6);
        assert_eq!(intervals[3].stalls, [0; NUM_STALL_CATS]);
        assert_eq!((intervals[2].start, intervals[2].end), (10, 20));
    }

    #[test]
    fn retract_undoes_a_charge() {
        let mut led = StallLedger::new(1);
        led.add(0, StallCat::Issuing, 3);
        led.retract(0, StallCat::Issuing, 1);
        assert_eq!(led.gpu_totals()[0][StallCat::Issuing.index()], 2);
    }

    fn sample_report() -> ProfileReport {
        let mut gpus = vec![[0u64; NUM_STALL_CATS]; 2];
        gpus[0][StallCat::Issuing.index()] = 50;
        gpus[0][StallCat::RemoteLink.index()] = 30;
        gpus[0][StallCat::Idle.index()] = 20;
        gpus[1][StallCat::Issuing.index()] = 60;
        gpus[1][StallCat::LocalDram.index()] = 40;
        ProfileReport {
            cycles: 50,
            sms_per_gpu: 2,
            gpus,
            intervals: Vec::new(),
            dram: vec![DramChannelProfile {
                gpu: 0,
                channel: 1,
                row_hit_cycles: 7,
                row_miss_cycles: 3,
                bus_cycles: 2.5,
                refresh_cycles: 0,
            }],
            links: vec![LinkOccupancy {
                label: "gpu0->gpu1".into(),
                ser_cycles: 12.0,
                queue_cycles: 5.0,
                degraded_cycles: 1.0,
            }],
        }
    }

    #[test]
    fn top_stalls_sorts_and_excludes_issuing() {
        let r = sample_report();
        let top = r.top_stalls();
        assert_eq!(top[0].0, StallCat::LocalDram);
        assert_eq!(top[1].0, StallCat::RemoteLink);
        assert!(top.iter().all(|(c, _)| *c != StallCat::Issuing));
        let s = r.stall_summary(3);
        assert!(
            s.starts_with("stalls: local-dram 20% | remote-link 15%"),
            "{s}"
        );
    }

    #[test]
    fn stall_summary_empty_when_all_issuing() {
        let mut gpus = vec![[0u64; NUM_STALL_CATS]];
        gpus[0][StallCat::Issuing.index()] = 10;
        let r = ProfileReport {
            cycles: 10,
            sms_per_gpu: 1,
            gpus,
            ..Default::default()
        };
        assert_eq!(r.stall_summary(3), "");
        assert_eq!(ProfileReport::default().stall_summary(3), "");
    }

    #[test]
    fn folded_lines_are_well_formed() {
        let r = sample_report();
        let folded = r.folded_string("NUMA-GPU");
        assert!(!folded.is_empty());
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("stack count");
            assert!(stack.contains(';'), "{line}");
            assert!(!stack.contains(' '), "{line}");
            count.parse::<u64>().expect("count is integer");
        }
        assert!(folded.contains("NUMA-GPU;gpu0;remote-link 30\n"));
        assert!(folded.contains("NUMA-GPU;dram;gpu0;ch1;row-hit 7\n"));
        assert!(folded.contains("NUMA-GPU;link;gpu0->gpu1;serialization 12\n"));
    }

    #[test]
    fn table_lists_every_category() {
        let r = sample_report();
        let table = r.table_string();
        for cat in StallCat::ALL {
            assert!(table.contains(cat.label()), "table lacks {}", cat.label());
        }
        assert!(table.contains("gpu0") && table.contains("gpu1"));
    }

    #[test]
    fn compact_encoding_round_trips_stall_totals() {
        let r = sample_report();
        let enc = r.encode_compact();
        assert!(!enc.contains('\t') && !enc.contains('\n'));
        let back = ProfileReport::decode_compact(&enc).expect("decodes");
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(back.sms_per_gpu, r.sms_per_gpu);
        assert_eq!(back.gpus, r.gpus);
        assert_eq!(back.dram.len(), 1);
        assert_eq!(back.dram[0].row_hit_cycles, 7);
        assert_eq!(back.links.len(), 1);
        assert!((back.links[0].queue_cycles - 5.0).abs() < 1e-9);
        assert_eq!(ProfileReport::decode_compact("garbage"), None);
        assert_eq!(ProfileReport::decode_compact("cycles=1|gpu1=0"), None);
    }

    #[test]
    fn interval_record_csv_shape() {
        let rec = StallIntervalRecord {
            start: 0,
            end: 5000,
            gpu: 2,
            stalls: [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11],
        };
        let line = rec.csv_line();
        assert_eq!(line.split(',').count(), 3 + NUM_STALL_CATS);
        assert_eq!(
            StallIntervalRecord::CSV_HEADER.split(',').count(),
            3 + NUM_STALL_CATS
        );
        assert!(line.starts_with("0,5000,2,1,2,"));
    }

    #[test]
    fn link_and_dram_derived_metrics() {
        let r = sample_report();
        assert!((r.links[0].utilization(100) - 0.13).abs() < 1e-9);
        assert_eq!(LinkOccupancy::default().utilization(0), 0.0);
        assert!((r.dram[0].idle_cycles(50) - 47.5).abs() < 1e-9);
        assert_eq!(r.dram[0].idle_cycles(1), 0.0);
    }

    #[test]
    fn accounted_sums_every_cell() {
        let r = sample_report();
        assert_eq!(r.accounted(), 200);
        assert_eq!(r.totals()[StallCat::Issuing.index()], 110);
    }
}
