//! Counters, histograms and summary statistics.
//!
//! Components accumulate raw event counts into [`Counter`]s and latency /
//! size distributions into [`Histogram`]s; experiment harnesses reduce
//! per-workload results with [`geomean`] the same way the paper reports
//! geometric-mean speedups.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use sim_core::Counter;
/// let mut c = Counter::default();
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Counter {
        Counter(0)
    }

    /// Increments by one. Saturates at `u64::MAX` instead of wrapping (a
    /// pinned counter is a visible anomaly; a wrapped one silently
    /// corrupts every derived rate).
    #[inline]
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Increments by `n`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// This counter as a fraction of `total` (0.0 if `total` is zero).
    pub fn fraction_of(self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A power-of-two bucketed histogram for latencies and sizes.
///
/// Values are placed into bucket `floor(log2(v))` (value 0 goes into bucket
/// 0), which is plenty of resolution for order-of-magnitude latency
/// distributions while staying allocation-free.
///
/// # Example
///
/// ```
/// use sim_core::Histogram;
/// let mut h = Histogram::new();
/// h.record(100);
/// h.record(300);
/// assert_eq!(h.count(), 2);
/// assert!((h.mean() - 200.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation. Counters saturate at `u64::MAX` instead of
    /// wrapping, matching [`Counter`]: a pinned histogram is a visible
    /// anomaly, a wrapped one silently corrupts percentiles and means.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let b = 63 - (v | 1).leading_zeros() as usize;
        self.buckets[b] = self.buckets[b].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate p-th percentile (`p` in 0..=100) using bucket lower
    /// bounds; adequate for order-of-magnitude latency reporting.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((p / 100.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return Some(1u64 << i);
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one, saturating like
    /// [`Histogram::record`].
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Encodes the full histogram state into a compact single-token string
    /// (no whitespace, no tabs) so it can ride in one TSV journal field and
    /// round-trip exactly through [`Histogram::decode`].
    ///
    /// Format: `count,sum,min,max` followed by `,i:n` for each non-empty
    /// bucket `i`. `min` is the raw field (`u64::MAX` when empty) so an
    /// empty histogram reproduces bit-for-bit.
    pub fn encode(&self) -> String {
        use fmt::Write as _;
        let mut s = format!("{},{},{},{}", self.count, self.sum, self.min, self.max);
        for (i, &b) in self.buckets.iter().enumerate() {
            if b != 0 {
                let _ = write!(s, ",{i}:{b}");
            }
        }
        s
    }

    /// Decodes a string produced by [`Histogram::encode`]. Returns `None`
    /// on any malformed input.
    pub fn decode(s: &str) -> Option<Histogram> {
        let mut parts = s.split(',');
        let count = parts.next()?.parse().ok()?;
        let sum = parts.next()?.parse().ok()?;
        let min = parts.next()?.parse().ok()?;
        let max = parts.next()?.parse().ok()?;
        let mut buckets = [0u64; 64];
        for p in parts {
            let (i, n) = p.split_once(':')?;
            let i: usize = i.parse().ok()?;
            if i >= 64 {
                return None;
            }
            buckets[i] = n.parse().ok()?;
        }
        Some(Histogram {
            buckets,
            count,
            sum,
            min,
            max,
        })
    }
}

/// Geometric mean of an iterator of positive values.
///
/// Returns 0.0 for an empty iterator. Non-positive values are clamped to a
/// tiny epsilon so a single degenerate data point cannot poison a report.
///
/// # Example
///
/// ```
/// use sim_core::geomean;
/// let g = geomean([1.0, 4.0].iter().copied());
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean<I: Iterator<Item = f64>>(values: I) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// `part` as a percentage of `total` (0.0 when `total` is zero).
///
/// # Example
///
/// ```
/// use sim_core::stats::percent;
/// assert!((percent(1, 4) - 25.0).abs() < 1e-12);
/// assert_eq!(percent(1, 0), 0.0);
/// ```
pub fn percent(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * part as f64 / total as f64
    }
}

/// Arithmetic mean of an iterator of values (0.0 when empty).
pub fn mean<I: Iterator<Item = f64>>(values: I) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert!((c.fraction_of(40) - 0.25).abs() < 1e-12);
        assert_eq!(c.fraction_of(0), 0.0);
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let mut c = Counter::new();
        c.add(u64::MAX - 1);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        c.inc(); // would wrap to 0 (or panic in debug) with plain +=
        assert_eq!(c.get(), u64::MAX);
        c.add(12345);
        assert_eq!(c.get(), u64::MAX);
        let mut d = Counter::new();
        d.add(u64::MAX);
        d.add(u64::MAX);
        assert_eq!(d.get(), u64::MAX);
    }

    #[test]
    fn counter_fraction_of_zero_total_is_zero_even_when_nonzero() {
        let mut c = Counter::new();
        c.add(7);
        assert_eq!(c.fraction_of(0), 0.0);
        assert_eq!(Counter::new().fraction_of(0), 0.0);
        assert!((c.fraction_of(u64::MAX) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentile_edges_on_single_value() {
        let mut h = Histogram::new();
        h.record(42);
        // Every percentile of a single observation lands in its bucket.
        let p0 = h.percentile(0.0).unwrap();
        let p100 = h.percentile(100.0).unwrap();
        assert_eq!(p0, p100);
        assert!(h.percentile(50.0).is_some());
    }

    #[test]
    fn histogram_tracks_extremes_and_mean() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8, 16] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(16));
        assert!((h.mean() - 6.2).abs() < 1e-9);
    }

    #[test]
    fn histogram_zero_value_ok() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), Some(0));
    }

    #[test]
    fn histogram_percentiles_monotone() {
        let mut h = Histogram::new();
        for v in 1..1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        assert!(p50 <= p99);
        assert!(h.percentile(0.0).is_some());
    }

    #[test]
    fn histogram_empty_reports_none() {
        let h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Some(1000));
        assert_eq!(a.min(), Some(10));
    }

    #[test]
    fn geomean_and_mean() {
        assert_eq!(geomean(std::iter::empty()), 0.0);
        assert!((geomean([3.0, 3.0, 3.0].iter().copied()) - 3.0).abs() < 1e-12);
        assert!((mean([1.0, 2.0, 3.0].iter().copied()) - 2.0).abs() < 1e-12);
        assert_eq!(mean(std::iter::empty()), 0.0);
    }

    #[test]
    fn histogram_encode_decode_round_trips_exactly() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 7, 100, 100, 65_536, u64::MAX >> 1] {
            h.record(v);
        }
        let back = Histogram::decode(&h.encode()).expect("well-formed");
        assert_eq!(back, h);
        // Empty histogram keeps its sentinel min (u64::MAX) through the trip.
        let empty = Histogram::new();
        assert_eq!(Histogram::decode(&empty.encode()).unwrap(), empty);
        // Encoded form must be TSV-safe: one token, no whitespace.
        assert!(!h.encode().chars().any(|c| c.is_whitespace()));
    }

    #[test]
    fn histogram_decode_rejects_malformed() {
        assert!(Histogram::decode("").is_none());
        assert!(Histogram::decode("1,2,3").is_none());
        assert!(Histogram::decode("1,2,3,4,99:1").is_none()); // bucket out of range
        assert!(Histogram::decode("1,2,3,4,x:1").is_none());
        assert!(Histogram::decode("a,2,3,4").is_none());
    }

    #[test]
    fn histogram_saturated_counters_stay_pinned() {
        // Force the internal counters to the brink, then record more: count,
        // sum and the hit bucket must pin at u64::MAX, never wrap, and the
        // derived helpers must stay well-defined.
        let mut h = Histogram::new();
        h.count = u64::MAX - 1;
        h.sum = u64::MAX - 1;
        h.buckets[1] = u64::MAX;
        h.record(2); // bucket 1 again
        h.record(2);
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.buckets[1], u64::MAX);
        assert!(h.mean() >= 0.0 && h.mean().is_finite());
        assert!(h.percentile(50.0).is_some());
        // Merging two saturated histograms saturates too.
        let other = h.clone();
        h.merge(&other);
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.buckets[1], u64::MAX);
    }

    #[test]
    fn percent_helper_edges() {
        assert_eq!(percent(0, 0), 0.0);
        assert_eq!(percent(5, 0), 0.0);
        assert!((percent(5, 5) - 100.0).abs() < 1e-12);
        assert!((percent(1, 3) - 33.333333).abs() < 1e-4);
    }

    #[test]
    fn geomean_clamps_nonpositive() {
        let g = geomean([0.0, 1.0].iter().copied());
        assert!((0.0..1.0).contains(&g));
    }
}
