//! Engine substrate for the `carve-mgpu` multi-GPU NUMA simulator.
//!
//! This crate holds the pieces every other crate in the workspace leans on:
//!
//! * [`cycle`] — the simulation clock ([`Cycle`]) and time arithmetic,
//! * [`event`] — the [`NextEvent`] horizon trait the skipping engine polls,
//! * [`rng`] — deterministic, splittable pseudo-random streams,
//! * [`stats`] — counters, histograms and summary math (geometric mean),
//! * [`queue`] — bounded FIFO queues used to connect pipeline stages,
//! * [`config`] — the scaled system configuration shared by all components,
//! * [`fault`] — deterministic cycle-stamped fault schedules ([`FaultPlan`])
//!   and recovery accounting for the chaos layer,
//! * [`profile`] — the cycle-accounting stall taxonomy and occupancy
//!   breakdowns ([`ProfileReport`]) behind `carve-sim profile`,
//! * [`units`] — byte-size / bandwidth formatting helpers,
//! * [`telemetry`] — interval sampling ([`Timeline`]) and structured event
//!   tracing ([`TraceSink`]) for the observability layer.
//!
//! The simulator advances an event-horizon engine over a cycle-accurate
//! model: components implement [`NextEvent`] so the engine can jump `now`
//! straight to the next cycle anything can happen, producing results
//! bit-identical to stepping one cycle at a time. Determinism is a core
//! design goal (two runs with the same seed produce bit-identical results),
//! which is why random streams are derived from explicit seeds rather than
//! OS entropy; experiment campaigns may fan independent simulations across
//! threads, but each `System` instance stays single threaded.
//!
//! # Example
//!
//! ```
//! use sim_core::rng::Stream;
//! use sim_core::stats::geomean;
//!
//! let mut s = Stream::from_parts(&[1, 2, 3]);
//! let x = s.next_u64();
//! let y = Stream::from_parts(&[1, 2, 3]).next_u64();
//! assert_eq!(x, y); // deterministic
//! assert!((geomean([2.0, 8.0].iter().copied()) - 4.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod cycle;
pub mod error;
pub mod event;
pub mod fast;
pub mod fault;
pub mod profile;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod units;
pub mod watchdog;

pub use config::{BaselineConfig, ScaledConfig, TopologySpec};
pub use cycle::Cycle;
pub use error::SimError;
pub use event::NextEvent;
pub use fast::{FastMap, FastSet, Slab, TagTable};
pub use fault::{FaultEvent, FaultKind, FaultPlan, RecoverySnapshot};
pub use profile::{
    DramChannelProfile, LinkOccupancy, ProfileReport, StallCat, StallIntervalRecord, StallLedger,
    NUM_STALL_CATS,
};
pub use queue::BoundedQueue;
pub use rng::Stream;
pub use stats::{geomean, Counter, Histogram};
pub use telemetry::{
    IntervalRecord, JsonTraceSink, NullTraceSink, Timeline, TraceEvent, TracePhase, TraceSink,
};
pub use watchdog::{Stall, Watchdog, DEFAULT_WATCHDOG_CYCLES};
