//! Simulation clock.
//!
//! The whole simulator is stepped at GPU core frequency (nominally 1 GHz, so
//! one [`Cycle`] ≈ 1 ns). A newtype keeps cycle arithmetic from being mixed
//! up with other integer quantities (instruction counts, byte counts, ...).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in GPU core clock cycles.
///
/// `Cycle` is also used for durations; the arithmetic impls below cover the
/// few operations the simulator needs (`+`, `+=`, saturating `-`).
///
/// # Example
///
/// ```
/// use sim_core::Cycle;
/// let t = Cycle(10) + Cycle(5);
/// assert_eq!(t.0, 15);
/// assert_eq!(t - Cycle(20), Cycle(0)); // saturating
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero point of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Largest representable time; used as "never" for idle schedulers.
    pub const NEVER: Cycle = Cycle(u64::MAX);

    /// Returns the raw cycle count.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Advances time by one cycle.
    #[inline]
    pub fn next(self) -> Cycle {
        Cycle(self.0 + 1)
    }

    /// Duration from `earlier` to `self`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(earlier.0))
    }

    /// Converts to nanoseconds given a core frequency in GHz.
    pub fn to_nanos(self, freq_ghz: f64) -> f64 {
        self.0 as f64 / freq_ghz
    }
}

impl Add for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    /// Saturating subtraction: durations never go negative.
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        iter.fold(Cycle::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Cycle {
        Cycle(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves() {
        assert_eq!(Cycle(3) + Cycle(4), Cycle(7));
        let mut c = Cycle(1);
        c += Cycle(2);
        assert_eq!(c, Cycle(3));
        assert_eq!(Cycle(3) - Cycle(5), Cycle::ZERO);
        assert_eq!(Cycle(9).since(Cycle(4)), Cycle(5));
    }

    #[test]
    fn ordering_and_display() {
        assert!(Cycle(1) < Cycle(2));
        assert_eq!(Cycle(42).to_string(), "42 cyc");
        assert_eq!(Cycle::from(7u64).as_u64(), 7);
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycle = [Cycle(1), Cycle(2), Cycle(3)].into_iter().sum();
        assert_eq!(total, Cycle(6));
    }

    #[test]
    fn nanos_conversion() {
        assert!((Cycle(2000).to_nanos(2.0) - 1000.0).abs() < 1e-9);
    }
}
