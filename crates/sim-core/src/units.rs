//! Byte-size and bandwidth formatting helpers.

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// Formats a byte count with a binary-prefix unit, e.g. `2.0 GiB`.
///
/// # Example
///
/// ```
/// assert_eq!(sim_core::units::fmt_bytes(3 * 1024 * 1024), "3.0 MiB");
/// assert_eq!(sim_core::units::fmt_bytes(512), "512 B");
/// ```
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= GIB {
        format!("{:.1} GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.1} MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.1} KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

/// Converts a bandwidth in GB/s to bytes per cycle at `freq_ghz`.
///
/// At 1 GHz, 64 GB/s is exactly 64 bytes per cycle.
///
/// # Example
///
/// ```
/// assert_eq!(sim_core::units::gbs_to_bytes_per_cycle(64.0, 1.0), 64.0);
/// ```
pub fn gbs_to_bytes_per_cycle(gbs: f64, freq_ghz: f64) -> f64 {
    gbs / freq_ghz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_each_magnitude() {
        assert_eq!(fmt_bytes(0), "0 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(5 * MIB), "5.0 MiB");
        assert_eq!(fmt_bytes(2 * GIB), "2.0 GiB");
    }

    #[test]
    fn bandwidth_conversion() {
        assert!((gbs_to_bytes_per_cycle(1000.0, 1.0) - 1000.0).abs() < 1e-9);
        assert!((gbs_to_bytes_per_cycle(64.0, 2.0) - 32.0).abs() < 1e-9);
    }
}
